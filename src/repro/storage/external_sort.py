"""External merge sort over heap files.

Establishing a sort order is the price of admission for the paper's
stream algorithms; the optimizer must weigh that price against the
nested-loop alternative.  This implementation does classic run
generation followed by k-way merging, charging all page traffic so the
optimizer's cost model can reason about "sort then stream" plans.
"""

from __future__ import annotations

import heapq
from itertools import count
from typing import Callable, Optional

from ..errors import StorageError
from ..model.sortorder import SortOrder, sort_tuples
from ..model.tuples import TemporalTuple
from ..obs.metrics import active_registry
from ..obs.trace import get_tracer
from .heap_file import HeapFile
from .iostats import IOStats


class ExternalSortResult:
    """The sorted output file plus the sort's cost summary."""

    def __init__(
        self,
        output: HeapFile,
        runs_generated: int,
        merge_passes: int,
        stats: IOStats,
        skipped_presorted: bool = False,
    ) -> None:
        self.output = output
        self.runs_generated = runs_generated
        self.merge_passes = merge_passes
        self.stats = stats
        #: True when the sortedness pre-check found the input already
        #: ordered and the sort was skipped entirely (the one
        #: verification scan is the only I/O charged).
        self.skipped_presorted = skipped_presorted

    @property
    def total_passes(self) -> int:
        """Read passes over the data: one for run generation (or the
        sortedness verification scan) plus one per merge pass."""
        return 1 + self.merge_passes


def external_sort(
    source: HeapFile,
    order: SortOrder,
    memory_pages: int = 8,
    fan_in: Optional[int] = None,
    stats: Optional[IOStats] = None,
    run_namer: Optional[Callable[[int], str]] = None,
    presort_check: bool = True,
    run_sort_workers: int = 1,
) -> ExternalSortResult:
    """Sort ``source`` by ``order`` using bounded memory.

    Parameters
    ----------
    source:
        The heap file of :class:`TemporalTuple` records to sort.
    order:
        Target sort order.
    memory_pages:
        Workspace size in pages for run generation; each initial run
        holds at most ``memory_pages * page_capacity`` tuples.
    fan_in:
        Maximum runs merged at once; defaults to ``memory_pages - 1``
        (one page reserved for output), the textbook setting.
    stats:
        Accounting sink; defaults to a fresh :class:`IOStats`.
    presort_check:
        Verify sortedness with one early-exit scan first; an already
        ordered input is returned as-is with zero runs written (the
        common case for the resilience DEGRADE re-sort and for the
        parallel partitioner's per-shard sorts, whose inputs are order-
        preserving subsequences of sorted relations).  The check aborts
        at the first out-of-order pair, so an unsorted input pays only
        a prefix re-read.
    run_sort_workers:
        Sort initial runs in parallel with this many forked workers
        (CPU parallelism for pass 0; merging stays serial).  Raises the
        transient memory bound to ``run_sort_workers`` buffered runs —
        the coordinator holds one batch of unsorted chunks while the
        pool sorts it.  Any pool failure falls back to inline sorting.
    """
    if memory_pages < 2:
        raise StorageError("external sort needs at least two memory pages")
    accounting = stats if stats is not None else IOStats()
    merge_width = fan_in if fan_in is not None else max(2, memory_pages - 1)
    if merge_width < 2:
        raise StorageError("merge fan-in must be at least two")

    if presort_check:
        skipped = _presorted_result(source, order, accounting)
        if skipped is not None:
            return skipped

    run_capacity = memory_pages * source.page_capacity
    naming = run_namer or (lambda i: f"{source.name}.run{i}")
    run_counter = count()

    tracer = get_tracer()
    with tracer.span(
        "sort:external", source=source.name, order=str(order)
    ) as span:
        # --------------------------------------------------------------
        # pass 0: run generation
        # --------------------------------------------------------------
        runs: list[HeapFile] = []
        buffer: list[TemporalTuple] = []
        pending_chunks: list[list[TemporalTuple]] = []
        spilled_tuples = 0

        def write_run(sorted_records: list[TemporalTuple]) -> None:
            nonlocal spilled_tuples
            run = HeapFile(
                naming(next(run_counter)),
                page_capacity=source.page_capacity,
                stats=accounting,
            )
            run.extend(sorted_records)
            runs.append(run)
            spilled_tuples += len(sorted_records)

        def drain_pending() -> None:
            if not pending_chunks:
                return
            for chunk in _sort_chunks(
                pending_chunks, order, run_sort_workers
            ):
                write_run(chunk)
            pending_chunks.clear()

        def flush_run() -> None:
            if not buffer:
                return
            if run_sort_workers > 1:
                pending_chunks.append(list(buffer))
                if len(pending_chunks) >= run_sort_workers:
                    drain_pending()
            else:
                write_run(sort_tuples(buffer, order))
            buffer.clear()

        for record in source.scan(stats=accounting):
            buffer.append(record)
            if len(buffer) >= run_capacity:
                flush_run()
        flush_run()
        drain_pending()
        runs_generated = len(runs)

        if not runs:
            empty = HeapFile(
                f"{source.name}.sorted",
                page_capacity=source.page_capacity,
                stats=accounting,
            )
            result = ExternalSortResult(empty, 0, 0, accounting)
        else:
            # ----------------------------------------------------------
            # merge passes
            # ----------------------------------------------------------
            merge_passes = 0
            while len(runs) > 1:
                merge_passes += 1
                next_runs: list[HeapFile] = []
                for group_start in range(0, len(runs), merge_width):
                    group = runs[group_start : group_start + merge_width]
                    if len(group) == 1:
                        next_runs.append(group[0])
                        continue
                    merged = HeapFile(
                        naming(next(run_counter)),
                        page_capacity=source.page_capacity,
                        stats=accounting,
                    )
                    merged.extend(_merge(group, order, accounting))
                    next_runs.append(merged)
                runs = next_runs

            output = runs[0]
            output.name = f"{source.name}.sorted"
            result = ExternalSortResult(
                output, runs_generated, merge_passes, accounting
            )

        if tracer.enabled:
            span.set(
                runs_generated=result.runs_generated,
                merge_passes=result.merge_passes,
                total_passes=result.total_passes,
                spilled_tuples=spilled_tuples,
                run_sort_workers=run_sort_workers,
            )
        registry = active_registry()
        if registry is not None:
            registry.counter(
                "repro_sort_runs_total",
                "Initial runs generated by external sorts",
            ).inc(result.runs_generated)
            registry.counter(
                "repro_sort_merge_passes_total",
                "Merge passes performed by external sorts",
            ).inc(result.merge_passes)
            registry.counter(
                "repro_sort_spilled_tuples_total",
                "Tuples written to sort-run files",
            ).inc(spilled_tuples)
        return result


#: Fork-inherited state for parallel run sorting (set only while a
#: pool is alive; workers read it copy-on-write instead of having the
#: sort order pickled per task).
_RUN_SORT_ORDER: Optional[SortOrder] = None


def _run_sort_worker(chunk: list[TemporalTuple]) -> list[TemporalTuple]:
    return sort_tuples(chunk, _RUN_SORT_ORDER)


def _sort_chunks(
    chunks: list[list[TemporalTuple]], order: SortOrder, workers: int
) -> list[list[TemporalTuple]]:
    """Sort run chunks, forking a pool when it can actually help;
    falls back to inline sorting on any pool failure."""
    global _RUN_SORT_ORDER
    if workers > 1 and len(chunks) > 1:
        import multiprocessing

        _RUN_SORT_ORDER = order
        try:
            context = multiprocessing.get_context("fork")
            with context.Pool(
                processes=min(workers, len(chunks))
            ) as pool:
                return pool.map(_run_sort_worker, chunks)
        except Exception:
            pass
        finally:
            _RUN_SORT_ORDER = None
    return [sort_tuples(chunk, order) for chunk in chunks]


def _presorted_result(
    source: HeapFile, order: SortOrder, accounting: IOStats
) -> Optional[ExternalSortResult]:
    """One early-exit verification scan; the no-op sort result when
    ``source`` already obeys ``order``, else ``None``."""
    tracer = get_tracer()
    with tracer.span(
        "sort:presort-check", source=source.name, order=str(order)
    ) as span:
        previous: Optional[TemporalTuple] = None
        checked = 0
        sorted_input = True
        for record in source.scan(stats=accounting):
            checked += 1
            if previous is not None and not order.check(previous, record):
                sorted_input = False
                break
            previous = record
        if tracer.enabled:
            span.set(sorted=sorted_input, tuples_checked=checked)
    if not sorted_input:
        return None
    registry = active_registry()
    if registry is not None:
        registry.counter(
            "repro_sort_presorted_skips_total",
            "External sorts skipped because the input was already "
            "ordered",
        ).inc()
    return ExternalSortResult(
        source, 0, 0, accounting, skipped_presorted=True
    )


def _merge(runs, order: SortOrder, stats: IOStats):
    """K-way merge of already-sorted runs.

    Ordering may include descending / non-numeric keys, which plain
    tuple comparison cannot express, so the heap is keyed on a sequence
    number per run and ordered by pairwise comparisons via the order's
    check() through a wrapper.
    """
    key_fn = _total_key(order)
    iterators = [run.scan(stats=stats) for run in runs]
    heap: list[tuple] = []
    for run_index, iterator in enumerate(iterators):
        first = next(iterator, None)
        if first is not None:
            heapq.heappush(heap, (key_fn(first), run_index, first))
    while heap:
        _, run_index, record = heapq.heappop(heap)
        yield record
        following = next(iterators[run_index], None)
        if following is not None:
            heapq.heappush(
                heap, (key_fn(following), run_index, following)
            )


def _total_key(order: SortOrder) -> Callable[[TemporalTuple], tuple]:
    """A total key for heap ordering: the order's own key function,
    tie-broken by full lifespan so heap entries never compare tuples."""

    primary = order.key_function()

    def key(record: TemporalTuple) -> tuple:
        return (
            primary(record),
            record.valid_from,
            record.valid_to,
            repr(record.surrogate),
            repr(record.value),
        )

    return key
