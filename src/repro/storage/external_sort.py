"""External merge sort over heap files.

Establishing a sort order is the price of admission for the paper's
stream algorithms; the optimizer must weigh that price against the
nested-loop alternative.  This implementation does classic run
generation followed by k-way merging, charging all page traffic so the
optimizer's cost model can reason about "sort then stream" plans.
"""

from __future__ import annotations

import heapq
from itertools import count
from typing import Callable, Optional

from ..errors import StorageError
from ..model.sortorder import SortOrder, sort_tuples
from ..model.tuples import TemporalTuple
from ..obs.metrics import active_registry
from ..obs.trace import get_tracer
from .heap_file import HeapFile
from .iostats import IOStats


class ExternalSortResult:
    """The sorted output file plus the sort's cost summary."""

    def __init__(
        self,
        output: HeapFile,
        runs_generated: int,
        merge_passes: int,
        stats: IOStats,
    ) -> None:
        self.output = output
        self.runs_generated = runs_generated
        self.merge_passes = merge_passes
        self.stats = stats

    @property
    def total_passes(self) -> int:
        """Read passes over the data: one for run generation plus one
        per merge pass."""
        return 1 + self.merge_passes


def external_sort(
    source: HeapFile,
    order: SortOrder,
    memory_pages: int = 8,
    fan_in: Optional[int] = None,
    stats: Optional[IOStats] = None,
    run_namer: Optional[Callable[[int], str]] = None,
) -> ExternalSortResult:
    """Sort ``source`` by ``order`` using bounded memory.

    Parameters
    ----------
    source:
        The heap file of :class:`TemporalTuple` records to sort.
    order:
        Target sort order.
    memory_pages:
        Workspace size in pages for run generation; each initial run
        holds at most ``memory_pages * page_capacity`` tuples.
    fan_in:
        Maximum runs merged at once; defaults to ``memory_pages - 1``
        (one page reserved for output), the textbook setting.
    stats:
        Accounting sink; defaults to a fresh :class:`IOStats`.
    """
    if memory_pages < 2:
        raise StorageError("external sort needs at least two memory pages")
    accounting = stats if stats is not None else IOStats()
    merge_width = fan_in if fan_in is not None else max(2, memory_pages - 1)
    if merge_width < 2:
        raise StorageError("merge fan-in must be at least two")

    run_capacity = memory_pages * source.page_capacity
    naming = run_namer or (lambda i: f"{source.name}.run{i}")
    run_counter = count()

    tracer = get_tracer()
    with tracer.span(
        "sort:external", source=source.name, order=str(order)
    ) as span:
        # --------------------------------------------------------------
        # pass 0: run generation
        # --------------------------------------------------------------
        runs: list[HeapFile] = []
        buffer: list[TemporalTuple] = []
        spilled_tuples = 0

        def flush_run() -> None:
            nonlocal spilled_tuples
            if not buffer:
                return
            run = HeapFile(
                naming(next(run_counter)),
                page_capacity=source.page_capacity,
                stats=accounting,
            )
            run.extend(sort_tuples(buffer, order))
            runs.append(run)
            spilled_tuples += len(buffer)
            buffer.clear()

        for record in source.scan(stats=accounting):
            buffer.append(record)
            if len(buffer) >= run_capacity:
                flush_run()
        flush_run()
        runs_generated = len(runs)

        if not runs:
            empty = HeapFile(
                f"{source.name}.sorted",
                page_capacity=source.page_capacity,
                stats=accounting,
            )
            result = ExternalSortResult(empty, 0, 0, accounting)
        else:
            # ----------------------------------------------------------
            # merge passes
            # ----------------------------------------------------------
            merge_passes = 0
            while len(runs) > 1:
                merge_passes += 1
                next_runs: list[HeapFile] = []
                for group_start in range(0, len(runs), merge_width):
                    group = runs[group_start : group_start + merge_width]
                    if len(group) == 1:
                        next_runs.append(group[0])
                        continue
                    merged = HeapFile(
                        naming(next(run_counter)),
                        page_capacity=source.page_capacity,
                        stats=accounting,
                    )
                    merged.extend(_merge(group, order, accounting))
                    next_runs.append(merged)
                runs = next_runs

            output = runs[0]
            output.name = f"{source.name}.sorted"
            result = ExternalSortResult(
                output, runs_generated, merge_passes, accounting
            )

        if tracer.enabled:
            span.set(
                runs_generated=result.runs_generated,
                merge_passes=result.merge_passes,
                total_passes=result.total_passes,
                spilled_tuples=spilled_tuples,
            )
        registry = active_registry()
        if registry is not None:
            registry.counter(
                "repro_sort_runs_total",
                "Initial runs generated by external sorts",
            ).inc(result.runs_generated)
            registry.counter(
                "repro_sort_merge_passes_total",
                "Merge passes performed by external sorts",
            ).inc(result.merge_passes)
            registry.counter(
                "repro_sort_spilled_tuples_total",
                "Tuples written to sort-run files",
            ).inc(spilled_tuples)
        return result


def _merge(runs, order: SortOrder, stats: IOStats):
    """K-way merge of already-sorted runs.

    Ordering may include descending / non-numeric keys, which plain
    tuple comparison cannot express, so the heap is keyed on a sequence
    number per run and ordered by pairwise comparisons via the order's
    check() through a wrapper.
    """
    key_fn = _total_key(order)
    iterators = [run.scan(stats=stats) for run in runs]
    heap: list[tuple] = []
    for run_index, iterator in enumerate(iterators):
        first = next(iterator, None)
        if first is not None:
            heapq.heappush(heap, (key_fn(first), run_index, first))
    while heap:
        _, run_index, record = heapq.heappop(heap)
        yield record
        following = next(iterators[run_index], None)
        if following is not None:
            heapq.heappush(
                heap, (key_fn(following), run_index, following)
            )


def _total_key(order: SortOrder) -> Callable[[TemporalTuple], tuple]:
    """A total key for heap ordering: the order's own key function,
    tie-broken by full lifespan so heap entries never compare tuples."""

    primary = order.key_function()

    def key(record: TemporalTuple) -> tuple:
        return (
            primary(record),
            record.valid_from,
            record.valid_to,
            repr(record.surrogate),
            repr(record.value),
        )

    return key
