"""Heap files — the on-'disk' representation of relations and runs.

A :class:`HeapFile` is an append-only sequence of pages.  Scans count
page and tuple reads against the file's :class:`~repro.storage.iostats.
IOStats` (or a caller-provided one), which is how benchmarks observe
"the relation was scanned three times" for conventional plans versus
"once" for stream plans.
"""

from __future__ import annotations

import itertools
from typing import Any, Iterable, Iterator, Optional

from ..governance.budget import active_token
from ..obs.metrics import active_registry
from ..obs.trace import get_tracer
from .iostats import IOStats
from .page import DEFAULT_PAGE_CAPACITY, Page

#: Process-wide generator of never-reused file ids (unlike ``id()``,
#: which the allocator recycles after garbage collection).
_FILE_IDS = itertools.count()


class HeapFile:
    """An append-only paged file of records."""

    def __init__(
        self,
        name: str,
        page_capacity: int = DEFAULT_PAGE_CAPACITY,
        stats: Optional[IOStats] = None,
        verify_checksums: bool = True,
    ) -> None:
        self.name = name
        #: Unique identity of this file object.  Two files may share a
        #: *name* (re-created runs, test fixtures); caches such as the
        #: buffer pool must key frames by this id, never by name.
        self.file_id = next(_FILE_IDS)
        self.page_capacity = page_capacity
        self.stats = stats if stats is not None else IOStats()
        #: When True (the default), every page fetch re-verifies the
        #: page's stored checksum, so corruption surfaces at read time
        #: as :class:`~repro.errors.PageCorruptionError` instead of as
        #: silently wrong answers.
        self.verify_checksums = verify_checksums
        self._pages: list[Page] = []

    # ------------------------------------------------------------------
    # writing
    # ------------------------------------------------------------------
    def append(self, record: Any) -> None:
        """Append one record, allocating (and 'writing') pages as they
        fill."""
        if not self._pages or self._pages[-1].is_full:
            self._pages.append(
                Page(len(self._pages), capacity=self.page_capacity)
            )
            self.stats.record_page_write()
            registry = active_registry()
            if registry is not None:
                registry.counter(
                    "repro_storage_page_writes_total",
                    "Heap-file pages allocated and written",
                ).inc(file=self.name)
        self._pages[-1].append(record)
        self.stats.record_tuple_write()

    def extend(self, records: Iterable[Any]) -> None:
        for record in records:
            self.append(record)

    @classmethod
    def from_records(
        cls,
        name: str,
        records: Iterable[Any],
        page_capacity: int = DEFAULT_PAGE_CAPACITY,
        stats: Optional[IOStats] = None,
    ) -> "HeapFile":
        """Bulk-load a file; the load traffic is then cleared so the
        file starts with zero counters (load cost is not query cost)."""
        f = cls(name, page_capacity=page_capacity, stats=stats)
        f.extend(records)
        f.stats.reset()
        return f

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    @property
    def num_pages(self) -> int:
        return len(self._pages)

    @property
    def num_records(self) -> int:
        return sum(len(p) for p in self._pages)

    def page(self, index: int, stats: Optional[IOStats] = None) -> Page:
        """Fetch one page, charging a page read and verifying its
        checksum (unless verification is disabled on this file)."""
        (stats or self.stats).record_page_read()
        token = active_token()
        if token is not None:
            # Governance checkpoint: every physical page read charges
            # the page budget and observes deadline/cancellation, so a
            # blown deadline surfaces within one page of work.
            token.charge_pages(1)
        registry = active_registry()
        if registry is not None:
            registry.counter(
                "repro_storage_page_reads_total",
                "Heap-file pages fetched",
            ).inc(file=self.name)
        tracer = get_tracer()
        if tracer.io_events:
            tracer.event("page.read", file=self.name, page=index)
        page = self._pages[index]
        if self.verify_checksums:
            page.verify()
        return page

    def scan(self, stats: Optional[IOStats] = None) -> Iterator[Any]:
        """Full sequential scan; charges one page read per page and one
        tuple read per record, plus a scan-started event.  Each page is
        checksum-verified as it is fetched."""
        accounting = stats or self.stats
        accounting.record_scan()
        registry = active_registry()
        if registry is not None:
            registry.counter(
                "repro_storage_scans_total",
                "Full heap-file scans started",
            ).inc(file=self.name)
        tracer = get_tracer()
        token = active_token()
        for index, page in enumerate(self._pages):
            accounting.record_page_read()
            if token is not None:
                token.charge_pages(1)
            if registry is not None:
                registry.counter(
                    "repro_storage_page_reads_total",
                    "Heap-file pages fetched",
                ).inc(file=self.name)
            if tracer.io_events:
                tracer.event("page.read", file=self.name, page=index)
            if self.verify_checksums:
                page.verify()
            for record in page:
                accounting.record_tuple_read()
                yield record

    def records(self) -> list[Any]:
        """All records *without* charging I/O (for tests/assertions)."""
        return [record for page in self._pages for record in page]

    def __len__(self) -> int:
        return self.num_records

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"HeapFile({self.name!r}, {self.num_records} records on "
            f"{self.num_pages} pages)"
        )
