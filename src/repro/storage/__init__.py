"""Simulated storage substrate: pages, heap files, buffer pool, and
external sort, all instrumented with I/O counters so query plans can be
compared by disk accesses and passes over streams."""

from .buffer_pool import BufferPool
from .external_sort import ExternalSortResult, external_sort
from .heap_file import HeapFile
from .index import ENDPOINTS, EndpointIndex
from .iostats import CostWeights, IOStats
from .page import DEFAULT_PAGE_CAPACITY, Page

__all__ = [
    "BufferPool",
    "CostWeights",
    "DEFAULT_PAGE_CAPACITY",
    "ENDPOINTS",
    "EndpointIndex",
    "ExternalSortResult",
    "HeapFile",
    "IOStats",
    "Page",
    "external_sort",
]
