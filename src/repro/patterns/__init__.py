"""Single-scan temporal pattern matching (Section 3, observation 3)."""

from .matcher import (
    FORWARD_RELATIONS,
    PatternMatch,
    PatternScan,
    PatternStep,
    SequencePattern,
    find_pattern,
)

__all__ = [
    "FORWARD_RELATIONS",
    "PatternMatch",
    "PatternScan",
    "PatternStep",
    "SequencePattern",
    "find_pattern",
]
