"""Single-scan temporal pattern matching (Section 3, observation 3).

"If we view the query as a 'Superstar' pattern matching in the Faculty
relation, one might wonder if we are able to answer this query with
only a single scan of the relation ... instead of performing multiple
joins, a single scan might be possible by recognizing this query
qualification as describing a pattern in the data."

This module generalises that idea: a :class:`SequencePattern` is a list
of steps, each with a value predicate and an Allen relationship that
must hold against the *previous* matched tuple ("an Assistant period
that *meets* an Associate period that *meets* a Full period").  The
:class:`PatternScan` processor finds all matches with **one pass** over
a surrogate-grouped stream, holding only the current object's history
plus the partial-match frontier — never the whole relation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Hashable, Iterator, Optional, Sequence

from ..allen.relations import AllenRelation
from ..errors import StreamOrderError, TemporalModelError
from ..model.interval import lifespan_key
from ..model.sortorder import SortOrder
from ..model.tuples import TemporalTuple

ValuePredicate = Callable[[Any], bool]

#: Step relations the single-scan matcher supports: those where the
#: matched tuple cannot precede its predecessor in (ValidFrom, ValidTo)
#: lexicographic order, so a forward scan meets predecessors first.
#: For a backward-pointing condition ("X before the previous match"),
#: reorder the steps and use the inverse relation.
FORWARD_RELATIONS = frozenset(
    {
        AllenRelation.AFTER,
        AllenRelation.MET_BY,
        AllenRelation.OVERLAPPED_BY,
        AllenRelation.DURING,
        AllenRelation.STARTED_BY,
        AllenRelation.FINISHES,
    }
)


@dataclass(frozen=True)
class PatternStep:
    """One step of a sequential pattern.

    Parameters
    ----------
    value:
        Predicate over the tuple's time-varying attribute value, or a
        constant to compare equal against.
    relation:
        The Allen relationship the matched tuple must bear to the
        previously matched tuple (``matched_tuple relation previous``)
        — ``None`` for the first step, or to accept any relationship.
    """

    value: Any
    relation: Optional[AllenRelation] = None

    def accepts_value(self, candidate: Any) -> bool:
        if callable(self.value):
            return bool(self.value(candidate))
        return candidate == self.value

    def accepts_transition(
        self, previous: TemporalTuple, current: TemporalTuple
    ) -> bool:
        if self.relation is None:
            return True
        return self.relation.holds(current.interval, previous.interval)


@dataclass(frozen=True)
class SequencePattern:
    """An ordered sequence of :class:`PatternStep`."""

    steps: tuple[PatternStep, ...]

    def __post_init__(self) -> None:
        if not self.steps:
            raise TemporalModelError("a pattern needs at least one step")
        if self.steps[0].relation is not None:
            raise TemporalModelError(
                "the first step has no previous tuple; its relation "
                "must be None"
            )
        for step in self.steps[1:]:
            if (
                step.relation is not None
                and step.relation not in FORWARD_RELATIONS
            ):
                raise TemporalModelError(
                    f"step relation {step.relation.value!r} points "
                    "backward in time; the single-scan matcher only "
                    "supports forward relations "
                    f"({sorted(r.value for r in FORWARD_RELATIONS)}) — "
                    "reorder the steps and use the inverse relation"
                )

    @classmethod
    def of(cls, *steps: PatternStep) -> "SequencePattern":
        return cls(tuple(steps))

    @classmethod
    def career(
        cls,
        values: Sequence[Any],
        relation: AllenRelation = AllenRelation.MET_BY,
    ) -> "SequencePattern":
        """A value chain where each period bears ``relation`` to its
        predecessor.  The default MET_BY encodes 'starts exactly when
        the previous ends' — continuous promotion chains."""
        steps = [PatternStep(values[0])]
        steps.extend(PatternStep(v, relation) for v in values[1:])
        return cls(tuple(steps))

    def __len__(self) -> int:
        return len(self.steps)


@dataclass(frozen=True)
class PatternMatch:
    """One complete match: the object and its matched tuples, in step
    order."""

    surrogate: Hashable
    tuples: tuple[TemporalTuple, ...]

    @property
    def span(self) -> tuple[int, int]:
        """First matched ValidFrom to last matched ValidTo."""
        return (self.tuples[0].valid_from, self.tuples[-1].valid_to)


class PatternScan:
    """Single-pass pattern matcher over a surrogate-grouped stream.

    The input must be grouped by surrogate (e.g. sorted by
    ``SortOrder.by_surrogate()``); each group is processed with a
    frontier of partial matches, then discarded — the workspace is one
    object's history, never the relation.
    """

    def __init__(
        self,
        tuples: Sequence[TemporalTuple],
        pattern: SequencePattern,
        verify_grouping: bool = True,
    ) -> None:
        self.tuples = tuples
        self.pattern = pattern
        self.verify_grouping = verify_grouping
        self.groups_scanned = 0
        self.tuples_read = 0
        self.max_group_size = 0
        self.max_frontier = 0

    def __iter__(self) -> Iterator[PatternMatch]:
        seen: set = set()
        current: Optional[Hashable] = None
        history: list[TemporalTuple] = []
        for tup in self.tuples:
            self.tuples_read += 1
            if current is None or tup.surrogate != current:
                if current is not None:
                    yield from self._match_group(current, history)
                if self.verify_grouping and tup.surrogate in seen:
                    raise StreamOrderError(
                        f"input is not grouped: surrogate "
                        f"{tup.surrogate!r} reappeared"
                    )
                seen.add(tup.surrogate)
                current = tup.surrogate
                history = []
            history.append(tup)
        if current is not None:
            yield from self._match_group(current, history)

    def run(self) -> list[PatternMatch]:
        return list(self)

    def _match_group(
        self, surrogate: Hashable, history: list[TemporalTuple]
    ) -> Iterator[PatternMatch]:
        self.groups_scanned += 1
        self.max_group_size = max(self.max_group_size, len(history))
        ordered = sorted(history, key=lifespan_key)
        steps = self.pattern.steps
        # Frontier of partial matches: tuples matched so far per branch.
        frontier: list[tuple[TemporalTuple, ...]] = [()]
        for tup in ordered:
            additions: list[tuple[TemporalTuple, ...]] = []
            for partial in frontier:
                step = steps[len(partial)]
                if not step.accepts_value(tup.value):
                    continue
                if partial and not step.accepts_transition(
                    partial[-1], tup
                ):
                    continue
                if not partial and step.relation is not None:
                    continue
                extended = partial + (tup,)
                if len(extended) == len(steps):
                    yield PatternMatch(surrogate, extended)
                else:
                    additions.append(extended)
            frontier.extend(additions)
            self.max_frontier = max(self.max_frontier, len(frontier))


def find_pattern(
    relation,
    pattern: SequencePattern,
) -> list[PatternMatch]:
    """Convenience: group a temporal relation by surrogate and scan.

    Sorting by surrogate counts as the usual pre-processing (like the
    sort orders of Section 4); the scan itself is a single pass.
    """
    ordered = relation.sorted_by(SortOrder.by_surrogate())
    return PatternScan(ordered.tuples, pattern).run()
