"""Multiple time-varying attributes (the paper's future work:
"a temporal relation may naturally have multiple time-varying
attributes such as Rank and Salary").

A :class:`MultiAttributeRelation` stores tuples
``<S, (v1, ..., vk), ValidFrom, ValidTo)`` over a
:class:`MultiAttributeSchema`.  Two operations connect it to the
single-attribute world of the paper's algorithms:

* :meth:`MultiAttributeRelation.decompose` — *temporal normalization*:
  one coalesced single-attribute
  :class:`~repro.model.relation.TemporalRelation` per attribute, each
  directly usable by the stream operators;
* :func:`recompose` — the inverse *temporal natural join*: per
  surrogate, sweep the per-attribute timelines and emit one tuple per
  maximal interval on which every attribute is defined and constant.

Decomposition coalesces, so round-tripping returns the input with
value-identical adjacent segments merged — the canonical form
(verified by property tests).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Hashable, Iterable, Iterator, Mapping, Optional

from ..errors import SchemaError, TemporalModelError
from ..model.coalesce import coalesce
from ..model.interval import (
    Interval,
    covers_point,
    lifespan_key,
    starts_before,
)
from ..model.relation import TemporalRelation
from ..model.tuples import TIMESTAMP_ALIASES, TemporalSchema, TemporalTuple


@dataclass(frozen=True)
class MultiAttributeSchema:
    """Naming for a relation with several time-varying attributes."""

    relation_name: str
    surrogate_name: str
    attribute_names: tuple[str, ...]

    def __post_init__(self) -> None:
        names = (self.surrogate_name,) + self.attribute_names
        if len(set(names)) != len(names):
            raise SchemaError("attribute names must be distinct")
        for name in names:
            if name in TIMESTAMP_ALIASES:
                raise SchemaError(
                    f"{name!r} collides with a reserved timestamp name"
                )
        if not self.attribute_names:
            raise SchemaError("need at least one time-varying attribute")

    def attribute_index(self, name: str) -> int:
        try:
            return self.attribute_names.index(name)
        except ValueError:
            raise SchemaError(
                f"{self.relation_name!r} has no attribute {name!r}"
            ) from None

    def single_attribute_schema(self, name: str) -> TemporalSchema:
        """The schema of one attribute's decomposed relation."""
        self.attribute_index(name)
        return TemporalSchema(
            f"{self.relation_name}.{name}", self.surrogate_name, name
        )


@dataclass(frozen=True, slots=True)
class MultiTuple:
    """``<S, (v1, ..., vk), ValidFrom, ValidTo)``."""

    surrogate: Hashable
    values: tuple
    valid_from: int
    valid_to: int

    def __post_init__(self) -> None:
        Interval(self.valid_from, self.valid_to)

    @property
    def interval(self) -> Interval:
        return Interval(self.valid_from, self.valid_to)


class MultiAttributeRelation:
    """A set of multi-attribute temporal tuples."""

    def __init__(
        self,
        schema: MultiAttributeSchema,
        tuples: Iterable[MultiTuple] = (),
    ) -> None:
        self.schema = schema
        self.tuples: tuple[MultiTuple, ...] = tuple(tuples)
        width = len(schema.attribute_names)
        for tup in self.tuples:
            if len(tup.values) != width:
                raise SchemaError(
                    f"tuple carries {len(tup.values)} values; schema "
                    f"defines {width} attributes"
                )

    @classmethod
    def from_rows(
        cls,
        schema: MultiAttributeSchema,
        rows: Iterable[tuple],
    ) -> "MultiAttributeRelation":
        """Rows are ``(surrogate, v1, ..., vk, valid_from, valid_to)``."""
        width = len(schema.attribute_names)
        tuples = []
        for row in rows:
            if len(row) != width + 3:
                raise SchemaError(
                    f"row arity {len(row)} does not match schema "
                    f"(expected {width + 3})"
                )
            surrogate, *values_and_span = row
            values = tuple(values_and_span[:width])
            valid_from, valid_to = values_and_span[width:]
            tuples.append(
                MultiTuple(surrogate, values, valid_from, valid_to)
            )
        return cls(schema, tuples)

    def __iter__(self) -> Iterator[MultiTuple]:
        return iter(self.tuples)

    def __len__(self) -> int:
        return len(self.tuples)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MultiAttributeRelation):
            return NotImplemented
        key = lambda t: (repr(t.surrogate), t.valid_from, t.valid_to)
        return self.schema == other.schema and sorted(
            self.tuples, key=key
        ) == sorted(other.tuples, key=key)

    def __hash__(self):  # pragma: no cover - mutable-ish container
        raise TypeError("MultiAttributeRelation is unhashable")

    # ------------------------------------------------------------------
    # temporal normalization
    # ------------------------------------------------------------------
    def decompose(self) -> dict[str, TemporalRelation]:
        """One coalesced single-attribute relation per attribute."""
        out: dict[str, TemporalRelation] = {}
        for index, name in enumerate(self.schema.attribute_names):
            single = TemporalRelation(
                self.schema.single_attribute_schema(name),
                (
                    TemporalTuple(
                        tup.surrogate,
                        tup.values[index],
                        tup.valid_from,
                        tup.valid_to,
                    )
                    for tup in self.tuples
                ),
            )
            out[name] = coalesce(single)
        return out

    def attribute(self, name: str) -> TemporalRelation:
        """Decompose a single attribute."""
        return self.decompose()[name]

    def snapshot(self, point: int) -> dict[Hashable, tuple]:
        """Surrogate -> value vector at one timepoint."""
        return {
            tup.surrogate: tup.values
            for tup in self.tuples
            if covers_point(tup, point)
        }


def recompose(
    schema: MultiAttributeSchema,
    parts: Mapping[str, TemporalRelation],
) -> MultiAttributeRelation:
    """Temporal natural join of per-attribute relations.

    For each surrogate, the per-attribute timelines are swept together;
    a multi-attribute tuple is emitted for every maximal interval on
    which *every* attribute has a (single) value.  Raises
    :class:`~repro.errors.TemporalModelError` if any attribute has
    overlapping same-surrogate tuples (the value at a point would be
    ambiguous).
    """
    missing = set(schema.attribute_names) - set(parts)
    if missing:
        raise SchemaError(f"missing attribute relations: {sorted(missing)}")

    per_surrogate: dict[Hashable, dict[str, list[TemporalTuple]]] = {}
    for name in schema.attribute_names:
        for tup in parts[name]:
            per_surrogate.setdefault(tup.surrogate, {}).setdefault(
                name, []
            ).append(tup)

    tuples: list[MultiTuple] = []
    for surrogate, by_attribute in per_surrogate.items():
        if len(by_attribute) != len(schema.attribute_names):
            continue  # some attribute never defined for this object
        timelines = []
        for name in schema.attribute_names:
            history = sorted(by_attribute[name], key=lifespan_key)
            for prev, cur in zip(history, history[1:]):
                if starts_before(cur, prev.valid_to):
                    raise TemporalModelError(
                        f"attribute {name!r} of {surrogate!r} has "
                        "overlapping periods; recomposition is ambiguous"
                    )
            timelines.append(history)
        tuples.extend(_sweep_surrogate(surrogate, timelines))
    return MultiAttributeRelation(schema, tuples)


def _sweep_surrogate(
    surrogate: Hashable, timelines: list[list[TemporalTuple]]
) -> Iterator[MultiTuple]:
    """Emit the maximal intervals on which every timeline is defined,
    splitting at every boundary of any attribute."""
    boundaries: set[int] = set()
    for history in timelines:
        for tup in history:
            boundaries.add(tup.valid_from)
            boundaries.add(tup.valid_to)
    points = sorted(boundaries)
    pending: Optional[MultiTuple] = None
    for start, end in zip(points, points[1:]):
        values = []
        for history in timelines:
            value = _value_at(history, start)
            if value is _UNDEFINED:
                break
            values.append(value)
        else:
            segment = MultiTuple(surrogate, tuple(values), start, end)
            if (
                pending is not None
                and pending.valid_to == segment.valid_from
                and pending.values == segment.values
            ):
                pending = MultiTuple(
                    surrogate, pending.values, pending.valid_from, end
                )
            else:
                if pending is not None:
                    yield pending
                pending = segment
            continue
        if pending is not None:
            yield pending
            pending = None
    if pending is not None:
        yield pending


class _Undefined:
    __slots__ = ()


_UNDEFINED = _Undefined()


def _value_at(history: list[TemporalTuple], point: int) -> Any:
    for tup in history:
        if covers_point(tup, point):
            return tup.value
    return _UNDEFINED
