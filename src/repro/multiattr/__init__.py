"""Multiple time-varying attributes: temporal normalization
(decompose) and temporal natural join (recompose)."""

from .relation import (
    MultiAttributeRelation,
    MultiAttributeSchema,
    MultiTuple,
    recompose,
)

__all__ = [
    "MultiAttributeRelation",
    "MultiAttributeSchema",
    "MultiTuple",
    "recompose",
]
