"""repro — a reproduction of Leung & Muntz, "Query Processing for
Temporal Databases" (UCLA CSD-890024 / ICDE 1990).

The package implements the paper's full pipeline:

* :mod:`repro.model` — the temporal data model: discrete time,
  half-open lifespans, temporal 4-tuples, relations, sort orders, and
  integrity constraints (Section 2);
* :mod:`repro.allen` — the thirteen interval relationships, their
  explicit inequality constraints, and a derived composition table
  (Figure 2);
* :mod:`repro.relational` / :mod:`repro.query` / :mod:`repro.algebra`
  — the conventional system of Section 3: a Quel-like query language,
  logical algebra with selection/projection pushdown (Figure 3), and a
  Volcano-style execution engine;
* :mod:`repro.streams` — the paper's contribution: single-pass stream
  processors for the temporal joins and semijoins, with workspace
  accounting and the executable Tables 1-3 (Section 4);
* :mod:`repro.semantic` — semantic query optimization: inequality
  implication, redundant-predicate elimination, and recognition of the
  Contained-semijoin inside less-than joins (Section 5, Figure 8);
* :mod:`repro.optimizer` — cost-based choice among sort orders, stream
  algorithms, and nested loops;
* :mod:`repro.storage` / :mod:`repro.stats` / :mod:`repro.workload` —
  supporting substrates: simulated paged storage with I/O accounting,
  statistics estimators, and deterministic synthetic workloads;
* :mod:`repro.superstar` — the running example end to end, three ways.

Quickstart::

    from repro.model import Interval, TemporalTuple, TS_ASC
    from repro.streams import ContainJoinTsTs, TupleStream

    xs = [TemporalTuple("job", "long", 0, 100)]
    ys = [TemporalTuple("task", "short", 10, 20)]
    join = ContainJoinTsTs(
        TupleStream.from_tuples(xs, order=TS_ASC),
        TupleStream.from_tuples(ys, order=TS_ASC),
    )
    pairs = join.run()           # [(long-job-tuple, short-task-tuple)]
    join.metrics.workspace_high_water  # bounded state, single pass
"""

from . import (
    algebra,
    allen,
    bitemporal,
    model,
    multiattr,
    optimizer,
    patterns,
    query,
    relational,
    semantic,
    stats,
    storage,
    streams,
    superstar,
    workload,
)
from .errors import ReproError

__version__ = "1.0.0"

__all__ = [
    "ReproError",
    "__version__",
    "algebra",
    "allen",
    "bitemporal",
    "model",
    "multiattr",
    "optimizer",
    "patterns",
    "query",
    "relational",
    "semantic",
    "stats",
    "storage",
    "streams",
    "superstar",
    "workload",
]
