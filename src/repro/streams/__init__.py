"""Stream processing engine for temporal operators (Section 4).

Exposes instrumented streams, workspace accounting, advancement
policies, the stream processors themselves, and the executable form of
the paper's Tables 1-3 (:mod:`repro.streams.registry`).
"""

from .metrics import ProcessorMetrics
from .policies import AdvancePolicy, LambdaPolicy, MinKeyPolicy
from .processors import *  # noqa: F401,F403 - curated re-export
from .processors import __all__ as _processors_all
from .registry import (
    BACKENDS,
    STATE_CLASS_DESCRIPTIONS,
    RegistryEntry,
    TemporalOperator,
    entries_for,
    lookup,
    supported_entries,
)
from .stream import TupleStream
from .workspace import Workspace, WorkspaceMeter, WorkspaceReport

__all__ = [
    "AdvancePolicy",
    "BACKENDS",
    "LambdaPolicy",
    "MinKeyPolicy",
    "ProcessorMetrics",
    "RegistryEntry",
    "STATE_CLASS_DESCRIPTIONS",
    "TemporalOperator",
    "TupleStream",
    "Workspace",
    "WorkspaceMeter",
    "WorkspaceReport",
    "entries_for",
    "lookup",
    "supported_entries",
] + list(_processors_all)
