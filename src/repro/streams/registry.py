"""Tables 1, 2 and 3 of the paper, as executable data.

The paper's central artifacts are tables mapping (operator, sort order
of X, sort order of Y) to a *state class* — how much local workspace a
single-pass stream algorithm needs, or '-' when no garbage-collection
criterion exists.  This module encodes every row as a
:class:`RegistryEntry` carrying the state-class label, the paper's
textual state characterisation, and a factory building the actual
processor (``None`` for inappropriate rows).

The lower halves of the tables are generated from the upper halves by
time-reversal mirroring, exactly as the paper argues
("the lower half of Table 1 is the mirror image of the upper half").

State classes (Table 1's legend):

* ``a`` — {X tuples whose lifespan spans the Y buffer's key point}
  union {Y tuples whose ValidFrom lies in the buffered X lifespan};
* ``b`` — {X tuples whose lifespan spans y_b.ValidTo} union {Y tuples
  contained in the buffered X lifespan};
* ``c`` — a *subset* of class (a) (semijoins retire matched tuples
  early);
* ``d`` — no state at all: the two input buffers suffice;
* ``-`` — inappropriate: no garbage-collection criterion, state grows
  with the input.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Optional

from ..errors import UnsupportedBackendError, UnsupportedSortOrderError
from ..model.sortorder import (
    TE_ASC,
    TE_DESC,
    TS_ASC,
    TS_DESC,
    Direction,
    SortOrder,
)
from .processors.before import BeforeSemijoin
from .processors.contain_join import ContainJoinTsTe, ContainJoinTsTs
from .processors.contain_semijoin import (
    ContainedSemijoinTeTs,
    ContainedSemijoinTsTs,
    ContainSemijoinTsTe,
    ContainSemijoinTsTs,
)
from .processors.mirror import MirroredProcessor
from .processors.overlap import OverlapJoin, OverlapSemijoin
from .processors.self_semijoin import (
    SelfContainedSemijoin,
    SelfContainSemijoin,
    SelfContainSemijoinDesc,
)


class TemporalOperator(enum.Enum):
    """The inequality-temporal operators of Section 4.2."""

    CONTAIN_JOIN = "contain-join"
    CONTAIN_SEMIJOIN = "contain-semijoin"
    CONTAINED_SEMIJOIN = "contained-semijoin"
    OVERLAP_JOIN = "overlap-join"
    OVERLAP_SEMIJOIN = "overlap-semijoin"
    BEFORE_JOIN = "before-join"
    BEFORE_SEMIJOIN = "before-semijoin"
    SELF_CONTAINED_SEMIJOIN = "contained-semijoin(X,X)"
    SELF_CONTAIN_SEMIJOIN = "contain-semijoin(X,X)"


#: Paper wording for each state class.
STATE_CLASS_DESCRIPTIONS = {
    "a": (
        "state = {X tuples whose lifespan span the Y buffer's sweep "
        "point} U {Y tuples whose ValidFrom lie in the buffered X "
        "lifespan}"
    ),
    "b": (
        "state = {X tuples whose lifespan span y_b.ValidTo} U {Y "
        "tuples whose lifespans are contained within the buffered X "
        "lifespan}"
    ),
    "c": (
        "state is a subset of class (a): matched tuples are emitted "
        "and retired immediately"
    ),
    "d": "local workspace = <Buffer-x, Buffer-y> (no state tuples)",
    "-": "inappropriate for stream processing: no garbage-collection criteria",
    "a1": "state = one tuple {x_s} plus the input buffer",
    "b1": (
        "state(x_i) is a subset of {x_j | j > i and x_j overlaps x_i}: "
        "open, not-yet-output candidates"
    ),
}


#: The physical execution backends a table cell may offer.  "tuple" is
#: the paper-faithful one-buffer stream processor; "columnar" is the
#: batch-sweep backend of :mod:`repro.columnar` (same semantics and
#: workspace accounting, different physical execution); "fused" is the
#: endpoint-event sweep backend of :mod:`repro.columnar.fused` (one
#: merged sweep per query, disposal-keyed slot store, lazy join
#: materialisation).
BACKENDS = ("tuple", "columnar", "fused")


@dataclass(frozen=True)
class RegistryEntry:
    """One table cell: operator x sort orders -> algorithm + state class."""

    operator: TemporalOperator
    x_order: SortOrder
    y_order: Optional[SortOrder]
    state_class: str
    factory: Optional[Callable]
    mirrored: bool = False
    #: True when the algorithm works regardless of input sort orders
    #: (Before-semijoin); the planner then charges no sorts.
    order_free: bool = False
    #: The columnar batch-sweep alternative for this cell, when one is
    #: implemented ('-' cells have no alternative backend: no sort
    #: order makes them streamable, and batching does not change that).
    columnar_factory: Optional[Callable] = None
    #: The fused endpoint-event sweep alternative for this cell.
    fused_factory: Optional[Callable] = None

    @property
    def supported(self) -> bool:
        return self.factory is not None

    @property
    def backends(self) -> tuple[str, ...]:
        """The physical backends this cell can execute on."""
        names = []
        if self.factory is not None:
            names.append("tuple")
        if self.columnar_factory is not None:
            names.append("columnar")
        if self.fused_factory is not None:
            names.append("fused")
        return tuple(names)

    @property
    def state_description(self) -> str:
        return STATE_CLASS_DESCRIPTIONS[self.state_class]

    def factory_for(self, backend: str = "tuple") -> Callable:
        """The processor factory for one physical backend."""
        if backend not in BACKENDS:
            raise UnsupportedBackendError(
                f"unknown execution backend {backend!r}; "
                f"choose one of {BACKENDS}"
            )
        if self.factory is None:
            raise UnsupportedSortOrderError(
                f"{self.operator.value} has no bounded-workspace stream "
                f"algorithm for orders ([{self.x_order}], "
                f"[{self.y_order}])"
            )
        if backend == "tuple":
            return self.factory
        chosen = (
            self.fused_factory
            if backend == "fused"
            else self.columnar_factory
        )
        if chosen is None:
            raise UnsupportedBackendError(
                f"{self.operator.value} on orders ([{self.x_order}], "
                f"[{self.y_order}]) has no {backend!r} implementation"
            )
        return chosen

    def build(self, x_stream, y_stream=None, backend: str = "tuple"):
        """Instantiate the processor on concrete streams."""
        factory = self.factory_for(backend)
        if self.y_order is None:
            return factory(x_stream)
        return factory(x_stream, y_stream)


def _mirror_factory(factory: Callable, unary: bool = False) -> Callable:
    """Lift an upper-half factory to its time-reversal mirror.

    The wrapper carries the wrapped factory as ``base_factory`` so
    introspection (the plan checker certifying fused slot-store bounds,
    EXPLAIN surfacing kernel names) can reach the concrete processor
    class behind a mirrored cell."""
    if unary:
        wrapper = lambda x: MirroredProcessor(factory, x)  # noqa: E731
    else:
        wrapper = lambda x, y: MirroredProcessor(factory, x, y)  # noqa: E731
    wrapper.base_factory = factory
    return wrapper


def _upper_half_binary() -> list[RegistryEntry]:
    """Upper halves of Tables 1 and 2 (ascending sort orders)."""
    from ..columnar.backend import (
        ColumnarBeforeSemijoin,
        ColumnarContainedSemijoinTeTs,
        ColumnarContainedSemijoinTsTs,
        ColumnarContainJoinTsTe,
        ColumnarContainJoinTsTs,
        ColumnarContainSemijoinTsTe,
        ColumnarContainSemijoinTsTs,
        ColumnarOverlapJoin,
        ColumnarOverlapSemijoin,
        FusedBeforeSemijoin,
        FusedContainedSemijoinTeTs,
        FusedContainedSemijoinTsTs,
        FusedContainJoinTsTe,
        FusedContainJoinTsTs,
        FusedContainSemijoinTsTe,
        FusedContainSemijoinTsTs,
        FusedOverlapJoin,
        FusedOverlapSemijoin,
    )

    T = TemporalOperator
    rows: list[RegistryEntry] = []

    def add(op, xo, yo, cls, factory, columnar=None, fused=None):
        rows.append(
            RegistryEntry(
                op, xo, yo, cls, factory,
                columnar_factory=columnar, fused_factory=fused,
            )
        )

    # --- Table 1, Contain-join -------------------------------------
    add(T.CONTAIN_JOIN, TS_ASC, TS_ASC, "a", ContainJoinTsTs,
        ColumnarContainJoinTsTs, FusedContainJoinTsTs)
    add(T.CONTAIN_JOIN, TS_ASC, TE_ASC, "b", ContainJoinTsTe,
        ColumnarContainJoinTsTe, FusedContainJoinTsTe)
    add(T.CONTAIN_JOIN, TE_ASC, TS_ASC, "-", None)
    add(T.CONTAIN_JOIN, TE_ASC, TE_ASC, "-", None)
    # --- Table 1, Contain-semijoin ----------------------------------
    add(T.CONTAIN_SEMIJOIN, TS_ASC, TS_ASC, "c", ContainSemijoinTsTs,
        ColumnarContainSemijoinTsTs, FusedContainSemijoinTsTs)
    add(T.CONTAIN_SEMIJOIN, TS_ASC, TE_ASC, "d", ContainSemijoinTsTe,
        ColumnarContainSemijoinTsTe, FusedContainSemijoinTsTe)
    add(T.CONTAIN_SEMIJOIN, TE_ASC, TS_ASC, "-", None)
    add(T.CONTAIN_SEMIJOIN, TE_ASC, TE_ASC, "-", None)
    # --- Table 1, Contained-semijoin --------------------------------
    add(T.CONTAINED_SEMIJOIN, TS_ASC, TS_ASC, "c", ContainedSemijoinTsTs,
        ColumnarContainedSemijoinTsTs, FusedContainedSemijoinTsTs)
    add(T.CONTAINED_SEMIJOIN, TS_ASC, TE_ASC, "-", None)
    add(T.CONTAINED_SEMIJOIN, TE_ASC, TS_ASC, "d", ContainedSemijoinTeTs,
        ColumnarContainedSemijoinTeTs, FusedContainedSemijoinTeTs)
    add(T.CONTAINED_SEMIJOIN, TE_ASC, TE_ASC, "-", None)
    # --- Table 2, Overlap -------------------------------------------
    add(T.OVERLAP_JOIN, TS_ASC, TS_ASC, "a", OverlapJoin,
        ColumnarOverlapJoin, FusedOverlapJoin)
    add(T.OVERLAP_JOIN, TS_ASC, TE_ASC, "-", None)
    add(T.OVERLAP_JOIN, TE_ASC, TS_ASC, "-", None)
    add(T.OVERLAP_JOIN, TE_ASC, TE_ASC, "-", None)
    add(T.OVERLAP_SEMIJOIN, TS_ASC, TS_ASC, "b", OverlapSemijoin,
        ColumnarOverlapSemijoin, FusedOverlapSemijoin)
    add(T.OVERLAP_SEMIJOIN, TS_ASC, TE_ASC, "-", None)
    add(T.OVERLAP_SEMIJOIN, TE_ASC, TS_ASC, "-", None)
    add(T.OVERLAP_SEMIJOIN, TE_ASC, TE_ASC, "-", None)
    # --- Section 4.2.4: Before --------------------------------------
    # No sort ordering bounds the join state; the sweep implementation
    # exists but is Theta(|X|) in workspace, which we classify '-'.
    add(T.BEFORE_JOIN, TS_ASC, TS_ASC, "-", None)
    add(T.BEFORE_JOIN, TS_ASC, TE_ASC, "-", None)
    add(T.BEFORE_JOIN, TE_ASC, TS_ASC, "-", None)
    add(T.BEFORE_JOIN, TE_ASC, TE_ASC, "-", None)
    # The semijoin is single-pass and order-independent.
    for xo in (TS_ASC, TE_ASC):
        for yo in (TS_ASC, TE_ASC):
            rows.append(
                RegistryEntry(
                    T.BEFORE_SEMIJOIN, xo, yo, "d", BeforeSemijoin,
                    order_free=True,
                    columnar_factory=ColumnarBeforeSemijoin,
                    fused_factory=FusedBeforeSemijoin,
                )
            )
    return rows


def _build_registry() -> dict:
    from ..columnar.backend import (
        ColumnarBeforeSemijoin,
        ColumnarSelfContainedSemijoin,
        ColumnarSelfContainSemijoin,
        ColumnarSelfContainSemijoinDesc,
        FusedBeforeSemijoin,
        FusedSelfContainedSemijoin,
        FusedSelfContainSemijoin,
        FusedSelfContainSemijoinDesc,
    )

    registry: dict = {}

    def key(entry: RegistryEntry):
        return (
            entry.operator,
            entry.x_order.primary,
            entry.y_order.primary if entry.y_order else None,
        )

    upper = _upper_half_binary()
    for entry in upper:
        registry[key(entry)] = entry
        if entry.order_free:
            # Order-independent algorithms need no mirror: the plain
            # factory is registered for every combination below.
            # (Mirroring Before would also transpose its operands.)
            continue
        mirrored = RegistryEntry(
            entry.operator,
            entry.x_order.mirrored(),
            entry.y_order.mirrored() if entry.y_order else None,
            entry.state_class,
            _mirror_factory(entry.factory) if entry.factory else None,
            mirrored=True,
            columnar_factory=(
                _mirror_factory(entry.columnar_factory)
                if entry.columnar_factory
                else None
            ),
            fused_factory=(
                _mirror_factory(entry.fused_factory)
                if entry.fused_factory
                else None
            ),
        )
        registry.setdefault(key(mirrored), mirrored)

    # Mixed ascending/descending combinations: "it is generally
    # inappropriate to have one relation sorted in ascending order and
    # the other in descending order."
    binary_ops = [
        e.operator for e in upper
    ]
    all_keys = [so.primary for so in (TS_ASC, TS_DESC, TE_ASC, TE_DESC)]
    for op in dict.fromkeys(binary_ops):
        if op is TemporalOperator.BEFORE_SEMIJOIN:
            continue  # genuinely order-independent, filled below
        for xk in all_keys:
            for yk in all_keys:
                registry.setdefault(
                    (op, xk, yk),
                    RegistryEntry(
                        op,
                        SortOrder.of(xk),
                        SortOrder.of(yk),
                        "-",
                        None,
                    ),
                )
    for xk in all_keys:
        for yk in all_keys:
            registry.setdefault(
                (TemporalOperator.BEFORE_SEMIJOIN, xk, yk),
                RegistryEntry(
                    TemporalOperator.BEFORE_SEMIJOIN,
                    SortOrder.of(xk),
                    SortOrder.of(yk),
                    "d",
                    BeforeSemijoin,
                    order_free=True,
                    columnar_factory=ColumnarBeforeSemijoin,
                    fused_factory=FusedBeforeSemijoin,
                ),
            )

    # --- Table 3: self semijoins ------------------------------------
    T = TemporalOperator
    self_rows = [
        RegistryEntry(
            T.SELF_CONTAINED_SEMIJOIN,
            SortOrder.by_ts(secondary_te=True),
            None,
            "a1",
            SelfContainedSemijoin,
            columnar_factory=ColumnarSelfContainedSemijoin,
            fused_factory=FusedSelfContainedSemijoin,
        ),
        RegistryEntry(
            T.SELF_CONTAIN_SEMIJOIN,
            TS_ASC,
            None,
            "b1",
            SelfContainSemijoin,
            columnar_factory=ColumnarSelfContainSemijoin,
            fused_factory=FusedSelfContainSemijoin,
        ),
        RegistryEntry(
            T.SELF_CONTAINED_SEMIJOIN,
            TS_DESC,
            None,
            "-",
            None,
        ),
        RegistryEntry(
            T.SELF_CONTAIN_SEMIJOIN,
            SortOrder.by_ts(Direction.DESC, secondary_te=True),
            None,
            "a1",
            SelfContainSemijoinDesc,
            columnar_factory=ColumnarSelfContainSemijoinDesc,
            fused_factory=FusedSelfContainSemijoinDesc,
        ),
    ]
    for entry in self_rows:
        registry[(entry.operator, entry.x_order.primary, None)] = entry
        if entry.factory is not None:
            mirrored = RegistryEntry(
                entry.operator,
                entry.x_order.mirrored(),
                None,
                entry.state_class,
                _mirror_factory(entry.factory, unary=True),
                mirrored=True,
                columnar_factory=_mirror_factory(
                    entry.columnar_factory, unary=True
                ),
                fused_factory=_mirror_factory(
                    entry.fused_factory, unary=True
                ),
            )
            registry.setdefault(
                (entry.operator, mirrored.x_order.primary, None), mirrored
            )
    for op in (T.SELF_CONTAINED_SEMIJOIN, T.SELF_CONTAIN_SEMIJOIN):
        for xk in all_keys:
            registry.setdefault(
                (op, xk, None),
                RegistryEntry(op, SortOrder.of(xk), None, "-", None),
            )
    return registry


# Built lazily on first lookup: the columnar backend's processors both
# feed this registry and are implemented on top of the streams package,
# so resolving them at import time would be circular.
_REGISTRY: Optional[dict] = None


def _registry() -> dict:
    global _REGISTRY
    if _REGISTRY is None:
        _REGISTRY = _build_registry()
    return _REGISTRY


def lookup(
    operator: TemporalOperator,
    x_order: SortOrder,
    y_order: Optional[SortOrder] = None,
) -> RegistryEntry:
    """The table cell for an operator and sort-order combination.

    Orders are matched on their primary key (a finer secondary order
    never hurts; factories enforce any secondary requirement).
    """
    return _registry()[
        (
            operator,
            x_order.primary,
            y_order.primary if y_order is not None else None,
        )
    ]


def entries_for(operator: TemporalOperator) -> list[RegistryEntry]:
    """All registered cells of one operator (one table column)."""
    return [
        e
        for k, e in sorted(_registry().items(), key=_key_repr)
        if e.operator is operator
    ]


def supported_entries(operator: TemporalOperator) -> list[RegistryEntry]:
    """The cells with an actual algorithm (non '-' rows)."""
    return [e for e in entries_for(operator) if e.supported]


def _key_repr(item):
    (operator, x_key, y_key), _entry = item
    return (operator.value, str(x_key), str(y_key))
