"""Grouped stream aggregation — the Figure-4 example.

The paper introduces stream processing with a processor that "lists all
the departments and computes the sum of all employees' salaries in each
department": when the input is grouped by department, the local
workspace is just the partial sum and the input buffer.

:class:`GroupedAggregate` generalises that processor to any key/value
extraction and any fold; :func:`grouped_sum` is the literal Figure-4
instance.  The implementation works over arbitrary records (not only
temporal tuples) because the Figure-4 input is an
(employee, department, salary) stream.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Generic, Iterable, Iterator, Optional, TypeVar

from ...errors import StreamOrderError

Record = TypeVar("Record")
Key = TypeVar("Key")
Acc = TypeVar("Acc")


@dataclass
class AggregateMetrics:
    """Workspace accounting for the aggregation processor: the state is
    one (key, accumulator) pair, never more — the point of Figure 4."""

    records_read: int = 0
    groups_emitted: int = 0
    #: Peak number of (group, accumulator) pairs held; 1 on grouped
    #: input by construction.
    state_high_water: int = 0


class GroupedAggregate(Generic[Record, Key, Acc]):
    """Fold records group-by-group over a key-grouped stream.

    Parameters
    ----------
    records:
        The input stream.  Records with equal keys must be adjacent
        ("grouped by the department name"); a key that reappears after
        the group has closed raises
        :class:`~repro.errors.StreamOrderError`.
    key:
        Group-key extractor.
    fold:
        ``fold(accumulator, record) -> accumulator``.
    initial:
        Zero-argument factory for a fresh accumulator.
    """

    def __init__(
        self,
        records: Iterable[Record],
        key: Callable[[Record], Key],
        fold: Callable[[Acc, Record], Acc],
        initial: Callable[[], Acc],
    ) -> None:
        self._records = records
        self._key = key
        self._fold = fold
        self._initial = initial
        self.metrics = AggregateMetrics()

    def __iter__(self) -> Iterator[tuple[Key, Acc]]:
        seen_keys: set = set()
        current_key: Optional[Key] = None
        accumulator: Optional[Acc] = None
        open_group = False
        for record in self._records:
            self.metrics.records_read += 1
            record_key = self._key(record)
            if open_group and record_key == current_key:
                accumulator = self._fold(accumulator, record)
                continue
            if record_key in seen_keys:
                raise StreamOrderError(
                    f"input is not grouped: key {record_key!r} reappeared "
                    "after its group closed"
                )
            if open_group:
                self.metrics.groups_emitted += 1
                yield (current_key, accumulator)
            current_key = record_key
            seen_keys.add(record_key)
            accumulator = self._fold(self._initial(), record)
            open_group = True
            self.metrics.state_high_water = max(
                self.metrics.state_high_water, 1
            )
        if open_group:
            self.metrics.groups_emitted += 1
            yield (current_key, accumulator)

    def run(self) -> list:
        return list(self)


def grouped_sum(
    records: Iterable[Record],
    key: Callable[[Record], Any],
    value: Callable[[Record], float],
) -> GroupedAggregate:
    """The Figure-4 processor: sum ``value`` per ``key`` group."""
    return GroupedAggregate(
        records,
        key=key,
        fold=lambda acc, record: acc + value(record),
        initial=lambda: 0,
    )


def grouped_count(
    records: Iterable[Record], key: Callable[[Record], Any]
) -> GroupedAggregate:
    """Count records per group."""
    return GroupedAggregate(
        records,
        key=key,
        fold=lambda acc, _record: acc + 1,
        initial=lambda: 0,
    )


def grouped_average(
    records: Iterable[Record],
    key: Callable[[Record], Any],
    value: Callable[[Record], float],
) -> GroupedAggregate:
    """Average ``value`` per group; accumulators are (count, total) and
    results are finalised by :func:`finalize_average`."""
    return GroupedAggregate(
        records,
        key=key,
        fold=lambda acc, record: (acc[0] + 1, acc[1] + value(record)),
        initial=lambda: (0, 0.0),
    )


def finalize_average(pairs: Iterable[tuple[Any, tuple[int, float]]]):
    """Turn (key, (count, total)) pairs into (key, mean)."""
    for group_key, (count, total) in pairs:
        yield (group_key, total / count)
