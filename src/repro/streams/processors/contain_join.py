"""Contain-join stream processors (Section 4.2.1, Figure 5, Table 1).

``Contain-join(X, Y)`` outputs the pair ``(x, y)`` whenever the lifespan
of ``x`` strictly contains that of ``y``:
``X.TS < Y.TS`` and ``Y.TE < X.TE`` — the *during* relationship of
Figure 2 read from the containing side.

Two sort-order combinations admit a bounded-workspace single-pass
algorithm (the (a) and (b) rows of Table 1):

* :class:`ContainJoinTsTs` — both streams on ValidFrom ascending; the
  state is {X tuples whose lifespan spans the Y buffer's ValidFrom}
  union {Y tuples whose ValidFrom lies within a buffered X lifespan}.
* :class:`ContainJoinTsTe` — X on ValidFrom ascending, Y on ValidTo
  ascending; the state is {X tuples whose lifespan spans the Y buffer's
  ValidTo} union {Y tuples contained in a buffered X lifespan}.

Their time-reversal mirrors (both ValidTo descending; ValidTo
descending with ValidFrom descending) are obtained through the
same classes by mirroring the streams — see
:func:`repro.streams.registry.lookup`.

For any other combination no garbage-collection criterion exists; the
registry reports those as inappropriate, and
:class:`UnboundedStateJoin` (in :mod:`.unbounded`) demonstrates the
linear state growth empirically.
"""

from __future__ import annotations

from typing import Optional

from ...model import sortorder as so
from ...model.interval import (
    ends_by,
    ends_by_start,
    ends_no_later,
    starts_by,
    starts_no_later,
)
from ...model.tuples import TemporalTuple
from ..policies import AdvancePolicy, LambdaPolicy
from ..stream import TupleStream
from .base import te_key, ts_key
from .baseline import contain_predicate
from .sweep import SymmetricSweepJoin


class ContainJoinTsTs(SymmetricSweepJoin):
    """Contain-join with both inputs sorted on ValidFrom ascending.

    Garbage collection (Section 4.2.1, step 3):

    * an X state tuple is disposable once ``X.TE <= y_b.TS`` — every
      future Y starts at or after ``y_b.TS``, so its lifespan cannot end
      strictly inside X's;
    * a Y state tuple is disposable once ``Y.TS <= x_b.TS`` — every
      future X starts at or after ``x_b.TS`` and therefore cannot start
      strictly before Y does.
    """

    operator = "contain-join[TS^,TS^]"

    def __init__(
        self,
        x: TupleStream,
        y: TupleStream,
        policy: Optional[AdvancePolicy] = None,
    ) -> None:
        super().__init__(x, y, policy=policy)
        self._require_order(x, (so.TS_ASC,), "X")
        self._require_order(y, (so.TS_ASC,), "Y")

    def match(self, x_tuple: TemporalTuple, y_tuple: TemporalTuple) -> bool:
        return contain_predicate(x_tuple, y_tuple)

    x_sweep_key = staticmethod(ts_key)
    y_sweep_key = staticmethod(ts_key)

    def x_disposable(self, state_tuple, y_buffer) -> bool:
        return ends_by_start(state_tuple, y_buffer)

    def y_disposable(self, state_tuple, x_buffer) -> bool:
        return starts_no_later(state_tuple, x_buffer)

    @classmethod
    def lambda_policy(
        cls, inter_arrival_x: float, inter_arrival_y: float
    ) -> LambdaPolicy:
        """The paper's 1/lambda advancement heuristic instantiated for
        this operator's disposal criteria."""
        return LambdaPolicy(
            inter_arrival_x,
            inter_arrival_y,
            ts_key,
            ts_key,
            # Advancing X moves x_b.TS forward; Y state tuples with
            # ValidFrom at or below the expected next X start become
            # disposable.
            y_disposable_if_x_advances=(
                lambda y_tup, next_x: starts_by(y_tup, next_x)
            ),
            # Advancing Y moves y_b.TS forward; X state tuples ending at
            # or before the expected next Y start become disposable.
            x_disposable_if_y_advances=(
                lambda x_tup, next_y: ends_by(x_tup, next_y)
            ),
        )


class ContainJoinTsTe(SymmetricSweepJoin):
    """Contain-join with X sorted on ValidFrom ascending and Y sorted on
    ValidTo ascending (state class (b) of Table 1).

    Garbage collection:

    * an X state tuple is disposable once ``X.TE <= y_b.TE`` — future Y
      tuples end at or after ``y_b.TE``, never strictly inside X;
    * a Y state tuple is disposable once ``Y.TS <= x_b.TS`` — future X
      tuples cannot start strictly before it.
    """

    operator = "contain-join[TS^,TE^]"

    def __init__(
        self,
        x: TupleStream,
        y: TupleStream,
        policy: Optional[AdvancePolicy] = None,
    ) -> None:
        super().__init__(x, y, policy=policy)
        self._require_order(x, (so.TS_ASC,), "X")
        self._require_order(y, (so.TE_ASC,), "Y")

    def match(self, x_tuple: TemporalTuple, y_tuple: TemporalTuple) -> bool:
        return contain_predicate(x_tuple, y_tuple)

    x_sweep_key = staticmethod(ts_key)
    y_sweep_key = staticmethod(te_key)

    def x_disposable(self, state_tuple, y_buffer) -> bool:
        return ends_no_later(state_tuple, y_buffer)

    def y_disposable(self, state_tuple, x_buffer) -> bool:
        return starts_no_later(state_tuple, x_buffer)

    @classmethod
    def lambda_policy(
        cls, inter_arrival_x: float, inter_arrival_y: float
    ) -> LambdaPolicy:
        return LambdaPolicy(
            inter_arrival_x,
            inter_arrival_y,
            ts_key,
            te_key,
            y_disposable_if_x_advances=(
                lambda y_tup, next_x: starts_by(y_tup, next_x)
            ),
            x_disposable_if_y_advances=(
                lambda x_tup, next_y: ends_by(x_tup, next_y)
            ),
        )
