"""The symmetric sweep skeleton shared by the binary stream joins.

The Contain-join and Overlap-join algorithms of Sections 4.2.1 and
4.2.4 share one shape:

1. *Read phase* — choose an input stream (via an
   :class:`~repro.streams.policies.AdvancePolicy`) and consume its
   buffered tuple;
2. *Join phase* — probe the consumed tuple against the opposite state
   space, emitting every pair that satisfies the join condition;
3. copy the consumed tuple into its own state space (it may join with
   tuples not yet read from the opposite stream);
4. *Garbage-collection phase* — evict state tuples that the
   operator-specific safety criteria prove can never match a future
   tuple of the opposite stream.

Correctness is independent of the advancement policy: only tuples that
provably cannot participate in further results are evicted, and a pair
is emitted exactly once — when the second of its two tuples is
consumed.  The policy (and the sort orders) determine how large the
state spaces grow, which is exactly the trade-off Table 1 describes.
"""

from __future__ import annotations

import abc
from typing import Iterator, Optional

from ...errors import ProcessorStateError
from ...model.tuples import TemporalTuple
from ..policies import AdvancePolicy, MinKeyPolicy, X, Y
from ..stream import TupleStream
from .base import StreamProcessor


class SymmetricSweepJoin(StreamProcessor):
    """Base class for two-stream sweep joins with per-side GC rules.

    Subclasses configure:

    * :meth:`match` — the join condition;
    * :meth:`x_sweep_key` / :meth:`y_sweep_key` — each stream's
      monotone sweep key (TS for ValidFrom-sorted streams, TE for
      ValidTo-sorted ones);
    * :meth:`x_disposable` — when an X state tuple cannot match the
      current Y buffer nor anything after it;
    * :meth:`y_disposable` — symmetric, against the X buffer.
    """

    def __init__(
        self,
        x: TupleStream,
        y: TupleStream,
        policy: Optional[AdvancePolicy] = None,
    ) -> None:
        super().__init__(x, y)
        self.policy = policy or MinKeyPolicy(
            self.x_sweep_key, self.y_sweep_key
        )
        self.x_state = self.new_workspace("x-state")
        self.y_state = self.new_workspace("y-state")

    # ------------------------------------------------------------------
    # subclass hooks
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def match(self, x_tuple: TemporalTuple, y_tuple: TemporalTuple) -> bool:
        """The join condition."""

    @staticmethod
    @abc.abstractmethod
    def x_sweep_key(tup: TemporalTuple) -> int:
        """Monotone key of the X stream."""

    @staticmethod
    @abc.abstractmethod
    def y_sweep_key(tup: TemporalTuple) -> int:
        """Monotone key of the Y stream."""

    @abc.abstractmethod
    def x_disposable(
        self, state_tuple: TemporalTuple, y_buffer: TemporalTuple
    ) -> bool:
        """True when ``state_tuple`` (from X) can match neither
        ``y_buffer`` nor any Y tuple after it."""

    @abc.abstractmethod
    def y_disposable(
        self, state_tuple: TemporalTuple, x_buffer: TemporalTuple
    ) -> bool:
        """Symmetric criterion for Y state tuples."""

    # ------------------------------------------------------------------
    # the sweep
    # ------------------------------------------------------------------
    def _execute(self) -> Iterator[tuple[TemporalTuple, TemporalTuple]]:
        if self.y is None:
            raise ProcessorStateError(f"{self.operator} needs a Y stream")
        self.x.advance()
        self.y.advance()
        while True:
            x_buf = self.x.buffer
            y_buf = self.y.buffer
            # Early termination (Section 4.2.1 step 5): once a stream is
            # exhausted and its state is empty, nothing the other stream
            # still holds can produce output.
            if x_buf is None and not self.x_state:
                return
            if y_buf is None and not self.y_state:
                return
            if x_buf is None and y_buf is None:
                return
            if x_buf is None:
                side = Y
            elif y_buf is None:
                side = X
            else:
                side = self.policy.choose(
                    x_buf, y_buf, self.x_state, self.y_state
                )

            if side == X:
                consumed = x_buf
                if consumed is None:
                    raise ProcessorStateError(
                        f"{self.operator}: policy chose X with no X buffer"
                    )
                for candidate in self.y_state:
                    self.note_comparison()
                    if self.match(consumed, candidate):
                        yield (consumed, candidate)
                # A consumed tuple joins future opposite tuples only if
                # the opposite stream can still produce any.
                if not self.y.exhausted:
                    self.x_state.insert(consumed)
                self.x.advance()
            else:
                consumed = y_buf
                if consumed is None:
                    raise ProcessorStateError(
                        f"{self.operator}: policy chose Y with no Y buffer"
                    )
                for candidate in self.x_state:
                    self.note_comparison()
                    if self.match(candidate, consumed):
                        yield (candidate, consumed)
                if not self.x.exhausted:
                    self.y_state.insert(consumed)
                self.y.advance()

            self._garbage_collect()

    def _garbage_collect(self) -> None:
        """Step 3 of the Section-4.2.1 algorithm."""
        if self.y is None:
            raise ProcessorStateError(f"{self.operator} needs a Y stream")
        y_buf = self.y.buffer
        if y_buf is not None:
            self.x_state.evict_where(
                lambda t: self.x_disposable(t, y_buf)
            )
        elif self.y.exhausted:
            self.x_state.clear()
        x_buf = self.x.buffer
        if x_buf is not None:
            self.y_state.evict_where(
                lambda t: self.y_disposable(t, x_buf)
            )
        elif self.x.exhausted:
            self.y_state.clear()
