"""Merge-based stream joins for the equality-bearing Allen operators.

Footnote 8 of the paper: "For non-inequality constraints, an obvious
stream processing method appears to be sorting both relations on
attributes that are involved in the equalities followed by a
conventional merge-join (and perhaps combined with filtering using
inequality constraints)."

This module carries that out for the Figure-2 operators whose explicit
constraints contain an equality:

* :class:`EqualJoin` — ``X.TS = Y.TS and X.TE = Y.TE``; both inputs on
  (ValidFrom^, ValidTo^), merged on the full (TS, TE) key;
* :class:`MeetsJoin` — ``X.TE = Y.TS``; X on ValidTo^, Y on
  ValidFrom^, merged on X.TE vs Y.TS;
* :class:`StartsJoin` — ``X.TS = Y.TS and X.TE < Y.TE``; both on
  ValidFrom^, merged on TS with the inequality as a residual filter;
* :class:`FinishesJoin` — ``X.TE = Y.TE and X.TS > Y.TS``; both on
  ValidTo^, merged on TE with the residual filter.

The inverse operators are obtained by swapping the operands at the call
site (``met-by(X, Y) == meets(Y, X)`` with the pair transposed).

All four share :class:`EndpointMergeJoin`: a classic sort-merge join on
one endpoint per side, buffering same-key groups (the merge join's
usual workspace) and applying a residual predicate to each pair.
"""

from __future__ import annotations

from typing import Callable, Iterator, Optional, Sequence

from ...errors import ProcessorStateError
from ...model import sortorder as so
from ...model.interval import ends_strictly_before, starts_strictly_before
from ...model.tuples import TemporalTuple
from ..stream import TupleStream
from .base import StreamProcessor, te_key, ts_key

Residual = Callable[[TemporalTuple, TemporalTuple], bool]


class EndpointMergeJoin(StreamProcessor):
    """Sort-merge join on one endpoint per stream, with a residual
    join condition evaluated over each same-key pair."""

    operator = "endpoint-merge-join"

    def __init__(
        self,
        x: TupleStream,
        y: TupleStream,
        x_key: Callable[[TemporalTuple], int],
        y_key: Callable[[TemporalTuple], int],
        x_orders: Sequence[so.SortOrder],
        y_orders: Sequence[so.SortOrder],
        residual: Optional[Residual] = None,
    ) -> None:
        super().__init__(x, y)
        self._require_order(x, tuple(x_orders), "X")
        self._require_order(y, tuple(y_orders), "Y")
        self._x_key = x_key
        self._y_key = y_key
        self.residual = residual
        self.x_group = self.new_workspace("x-group")
        self.y_group = self.new_workspace("y-group")

    def _execute(self) -> Iterator[tuple[TemporalTuple, TemporalTuple]]:
        if self.y is None:
            raise ProcessorStateError(f"{self.operator} needs a Y stream")
        self.x.advance()
        self.y.advance()
        while self.x.buffer is not None and self.y.buffer is not None:
            x_val = self._x_key(self.x.buffer)
            y_val = self._y_key(self.y.buffer)
            self.note_comparison()
            if x_val < y_val:
                self.x.advance()
            elif y_val < x_val:
                self.y.advance()
            else:
                yield from self._join_groups(x_val)

    def _join_groups(
        self, key: int
    ) -> Iterator[tuple[TemporalTuple, TemporalTuple]]:
        if self.y is None:
            raise ProcessorStateError(f"{self.operator} needs a Y stream")
        while (
            self.x.buffer is not None and self._x_key(self.x.buffer) == key
        ):
            self.x_group.insert(self.x.buffer)
            self.x.advance()
        while (
            self.y.buffer is not None and self._y_key(self.y.buffer) == key
        ):
            self.y_group.insert(self.y.buffer)
            self.y.advance()
        for x_tuple in self.x_group:
            for y_tuple in self.y_group:
                self.note_comparison()
                if self.residual is None or self.residual(x_tuple, y_tuple):
                    yield (x_tuple, y_tuple)
        self.x_group.clear()
        self.y_group.clear()


class EqualJoin(EndpointMergeJoin):
    """``X equal Y``: identical lifespans.  Merging on ValidFrom with
    the ValidTo equality as residual needs both inputs on
    (ValidFrom^, ValidTo^) so equal-start groups are contiguous."""

    operator = "equal-join[TS^TE^,TS^TE^]"

    def __init__(self, x: TupleStream, y: TupleStream) -> None:
        super().__init__(
            x,
            y,
            x_key=ts_key,
            y_key=ts_key,
            x_orders=(so.TS_TE_ASC,),
            y_orders=(so.TS_TE_ASC,),
            residual=lambda a, b: a.valid_to == b.valid_to,
        )


class MeetsJoin(EndpointMergeJoin):
    """``X meets Y``: ``X.TE = Y.TS``.  X on ValidTo^, Y on
    ValidFrom^."""

    operator = "meets-join[TE^,TS^]"

    def __init__(self, x: TupleStream, y: TupleStream) -> None:
        super().__init__(
            x,
            y,
            x_key=te_key,
            y_key=ts_key,
            x_orders=(so.TE_ASC,),
            y_orders=(so.TS_ASC,),
        )


class StartsJoin(EndpointMergeJoin):
    """``X starts Y``: shared start, X ends strictly earlier.  Both on
    ValidFrom^, inequality filtered per pair."""

    operator = "starts-join[TS^,TS^]"

    def __init__(self, x: TupleStream, y: TupleStream) -> None:
        super().__init__(
            x,
            y,
            x_key=ts_key,
            y_key=ts_key,
            x_orders=(so.TS_ASC,),
            y_orders=(so.TS_ASC,),
            residual=lambda a, b: ends_strictly_before(a, b),
        )


class FinishesJoin(EndpointMergeJoin):
    """``X finishes Y``: shared end, X starts strictly later.  Both on
    ValidTo^."""

    operator = "finishes-join[TE^,TE^]"

    def __init__(self, x: TupleStream, y: TupleStream) -> None:
        super().__init__(
            x,
            y,
            x_key=te_key,
            y_key=te_key,
            x_orders=(so.TE_ASC,),
            y_orders=(so.TE_ASC,),
            residual=lambda a, b: starts_strictly_before(b, a),
        )
