"""Base class and shared plumbing for stream processors.

A stream processor (Section 4.1) consumes one or two sorted
:class:`~repro.streams.stream.TupleStream` inputs, keeps local state in
:class:`~repro.streams.workspace.Workspace` spaces, and emits an output
stream.  Concrete operators implement :meth:`StreamProcessor._execute`
as a generator; the base class wires up workspace metering, sort-order
admission checks, and the :class:`~repro.streams.metrics.
ProcessorMetrics` report.
"""

from __future__ import annotations

import abc
from typing import Iterator, Optional, Sequence

from ...errors import ExecutionError, UnsupportedSortOrderError
from ...model.sortorder import SortOrder, order_satisfies
from ...model.tuples import TemporalTuple
from ...obs.metrics import active_registry
from ...obs.trace import get_tracer
from ..metrics import ProcessorMetrics
from ..stream import TupleStream
from ..workspace import Workspace, WorkspaceMeter, WorkspaceReport


def ts_key(tup: TemporalTuple) -> int:
    """Sweep key of a ValidFrom-sorted stream."""
    return tup.valid_from


def te_key(tup: TemporalTuple) -> int:
    """Sweep key of a ValidTo-sorted stream."""
    return tup.valid_to


class StreamProcessor(abc.ABC):
    """Common machinery for unary and binary stream operators."""

    #: Human-readable operator name (set by subclasses).
    operator: str = "stream-processor"

    def __init__(
        self,
        x: TupleStream,
        y: Optional[TupleStream] = None,
    ) -> None:
        self.x = x
        self.y = y
        self.meter = WorkspaceMeter()
        registry = active_registry()
        if registry is not None:
            self.meter.observer = registry.histogram(
                "repro_workspace_state_tuples",
                "Joint workspace size sampled after every state "
                "insertion/eviction",
            ).observe
        self.metrics = ProcessorMetrics(
            buffers=1 if y is None else 2
        )
        self._workspaces: list[Workspace] = []
        self._consumed = False

    # ------------------------------------------------------------------
    # admission checks
    # ------------------------------------------------------------------
    def _require_order(
        self,
        stream: TupleStream,
        acceptable: Sequence[SortOrder],
        role: str,
    ) -> None:
        """Reject streams whose declared order cannot support the
        algorithm — the executable form of the '-' cells in Tables 1-3."""
        if any(
            order_satisfies(stream.order, required) for required in acceptable
        ):
            return
        wanted = " or ".join(f"[{o}]" for o in acceptable)
        raise UnsupportedSortOrderError(
            f"{self.operator} requires the {role} stream sorted by "
            f"{wanted}; stream {stream.name!r} declares "
            f"[{stream.order}]"
        )

    # ------------------------------------------------------------------
    # workspace management
    # ------------------------------------------------------------------
    def new_workspace(self, name: str) -> Workspace:
        """A state space wired into this operator's joint meter."""
        ws: Workspace = Workspace(name, meter=self.meter)
        self._workspaces.append(ws)
        return ws

    def note_comparison(self, count: int = 1) -> None:
        self.metrics.comparisons += count

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def _execute(self) -> Iterator:
        """The operator body; yields output tuples/pairs."""

    def __iter__(self) -> Iterator:
        if self._consumed:
            raise ExecutionError(
                f"{self.operator} has already been executed; stream "
                "processors are single-use"
            )
        self._consumed = True
        tracer = get_tracer()
        with tracer.span(f"operator:{self.operator}") as span:
            for item in self._execute():
                self.metrics.output_count += 1
                yield item
            self._finalise_metrics()
            if tracer.enabled:
                span.set(**self.metrics.to_dict())

    def run(self) -> list:
        """Execute to completion and return the materialised output."""
        return list(self)

    def _finalise_metrics(self) -> None:
        self.metrics.tuples_read_x = self.x.tuples_read
        self.metrics.passes_x = self.x.passes
        self.metrics.pass_reads_x = self.x.pass_reads
        if self.y is not None:
            self.metrics.tuples_read_y = self.y.tuples_read
            self.metrics.passes_y = self.y.passes
            self.metrics.pass_reads_y = self.y.pass_reads
        self.metrics.workspace = WorkspaceReport.from_meter(self.meter)
        self.metrics.state_high_water = {
            ws.name: ws.high_water for ws in self._workspaces
        }
        registry = active_registry()
        if registry is not None:
            registry.counter(
                "repro_operator_runs_total",
                "Stream-operator executions finalised",
            ).inc(operator=self.operator)
            registry.counter(
                "repro_operator_output_tuples_total",
                "Tuples/pairs emitted by stream operators",
            ).inc(self.metrics.output_count, operator=self.operator)
            registry.counter(
                "repro_operator_comparisons_total",
                "Join/state-maintenance comparisons performed",
            ).inc(self.metrics.comparisons, operator=self.operator)
