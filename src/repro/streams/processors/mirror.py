"""Time-reversal mirroring (Section 4.2.1's symmetry remark).

"Sorting both relations X and Y on attribute ValidTo in descending
order would have the same effect as sorting them on attribute ValidFrom
in ascending order because of symmetry (although the ValidFrom and
ValidTo attributes exchange their roles); the lower half of Table 1 is
therefore the mirror image of the upper half."

We make that argument executable: reversing time maps the lifespan
``[TS, TE)`` to ``[-TE, -TS)`` and turns a ValidTo-descending stream
into a ValidFrom-ascending one, while preserving containment and
overlap (and swapping the operands of *before*).  A processor for a
lower-half sort-order row is therefore obtained by mirroring the
inputs, running the upper-half algorithm, and un-mirroring the outputs
— no new garbage-collection analysis needed.
"""

from __future__ import annotations

from typing import Callable, Iterator, Union

from ...model.tuples import TemporalTuple
from ..metrics import ProcessorMetrics
from ..stream import TupleStream
from .base import StreamProcessor

JoinOutput = Union[TemporalTuple, tuple]


def mirror_tuple(tup: TemporalTuple) -> TemporalTuple:
    """Reverse time: ``[TS, TE)`` becomes ``[-TE, -TS)``.  An
    involution — applying it twice restores the tuple."""
    return TemporalTuple(
        tup.surrogate, tup.value, -tup.valid_to, -tup.valid_from
    )


def mirror_stream(stream: TupleStream) -> TupleStream:
    """A view of ``stream`` with every tuple time-reversed and the
    declared sort order mirrored (TS^ <-> TEv).  Reading the view pulls
    from, and is counted against, the original stream."""

    def factory() -> Iterator[TemporalTuple]:
        # Bypass the original stream's single-buffer cursor: mirroring
        # happens below any processor, so the inner processor's reads
        # drive the original source directly.
        return (mirror_tuple(t) for t in stream._source_factory())

    mirrored = TupleStream(
        factory,
        order=stream.order.mirrored() if stream.order else None,
        name=f"mirror({stream.name})",
        verify_order=stream.verify_order,
        recovery=stream.recovery,
        report=stream.report,
    )
    return mirrored


class MirroredProcessor:
    """Run an upper-half algorithm on time-reversed inputs.

    Parameters
    ----------
    factory:
        Builds the inner processor from the mirrored streams, e.g.
        ``lambda mx, my: ContainJoinTsTs(mx, my)``.
    x, y:
        The original (lower-half-sorted) streams; ``y`` may be ``None``
        for unary operators.
    swap_operands:
        For operators that reversal transposes (Before): feed the
        mirrored Y as the algorithm's X and vice versa, and swap each
        output pair back.
    """

    operator = "mirrored"

    def __init__(
        self,
        factory: Callable[..., StreamProcessor],
        x: TupleStream,
        y: TupleStream | None = None,
        swap_operands: bool = False,
    ) -> None:
        self._original_x = x
        self._original_y = y
        mirrored_x = mirror_stream(x)
        mirrored_y = mirror_stream(y) if y is not None else None
        if swap_operands:
            if mirrored_y is None:
                raise ValueError("operand swap requires a binary operator")
            mirrored_x, mirrored_y = mirrored_y, mirrored_x
        self._swap = swap_operands
        if mirrored_y is None:
            self.inner = factory(mirrored_x)
        else:
            self.inner = factory(mirrored_x, mirrored_y)
        self.operator = f"mirror({self.inner.operator})"

    def __iter__(self) -> Iterator[JoinOutput]:
        for item in self.inner:
            if isinstance(item, tuple):
                left, right = item
                if self._swap:
                    left, right = right, left
                yield (mirror_tuple(left), mirror_tuple(right))
            else:
                yield mirror_tuple(item)

    def run(self) -> list:
        return list(self)

    @property
    def metrics(self) -> ProcessorMetrics:
        """The inner algorithm's metrics (workspace, comparisons,
        output count).  Stream-side read counters refer to the mirrored
        views, which pull one-for-one from the originals."""
        return self.inner.metrics
