"""Nested-loop baselines (the paper's 'conventional approach').

Section 3 observes that conventional systems process less-than joins
with nested loops.  These operators serve two roles here:

* correctness oracles — every stream processor's output is compared
  against the corresponding nested-loop result in the test suite;
* the baseline side of every benchmark, with comparison counts and
  stream passes reported so the stream algorithms' advantage is
  measurable.
"""

from __future__ import annotations

from typing import Callable, Iterator

from ...errors import ProcessorStateError
from ...model.interval import (
    contains_lifespan,
    ends_before_start,
    lifespans_intersect,
)
from ...model.tuples import TemporalTuple
from ..stream import TupleStream
from .base import StreamProcessor

Predicate = Callable[[TemporalTuple, TemporalTuple], bool]


class NestedLoopJoin(StreamProcessor):
    """Tuple-at-a-time nested loop join: for every X tuple, rescan Y.

    The inner stream is restarted per outer tuple, so ``passes_y``
    grows with ``|X|`` — the multiple-scan behaviour stream processing
    avoids.  Works for *any* join predicate and any (or no) sort order.
    """

    operator = "nested-loop-join"

    def __init__(
        self, x: TupleStream, y: TupleStream, predicate: Predicate
    ) -> None:
        super().__init__(x, y)
        self.predicate = predicate

    def _execute(self) -> Iterator[tuple[TemporalTuple, TemporalTuple]]:
        if self.y is None:
            raise ProcessorStateError(f"{self.operator} needs a Y stream")
        while True:
            outer = self.x.advance()
            if outer is None:
                return
            self.y.restart()
            while True:
                inner = self.y.advance()
                if inner is None:
                    break
                self.note_comparison()
                if self.predicate(outer, inner):
                    yield (outer, inner)


class NestedLoopSemijoin(StreamProcessor):
    """Nested-loop semijoin: emit each X tuple with a matching Y tuple.

    Stops the inner scan at the first match, which is the strongest
    reasonable nested-loop contender for semijoin baselines.
    """

    operator = "nested-loop-semijoin"

    def __init__(
        self, x: TupleStream, y: TupleStream, predicate: Predicate
    ) -> None:
        super().__init__(x, y)
        self.predicate = predicate

    def _execute(self) -> Iterator[TemporalTuple]:
        if self.y is None:
            raise ProcessorStateError(f"{self.operator} needs a Y stream")
        while True:
            outer = self.x.advance()
            if outer is None:
                return
            self.y.restart()
            while True:
                inner = self.y.advance()
                if inner is None:
                    break
                self.note_comparison()
                if self.predicate(outer, inner):
                    yield outer
                    break


class NestedLoopSelfSemijoin(StreamProcessor):
    """Nested-loop form of semijoin(X, X): each tuple is matched against
    every *other* tuple of the same stream (a tuple never pairs with
    itself, matching the self-semijoin semantics of Section 4.2.3)."""

    operator = "nested-loop-self-semijoin"

    def __init__(self, x: TupleStream, predicate: Predicate) -> None:
        super().__init__(x)
        self.predicate = predicate

    def _execute(self) -> Iterator[TemporalTuple]:
        tuples = list(self.x.drain())
        for i, outer in enumerate(tuples):
            for j, inner in enumerate(tuples):
                if i == j:
                    continue
                self.note_comparison()
                if self.predicate(outer, inner):
                    yield outer
                    break


# ----------------------------------------------------------------------
# predicate library for the temporal operators of Section 4.2
# ----------------------------------------------------------------------
def contain_predicate(x: TemporalTuple, y: TemporalTuple) -> bool:
    """Contain-join(X,Y): the lifespan of X contains that of Y —
    ``X.TS < Y.TS`` and ``Y.TE < X.TE``."""
    return contains_lifespan(x, y)


def contained_predicate(x: TemporalTuple, y: TemporalTuple) -> bool:
    """Contained-semijoin(X,Y) condition: X's lifespan lies strictly
    inside Y's."""
    return contain_predicate(y, x)

def overlap_predicate(x: TemporalTuple, y: TemporalTuple) -> bool:
    """The TQuel general overlap of the Superstar query: the lifespans
    share at least one timepoint."""
    return lifespans_intersect(x, y)


def before_predicate(x: TemporalTuple, y: TemporalTuple) -> bool:
    """Before-join(X,Y): X's lifespan ends before Y's begins, with a
    gap (Allen's *before*: ``X.TE < Y.TS``)."""
    return ends_before_start(x, y)


def same_surrogate(x: TemporalTuple, y: TemporalTuple) -> bool:
    return x.surrogate == y.surrogate


def conjoin(*predicates: Predicate) -> Predicate:
    """AND-combine predicates (e.g. equi-join on surrogate plus a
    temporal condition)."""

    def combined(x: TemporalTuple, y: TemporalTuple) -> bool:
        return all(p(x, y) for p in predicates)

    return combined
