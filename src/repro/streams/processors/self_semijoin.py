"""Self semijoins — Contained-semijoin(X, X) and Contain-semijoin(X, X)
(Section 4.2.3, Figure 7, Table 3).

When both operands are the *same* stream, applying the binary semijoin
algorithms would scan it twice.  The paper's single-scan algorithms
avoid this:

* :class:`SelfContainedSemijoin` — with primary sort ValidFrom
  ascending and secondary ValidTo ascending, selecting the tuples whose
  lifespan is strictly contained in some *other* tuple's lifespan needs
  exactly **one state tuple** plus the input buffer (Table 3, (a)).
  This is the operator that answers the semantically optimised
  Superstar query in one pass.

* :class:`SelfContainSemijoinDesc` — the order-dual: with primary
  ValidFrom *descending* and secondary ValidTo descending, selecting
  the tuples that strictly contain some other tuple also needs one
  state tuple (Table 3's second row).

* :class:`SelfContainSemijoin` — Contain-semijoin(X, X) on ValidFrom
  ascending keeps a bounded candidate set: tuples still "open" at the
  sweep position that have not yet been proven containers
  (Table 3, (b): a subset of the overlapping successors).
"""

from __future__ import annotations

from typing import Iterator

from ...errors import ProcessorStateError
from ...model import sortorder as so
from ...model.interval import (
    contains_lifespan,
    ends_by_start,
    ends_no_later,
    ends_strictly_before,
)
from ...model.tuples import TemporalTuple
from ..stream import TupleStream
from .base import StreamProcessor


class SelfContainedSemijoin(StreamProcessor):
    """Contained-semijoin(X, X) in one scan with one state tuple.

    Invariant: the state tuple ``x_s`` has the maximum ValidTo among
    all tuples read so far (on ties, the latest ValidFrom).  A newly
    read ``x_b`` is strictly contained in *some* earlier tuple iff it is
    strictly contained in ``x_s``:

    * ``x_s.TS == x_b.TS`` — no earlier tuple can strictly contain
      ``x_b``'s start; ``x_b`` (whose ValidTo is >= ``x_s``'s by the
      secondary sort) becomes the state;
    * ``x_s.TE <= x_b.TE`` — ``x_b`` ends last so far and becomes the
      state;
    * otherwise ``x_s.TS < x_b.TS`` and ``x_b.TE < x_s.TE`` — ``x_b``
      is strictly inside ``x_s`` and is emitted; ``x_s`` stays.
    """

    operator = "contained-semijoin[X,X][TS^,TE^]"

    def __init__(self, x: TupleStream) -> None:
        super().__init__(x)
        self._require_order(x, (so.TS_TE_ASC,), "X")
        self.state = self.new_workspace("state")

    def _execute(self) -> Iterator[TemporalTuple]:
        first = self.x.advance()
        if first is None:
            return
        self.state.insert(first)
        while True:
            x_buf = self.x.advance()
            if x_buf is None:
                return
            x_s = self.state.peek()
            if x_s is None:
                raise ProcessorStateError(
                    f"{self.operator}: state tuple vanished mid-scan"
                )
            self.note_comparison()
            if x_s.valid_from == x_buf.valid_from:
                self.state.replace(x_buf)
            elif ends_no_later(x_s, x_buf):
                self.state.replace(x_buf)
            else:
                yield x_buf


class SelfContainSemijoinDesc(StreamProcessor):
    """Contain-semijoin(X, X) in one scan with one state tuple, for
    input sorted ValidFrom *descending* with secondary ValidTo
    descending (the (a) entry of Table 3's second row).

    Order-dual invariant: the state tuple has the minimum ValidTo so
    far (on ties, the earliest-read, i.e. largest, ValidFrom).  A newly
    read tuple strictly contains some earlier tuple iff it strictly
    contains the state tuple.
    """

    operator = "contain-semijoin[X,X][TSv,TEv]"

    def __init__(self, x: TupleStream) -> None:
        super().__init__(x)
        self._require_order(x, (so.TS_TE_DESC,), "X")
        self.state = self.new_workspace("state")

    def _execute(self) -> Iterator[TemporalTuple]:
        first = self.x.advance()
        if first is None:
            return
        self.state.insert(first)
        while True:
            x_buf = self.x.advance()
            if x_buf is None:
                return
            x_s = self.state.peek()
            if x_s is None:
                raise ProcessorStateError(
                    f"{self.operator}: state tuple vanished mid-scan"
                )
            self.note_comparison()
            if contains_lifespan(x_buf, x_s):
                yield x_buf
            if ends_strictly_before(x_buf, x_s):
                self.state.replace(x_buf)
            elif x_buf.valid_from == x_s.valid_from:
                # Secondary descending sort gives x_buf.TE <= x_s.TE;
                # with equal endpoints either tuple serves equally.
                self.state.replace(x_buf)


class SelfContainSemijoin(StreamProcessor):
    """Contain-semijoin(X, X) on ValidFrom ascending — single scan with
    a bounded candidate workspace (Table 3, (b)).

    Containers always arrive before the tuples they contain (their
    ValidFrom is strictly smaller), so each tuple read is probed against
    the candidate set; every candidate that strictly contains it is
    emitted and retired.  Candidates whose ValidTo is at or before the
    new tuple's ValidFrom can no longer contain anything and are
    garbage-collected, keeping the state within the stream's maximum
    overlap depth.
    """

    operator = "contain-semijoin[X,X][TS^]"

    def __init__(self, x: TupleStream) -> None:
        super().__init__(x)
        self._require_order(x, (so.TS_ASC,), "X")
        self.state = self.new_workspace("candidates")

    def _execute(self) -> Iterator[TemporalTuple]:
        while True:
            x_buf = self.x.advance()
            if x_buf is None:
                return
            self.state.evict_where(
                lambda t: ends_by_start(t, x_buf)
            )
            matched = []
            for candidate in self.state:
                self.note_comparison()
                if contains_lifespan(candidate, x_buf):
                    matched.append(candidate)
            for candidate in matched:
                self.state.remove(candidate)
                yield candidate
            self.state.insert(x_buf)
