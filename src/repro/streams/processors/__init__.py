"""Stream processors for the temporal operators of Section 4."""

from .aggregate import (
    AggregateMetrics,
    GroupedAggregate,
    finalize_average,
    grouped_average,
    grouped_count,
    grouped_sum,
)
from .base import StreamProcessor, te_key, ts_key
from .baseline import (
    NestedLoopJoin,
    NestedLoopSelfSemijoin,
    NestedLoopSemijoin,
    before_predicate,
    conjoin,
    contain_predicate,
    contained_predicate,
    overlap_predicate,
    same_surrogate,
)
from .before import BeforeJoinSortedInner, BeforeJoinSweep, BeforeSemijoin
from .contain_join import ContainJoinTsTe, ContainJoinTsTs
from .equality_merge import (
    EndpointMergeJoin,
    EqualJoin,
    FinishesJoin,
    MeetsJoin,
    StartsJoin,
)
from .contain_semijoin import (
    ContainedSemijoinTeTs,
    ContainedSemijoinTsTs,
    ContainSemijoinTsTe,
    ContainSemijoinTsTs,
)
from .merge_equijoin import SurrogateMergeJoin
from .mirror import MirroredProcessor, mirror_stream, mirror_tuple
from .overlap import OverlapJoin, OverlapSemijoin
from .self_semijoin import (
    SelfContainedSemijoin,
    SelfContainSemijoin,
    SelfContainSemijoinDesc,
)
from .sweep import SymmetricSweepJoin
from .unbounded import UnboundedStateJoin

__all__ = [
    "AggregateMetrics",
    "BeforeJoinSortedInner",
    "BeforeJoinSweep",
    "BeforeSemijoin",
    "ContainJoinTsTe",
    "ContainJoinTsTs",
    "ContainSemijoinTsTe",
    "ContainSemijoinTsTs",
    "ContainedSemijoinTeTs",
    "EndpointMergeJoin",
    "EqualJoin",
    "FinishesJoin",
    "MeetsJoin",
    "StartsJoin",
    "ContainedSemijoinTsTs",
    "GroupedAggregate",
    "MirroredProcessor",
    "NestedLoopJoin",
    "NestedLoopSelfSemijoin",
    "NestedLoopSemijoin",
    "OverlapJoin",
    "OverlapSemijoin",
    "SelfContainSemijoin",
    "SelfContainSemijoinDesc",
    "SelfContainedSemijoin",
    "StreamProcessor",
    "SurrogateMergeJoin",
    "SymmetricSweepJoin",
    "UnboundedStateJoin",
    "before_predicate",
    "conjoin",
    "contain_predicate",
    "contained_predicate",
    "finalize_average",
    "grouped_average",
    "grouped_count",
    "grouped_sum",
    "mirror_stream",
    "mirror_tuple",
    "overlap_predicate",
    "same_surrogate",
    "te_key",
    "ts_key",
]
