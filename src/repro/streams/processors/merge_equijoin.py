"""Merge equi-join on the surrogate attribute.

Footnote 8 of the paper: for temporal operators whose constraints
include equalities, "an obvious stream processing method appears to be
sorting both relations on attributes that are involved in the
equalities followed by a conventional merge-join (and perhaps combined
with filtering using inequality constraints)".

:class:`SurrogateMergeJoin` is that operator — the first (equi-join)
stage of the Superstar plan, joining ``f1.Name = f2.Name`` and
optionally filtering pairs with a temporal residual predicate.  Its
workspace is the current same-key group of each input, the classic
merge-join state.
"""

from __future__ import annotations

from typing import Callable, Iterator, Optional

from ...errors import ProcessorStateError
from ...model import sortorder as so
from ...model.tuples import TemporalTuple
from ..stream import TupleStream
from .base import StreamProcessor

Residual = Callable[[TemporalTuple, TemporalTuple], bool]


class SurrogateMergeJoin(StreamProcessor):
    """Merge join on equal surrogates over surrogate-sorted streams."""

    operator = "surrogate-merge-join"

    def __init__(
        self,
        x: TupleStream,
        y: TupleStream,
        residual: Optional[Residual] = None,
    ) -> None:
        super().__init__(x, y)
        surrogate_order = so.SortOrder.of(
            so.SortKey(so.SortAttribute.SURROGATE)
        )
        self._require_order(x, (surrogate_order,), "X")
        self._require_order(y, (surrogate_order,), "Y")
        self.residual = residual
        self.x_group = self.new_workspace("x-group")
        self.y_group = self.new_workspace("y-group")

    def _execute(self) -> Iterator[tuple[TemporalTuple, TemporalTuple]]:
        if self.y is None:
            raise ProcessorStateError(f"{self.operator} needs a Y stream")
        self.x.advance()
        self.y.advance()
        while self.x.buffer is not None and self.y.buffer is not None:
            x_key = _surrogate_key(self.x.buffer)
            y_key = _surrogate_key(self.y.buffer)
            self.note_comparison()
            if x_key < y_key:
                self.x.advance()
            elif y_key < x_key:
                self.y.advance()
            else:
                yield from self._join_group(x_key)

    def _join_group(
        self, key
    ) -> Iterator[tuple[TemporalTuple, TemporalTuple]]:
        """Buffer both same-key groups and emit their cross product
        (filtered by the residual predicate)."""
        if self.y is None:
            raise ProcessorStateError(f"{self.operator} needs a Y stream")
        while (
            self.x.buffer is not None
            and _surrogate_key(self.x.buffer) == key
        ):
            self.x_group.insert(self.x.buffer)
            self.x.advance()
        while (
            self.y.buffer is not None
            and _surrogate_key(self.y.buffer) == key
        ):
            self.y_group.insert(self.y.buffer)
            self.y.advance()
        for x_tuple in self.x_group:
            for y_tuple in self.y_group:
                self.note_comparison()
                if self.residual is None or self.residual(x_tuple, y_tuple):
                    yield (x_tuple, y_tuple)
        self.x_group.clear()
        self.y_group.clear()


def _surrogate_key(tup: TemporalTuple):
    """The raw surrogate — the same comparison the surrogate sort order
    uses, so the merge sees keys in stream order."""
    return tup.surrogate
