"""Contain-semijoin and Contained-semijoin stream processors
(Section 4.2.2, Figure 6, Table 1).

``Contain-semijoin(X, Y)`` selects the X tuples whose lifespan strictly
contains the lifespan of *some* Y tuple.  ``Contained-semijoin(X, Y)``
selects the X tuples whose lifespan lies strictly inside some Y
lifespan.  Because a semijoin can emit a tuple as soon as its first
match is found, the paper devises algorithms that are cheaper than the
corresponding joins:

* With X on ValidFrom ascending and Y on ValidTo ascending, the
  Figure-6 sweep answers Contain-semijoin(X, Y) — and, run with the
  roles swapped, Contained-semijoin(X, Y) — using *only the two input
  buffers* (state class (d) of Table 1).

* With both inputs on ValidFrom ascending, bounded state suffices
  (state class (c)): the workspace holds only tuples whose lifespans
  span the opposite buffer's ValidFrom, shrinking further because
  matched tuples leave immediately.
"""

from __future__ import annotations

from typing import Iterator

from ...errors import ProcessorStateError
from ...model import sortorder as so
from ...model.interval import (
    ends_by_start,
    ends_strictly_before,
    starts_no_later,
    starts_strictly_before,
)
from ...model.tuples import TemporalTuple
from ..stream import TupleStream
from .base import StreamProcessor
from .baseline import contain_predicate


class ContainSemijoinTsTe(StreamProcessor):
    """Figure 6: Contain-semijoin(X, Y) with X on ValidFrom ascending
    and Y on ValidTo ascending — one buffer per stream, single pass of
    each.

    For the buffered pair ``(x_b, y_b)``:

    * ``y_b.TS <= x_b.TS`` — ``y_b`` starts no later than ``x_b`` and
      (since X is ValidFrom-sorted) no later than any future X tuple;
      it can never be strictly inside one, so Y advances;
    * else if ``y_b.TE < x_b.TE`` — the semijoin condition holds:
      ``x_b`` is emitted, X advances, and ``y_b`` stays buffered (it may
      also witness later X tuples);
    * else ``y_b.TE >= x_b.TE`` — no current or future Y tuple ends
      strictly inside ``x_b`` (Y is ValidTo-sorted), so ``x_b`` is
      dropped and X advances.
    """

    operator = "contain-semijoin[TS^,TE^]"

    def __init__(self, x: TupleStream, y: TupleStream) -> None:
        super().__init__(x, y)
        self._require_order(x, (so.TS_ASC,), "X")
        self._require_order(y, (so.TE_ASC,), "Y")

    def _execute(self) -> Iterator[TemporalTuple]:
        if self.y is None:
            raise ProcessorStateError(f"{self.operator} needs a Y stream")
        self.x.advance()
        self.y.advance()
        while self.x.buffer is not None:
            x_buf = self.x.buffer
            y_buf = self.y.buffer
            if y_buf is None:
                # Every skipped Y tuple was provably useless for all
                # future X tuples; with Y exhausted nothing remains.
                return
            self.note_comparison()
            if starts_no_later(y_buf, x_buf):
                self.y.advance()
            elif ends_strictly_before(y_buf, x_buf):
                yield x_buf
                self.x.advance()
            else:
                self.x.advance()


class ContainedSemijoinTeTs(StreamProcessor):
    """Figure 6 with the roles swapped: Contained-semijoin(X, Y) with X
    on ValidTo ascending and Y on ValidFrom ascending — one buffer per
    stream (the (d) entry in Table 1's ValidTo^/ValidFrom^ row).

    Each X tuple is emitted when strictly inside the buffered Y tuple;
    an X tuple starting no later than the buffered (and every future) Y
    tuple can never be contained and is dropped.
    """

    operator = "contained-semijoin[TE^,TS^]"

    def __init__(self, x: TupleStream, y: TupleStream) -> None:
        super().__init__(x, y)
        self._require_order(x, (so.TE_ASC,), "X")
        self._require_order(y, (so.TS_ASC,), "Y")

    def _execute(self) -> Iterator[TemporalTuple]:
        if self.y is None:
            raise ProcessorStateError(f"{self.operator} needs a Y stream")
        self.x.advance()
        self.y.advance()
        while self.y.buffer is not None:
            y_buf = self.y.buffer
            x_buf = self.x.buffer
            if x_buf is None:
                return
            self.note_comparison()
            if starts_no_later(x_buf, y_buf):
                # No current or future Y starts strictly before x_b.
                self.x.advance()
            elif ends_strictly_before(x_buf, y_buf):
                yield x_buf
                self.x.advance()
            else:
                # x_b.TE >= y_b.TE: not inside y_b, but a later Y (with
                # a larger lifespan end) may still contain it.
                self.y.advance()


class ContainSemijoinTsTs(StreamProcessor):
    """Contain-semijoin(X, Y) with both inputs on ValidFrom ascending —
    bounded state (class (c) of Table 1).

    The sweep consumes tuples in global ValidFrom order.  X tuples wait
    in the workspace until a Y tuple strictly inside them arrives (then
    they are emitted and leave) or until ``X.TE <= y_b.TS`` proves no
    future Y can be inside them.  Y tuples need never be stored: a Y
    tuple consumed at sweep position ``y.TS <= x_b.TS`` cannot lie
    strictly inside any future X tuple.
    """

    operator = "contain-semijoin[TS^,TS^]"

    def __init__(self, x: TupleStream, y: TupleStream) -> None:
        super().__init__(x, y)
        self._require_order(x, (so.TS_ASC,), "X")
        self._require_order(y, (so.TS_ASC,), "Y")
        self.x_state = self.new_workspace("x-state")

    def _execute(self) -> Iterator[TemporalTuple]:
        if self.y is None:
            raise ProcessorStateError(f"{self.operator} needs a Y stream")
        self.x.advance()
        self.y.advance()
        while True:
            x_buf = self.x.buffer
            y_buf = self.y.buffer
            if y_buf is None:
                # No further Y: pending and future X tuples all fail.
                return
            if x_buf is None and not self.x_state:
                # X is exhausted and every candidate is decided.
                return
            if x_buf is not None and starts_no_later(x_buf, y_buf):
                self.x_state.insert(x_buf)
                self.x.advance()
            else:
                matched = []
                for candidate in self.x_state:
                    self.note_comparison()
                    if contain_predicate(candidate, y_buf):
                        matched.append(candidate)
                for candidate in matched:
                    self.x_state.remove(candidate)
                    yield candidate
                self.y.advance()
            y_buf = self.y.buffer
            if y_buf is not None:
                self.x_state.evict_where(
                    lambda t: ends_by_start(t, y_buf)
                )


class ContainedSemijoinTsTs(StreamProcessor):
    """Contained-semijoin(X, Y) with both inputs on ValidFrom ascending
    — bounded state (class (c)).

    Y tuples wait in the workspace while their lifespan spans the X
    buffer's ValidFrom (``Y.TE > x_b.TS``); each X tuple is decided the
    moment it is consumed, because the sweep guarantees every Y tuple
    starting strictly before it has already been seen.
    """

    operator = "contained-semijoin[TS^,TS^]"

    def __init__(self, x: TupleStream, y: TupleStream) -> None:
        super().__init__(x, y)
        self._require_order(x, (so.TS_ASC,), "X")
        self._require_order(y, (so.TS_ASC,), "Y")
        self.y_state = self.new_workspace("y-state")

    def _execute(self) -> Iterator[TemporalTuple]:
        if self.y is None:
            raise ProcessorStateError(f"{self.operator} needs a Y stream")
        self.x.advance()
        self.y.advance()
        while True:
            x_buf = self.x.buffer
            y_buf = self.y.buffer
            if x_buf is None:
                # Remaining Y tuples cannot contain anything still
                # undecided.
                return
            if y_buf is not None and starts_strictly_before(y_buf, x_buf):
                self.y_state.insert(y_buf)
                self.y.advance()
                continue
            # Decide x_b now: every Y starting strictly before it has
            # been consumed into the state (or safely evicted).
            for candidate in self.y_state:
                self.note_comparison()
                if contain_predicate(candidate, x_buf):
                    yield x_buf
                    break
            self.x.advance()
            x_buf = self.x.buffer
            if x_buf is not None:
                self.y_state.evict_where(
                    lambda t: ends_by_start(t, x_buf)
                )
