"""A deliberately GC-free sweep join, for measuring what happens on the
'-' rows of Tables 1 and 2.

When a sort-order combination admits no garbage-collection criterion,
a single-pass stream join is still *possible* — by retaining every
consumed tuple — but the local workspace degenerates to the size of the
inputs.  :class:`UnboundedStateJoin` implements exactly that, so
benchmarks can contrast its linear state growth with the bounded state
of the appropriate orderings.
"""

from __future__ import annotations

from typing import Callable

from ...model.tuples import TemporalTuple
from ..stream import TupleStream
from .base import ts_key
from .sweep import SymmetricSweepJoin


class UnboundedStateJoin(SymmetricSweepJoin):
    """Single-pass symmetric join that never garbage-collects.

    Accepts any sort orders (it performs no admission check) and any
    join predicate; the price is a workspace that retains every tuple
    until the opposite stream is exhausted.
    """

    operator = "unbounded-state-join"

    def __init__(
        self,
        x: TupleStream,
        y: TupleStream,
        predicate: Callable[[TemporalTuple, TemporalTuple], bool],
    ) -> None:
        super().__init__(x, y)
        self.predicate = predicate

    def match(self, x_tuple: TemporalTuple, y_tuple: TemporalTuple) -> bool:
        return self.predicate(x_tuple, y_tuple)

    x_sweep_key = staticmethod(ts_key)
    y_sweep_key = staticmethod(ts_key)

    def x_disposable(self, state_tuple, y_buffer) -> bool:
        return False

    def y_disposable(self, state_tuple, x_buffer) -> bool:
        return False
