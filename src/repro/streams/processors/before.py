"""Before-join and Before-semijoin (Section 4.2.4).

``Before-join(X, Y)`` pairs ``x`` with ``y`` whenever ``X.TE < Y.TS``
(Allen's *before*: a gap separates the lifespans).  The paper's
findings, which these implementations make measurable:

* **No sort order bounds the join's state.**  Once an X tuple has ended
  before the current sweep position it matches *every* later Y tuple,
  so a single-pass stream implementation must retain it until Y is
  exhausted (:class:`BeforeJoinSweep` demonstrates the Theta(|X|)
  state growth).
* **Sorting still helps nested loops**: with the inner stream sorted on
  ValidFrom descending, the inner scan can stop at the first
  non-matching tuple instead of reading the inner relation in its
  entirety (:class:`BeforeJoinSortedInner`).
* **The semijoin is trivial**: ``x`` has a later Y iff
  ``x.TE < max(Y.TS)``, so one scan of Y (computing the maximum
  ValidFrom) followed by one scan of X answers Before-semijoin with two
  buffers and no sort requirement at all
  (:class:`BeforeSemijoin`).
"""

from __future__ import annotations

from typing import Iterator, Optional

from ...errors import ProcessorStateError
from ...model import sortorder as so
from ...model.interval import ends_before, starts_after, starts_no_later
from ...model.tuples import TemporalTuple
from ..stream import TupleStream
from .base import StreamProcessor, ts_key
from .baseline import before_predicate
from .sweep import SymmetricSweepJoin


class BeforeJoinSweep(SymmetricSweepJoin):
    """Single-pass Before-join over two ValidFrom-ascending streams.

    Correct, but deliberately illustrative of the paper's negative
    result: an X state tuple is disposable only when Y is exhausted, so
    the workspace high-water mark grows linearly with |X|.  Y tuples
    never need to be stored (an X tuple consumed later can only start
    later, never end before an already-seen Y starts... unless streams
    are consumed unevenly, which the min-key policy avoids; Y state
    tuples are therefore retained only while the X buffer could still
    precede them).
    """

    operator = "before-join[TS^,TS^]"

    def __init__(self, x: TupleStream, y: TupleStream) -> None:
        super().__init__(x, y)
        self._require_order(x, (so.TS_ASC,), "X")
        self._require_order(y, (so.TS_ASC,), "Y")

    def match(self, x_tuple: TemporalTuple, y_tuple: TemporalTuple) -> bool:
        return before_predicate(x_tuple, y_tuple)

    x_sweep_key = staticmethod(ts_key)
    y_sweep_key = staticmethod(ts_key)

    def x_disposable(self, state_tuple, y_buffer) -> bool:
        # An ended X tuple matches every later-starting Y tuple: no
        # criterion can ever retire it while Y still flows.
        return False

    def y_disposable(self, state_tuple, x_buffer) -> bool:
        # A Y state tuple is useful only if a future X can end before
        # its start; future X start at or after x_b.TS and span at
        # least one timepoint.
        return starts_no_later(state_tuple, x_buffer)


class BeforeJoinSortedInner(StreamProcessor):
    """Nested-loop Before-join with early termination on a sorted inner
    stream (the paper: "with proper sort orders, nested-loop join can
    avoid scanning the inner relation in its entirety").

    The inner (Y) stream must be sorted on ValidFrom *descending*: for
    each outer tuple the scan emits matches until the first Y tuple
    with ``Y.TS <= x.TE`` and then stops — every subsequent Y starts no
    later and cannot match either.
    """

    operator = "before-join[nested,TSv-inner]"

    def __init__(self, x: TupleStream, y: TupleStream) -> None:
        super().__init__(x, y)
        self._require_order(y, (so.TS_DESC,), "Y")

    def _execute(self) -> Iterator[tuple[TemporalTuple, TemporalTuple]]:
        if self.y is None:
            raise ProcessorStateError(f"{self.operator} needs a Y stream")
        while True:
            outer = self.x.advance()
            if outer is None:
                return
            self.y.restart()
            while True:
                inner = self.y.advance()
                if inner is None:
                    break
                self.note_comparison()
                if before_predicate(outer, inner):
                    yield (outer, inner)
                else:
                    break  # early termination: no later Y can match


class BeforeSemijoin(StreamProcessor):
    """Before-semijoin(X, Y): emit the X tuples that end strictly
    before some Y tuple starts.

    One scan of Y establishes ``max(Y.TS)``; one scan of X filters with
    ``X.TE < max(Y.TS)``.  The workspace is a single running maximum —
    independent of sort orders, exactly as Section 4.2.4 claims.
    """

    operator = "before-semijoin"

    def __init__(self, x: TupleStream, y: TupleStream) -> None:
        super().__init__(x, y)

    def _execute(self) -> Iterator[TemporalTuple]:
        if self.y is None:
            raise ProcessorStateError(f"{self.operator} needs a Y stream")
        latest_start: Optional[int] = None
        for y_tuple in self.y.drain():
            self.note_comparison()
            if latest_start is None or starts_after(y_tuple, latest_start):
                latest_start = y_tuple.valid_from
        if latest_start is None:
            return
        for x_tuple in self.x.drain():
            self.note_comparison()
            if ends_before(x_tuple, latest_start):
                yield x_tuple
