"""Overlap-join and Overlap-semijoin (Section 4.2.4, Table 2).

The operator uses the TQuel-style general ``overlap`` of the Superstar
query: lifespans sharing at least one timepoint,
``X.TS < Y.TE and Y.TS < X.TE``.

Table 2's finding: the only stream-appropriate orderings are both
inputs on ValidFrom ascending (or, by mirror symmetry, both on ValidTo
descending).  With that ordering:

* :class:`OverlapJoin` keeps, as state, exactly the tuples whose
  lifespans span the opposite buffer's ValidFrom — the set of "open"
  intervals of a plane sweep (state class (a));
* :class:`OverlapSemijoin` needs no state at all beyond the two input
  buffers (state class (b)): because only existence is needed, the
  single buffered Y tuple with the largest unprocessed span decides
  each X tuple.
"""

from __future__ import annotations

from typing import Iterator, Optional

from ...errors import ProcessorStateError
from ...model import sortorder as so
from ...model.interval import ends_by_start
from ...model.tuples import TemporalTuple
from ..policies import AdvancePolicy
from ..stream import TupleStream
from .base import StreamProcessor, ts_key
from .baseline import overlap_predicate
from .sweep import SymmetricSweepJoin


class OverlapJoin(SymmetricSweepJoin):
    """Overlap-join with both inputs sorted on ValidFrom ascending.

    Garbage collection: a state tuple from either side is disposable
    once its ValidTo is at or below the opposite buffer's ValidFrom —
    every future tuple of the opposite stream starts after the state
    tuple has ended, so their lifespans cannot share a point.
    """

    operator = "overlap-join[TS^,TS^]"

    def __init__(
        self,
        x: TupleStream,
        y: TupleStream,
        policy: Optional[AdvancePolicy] = None,
    ) -> None:
        super().__init__(x, y, policy=policy)
        self._require_order(x, (so.TS_ASC,), "X")
        self._require_order(y, (so.TS_ASC,), "Y")

    def match(self, x_tuple: TemporalTuple, y_tuple: TemporalTuple) -> bool:
        return overlap_predicate(x_tuple, y_tuple)

    x_sweep_key = staticmethod(ts_key)
    y_sweep_key = staticmethod(ts_key)

    def x_disposable(self, state_tuple, y_buffer) -> bool:
        return ends_by_start(state_tuple, y_buffer)

    def y_disposable(self, state_tuple, x_buffer) -> bool:
        return ends_by_start(state_tuple, x_buffer)


class OverlapSemijoin(StreamProcessor):
    """Overlap-semijoin(X, Y) with both inputs on ValidFrom ascending:
    emit each X tuple whose lifespan intersects some Y lifespan.

    The algorithm holds only the two input buffers (Table 2, state
    class (b)).  For the buffered pair:

    * if they overlap, ``x_b`` is emitted and X advances (``y_b`` is
      retained — it may also overlap later X tuples);
    * if ``y_b.TE <= x_b.TS``, the Y tuple ends before the current X
      begins; since future X tuples start no earlier, ``y_b`` is
      useless forever and Y advances;
    * otherwise ``y_b.TS >= x_b.TE``: no Y tuple overlaps ``x_b``
      (future Y tuples start even later), so ``x_b`` is dropped and X
      advances.
    """

    operator = "overlap-semijoin[TS^,TS^]"

    def __init__(self, x: TupleStream, y: TupleStream) -> None:
        super().__init__(x, y)
        self._require_order(x, (so.TS_ASC,), "X")
        self._require_order(y, (so.TS_ASC,), "Y")

    def _execute(self) -> Iterator[TemporalTuple]:
        if self.y is None:
            raise ProcessorStateError(f"{self.operator} needs a Y stream")
        self.x.advance()
        self.y.advance()
        while True:
            x_buf = self.x.buffer
            if x_buf is None:
                return
            y_buf = self.y.buffer
            if y_buf is None:
                # No Y tuples remain; no further X tuple can match.
                return
            self.note_comparison()
            if overlap_predicate(x_buf, y_buf):
                yield x_buf
                self.x.advance()
            elif ends_by_start(y_buf, x_buf):
                self.y.advance()
            else:
                self.x.advance()
