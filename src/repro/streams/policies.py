"""Read-phase advancement policies (Section 4.2.1, step 2).

Binary stream operators repeatedly choose which input stream to advance.
Any choice is *correct* — the garbage-collection criteria only discard
state tuples that can never match again — but the choice affects how
large the workspace grows.  The paper proposes advancing the stream
whose advancement is expected to make more state tuples disposable,
estimated from the mean inter-arrival gaps ``1/lambda_x`` and
``1/lambda_y``.

Two policies are provided:

* :class:`MinKeyPolicy` — advance the stream whose buffered tuple has
  the smaller sweep key (the classic plane-sweep discipline);
* :class:`LambdaPolicy` — the paper's heuristic: estimate the number of
  disposable state tuples for each option using ``1/lambda`` and pick
  the larger.

The workspace-vs-policy benchmark (ABL1 in DESIGN.md) compares them.
"""

from __future__ import annotations

import abc
from typing import Callable, Optional

from ..errors import ProcessorStateError
from ..model.tuples import TemporalTuple
from .workspace import Workspace

#: The stream identifiers a policy can return.
X, Y = "x", "y"


class AdvancePolicy(abc.ABC):
    """Strategy deciding which input stream a binary operator consumes
    from next, given both buffers and both state spaces."""

    @abc.abstractmethod
    def choose(
        self,
        x_buffer: TemporalTuple,
        y_buffer: TemporalTuple,
        x_state: Workspace,
        y_state: Workspace,
    ) -> str:
        """Return ``'x'`` or ``'y'``.  Called only when both buffers are
        occupied; exhaustion is handled by the operator."""


class MinKeyPolicy(AdvancePolicy):
    """Advance the stream whose buffer has the smaller sweep key.

    The sweep key of a tuple is its position in the stream's sort order
    (ValidFrom for TS-sorted streams, ValidTo for TE-sorted ones), so
    the operator consumes tuples in global sweep order.  Ties go to X.
    """

    def __init__(
        self,
        x_key: Callable[[TemporalTuple], int],
        y_key: Callable[[TemporalTuple], int],
    ) -> None:
        self._x_key = x_key
        self._y_key = y_key

    def choose(self, x_buffer, y_buffer, x_state, y_state) -> str:
        return X if self._x_key(x_buffer) <= self._y_key(y_buffer) else Y


class LambdaPolicy(AdvancePolicy):
    """The paper's ``1/lambda`` heuristic.

    If the next X tuple is read, the disposable Y state tuples are those
    whose retention condition fails once the X buffer reaches its
    expected next key (current key + ``1/lambda_x``); symmetrically for
    advancing Y.  The policy counts both estimates against the live
    state and advances the side with more expected disposals, breaking
    ties with the sweep order.

    Parameters
    ----------
    inter_arrival_x, inter_arrival_y:
        Mean key gaps ``1/lambda_x`` and ``1/lambda_y`` (estimated by
        :func:`repro.stats.estimators.mean_inter_arrival`).
    x_key, y_key:
        Sweep-key extractors, as for :class:`MinKeyPolicy`.
    y_disposable_if_x_advances:
        Predicate ``(y_state_tuple, expected_next_x_key) -> bool``.
    x_disposable_if_y_advances:
        Predicate ``(x_state_tuple, expected_next_y_key) -> bool``.
    """

    def __init__(
        self,
        inter_arrival_x: float,
        inter_arrival_y: float,
        x_key: Callable[[TemporalTuple], int],
        y_key: Callable[[TemporalTuple], int],
        y_disposable_if_x_advances: Callable[[TemporalTuple, float], bool],
        x_disposable_if_y_advances: Callable[[TemporalTuple, float], bool],
    ) -> None:
        self.inter_arrival_x = inter_arrival_x
        self.inter_arrival_y = inter_arrival_y
        self._x_key = x_key
        self._y_key = y_key
        self._y_disposable = y_disposable_if_x_advances
        self._x_disposable = x_disposable_if_y_advances
        self._fallback: Optional[MinKeyPolicy] = MinKeyPolicy(x_key, y_key)

    def choose(self, x_buffer, y_buffer, x_state, y_state) -> str:
        expected_next_x = self._x_key(x_buffer) + self.inter_arrival_x
        expected_next_y = self._y_key(y_buffer) + self.inter_arrival_y
        gain_if_x = sum(
            1 for item in y_state if self._y_disposable(item, expected_next_x)
        )
        gain_if_y = sum(
            1 for item in x_state if self._x_disposable(item, expected_next_y)
        )
        if gain_if_x > gain_if_y:
            return X
        if gain_if_y > gain_if_x:
            return Y
        if self._fallback is None:
            raise ProcessorStateError(
                "LambdaPolicy has no fallback policy to break the tie"
            )
        return self._fallback.choose(x_buffer, y_buffer, x_state, y_state)
