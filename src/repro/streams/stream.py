"""Instrumented tuple streams (Section 4.1).

A stream is "an ordered sequence of data objects".  A
:class:`TupleStream` wraps any tuple source with:

* a declared :class:`~repro.model.sortorder.SortOrder` (optionally
  verified on the fly — a violated declaration raises
  :class:`~repro.errors.StreamOrderError` instead of silently producing
  wrong join results),
* a single input buffer (the paper's ``x_b``), reflecting the
  stream-processing rule that a computation "has access only to one
  element at a time and only in the specified ordering",
* counters for tuples read and passes over the stream, so benchmarks
  can verify single-pass claims.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, Optional

from ..errors import ExecutionError, StreamOrderError, StreamStateError
from ..governance.budget import active_token
from ..model.interval import is_valid_lifespan
from ..model.relation import TemporalRelation
from ..model.sortorder import SortOrder
from ..model.tuples import TemporalTuple
from ..obs.metrics import active_registry
from ..obs.trace import get_tracer
from ..resilience.recovery import ExecutionReport, RecoveryPolicy
from ..storage.heap_file import HeapFile
from ..storage.iostats import IOStats


def _tuple_valid(tup: TemporalTuple) -> bool:
    """The intra-tuple integrity constraint ``TS < TE``.

    :class:`~repro.model.tuples.TemporalTuple` enforces it at
    construction, but heap files and ad-hoc sources may deliver
    duck-typed or damaged records; quarantine checks them here.
    """
    try:
        return is_valid_lifespan(tup)
    except (AttributeError, TypeError):
        return False


class TupleStream:
    """A one-buffer, forward-only cursor over sorted temporal tuples.

    ``recovery`` selects the stream's rung on the resilience ladder:
    under :attr:`~repro.resilience.recovery.RecoveryPolicy.QUARANTINE`,
    tuples that violate the declared order or the ``TS < TE`` validity
    constraint are skipped into a counted side-channel (the ``report``)
    instead of raising; under ``STRICT`` and ``DEGRADE`` the violation
    raises :class:`~repro.errors.StreamOrderError` (DEGRADE's re-sort
    is the *operator's* job — see :mod:`repro.resilience.executor`).
    """

    def __init__(
        self,
        source_factory: Callable[[], Iterator[TemporalTuple]],
        order: Optional[SortOrder] = None,
        name: str = "stream",
        verify_order: bool = True,
        recovery: RecoveryPolicy = RecoveryPolicy.STRICT,
        report: Optional[ExecutionReport] = None,
    ) -> None:
        self._source_factory = source_factory
        self.order = order
        self.name = name
        self.verify_order = verify_order and order is not None
        self.recovery = recovery
        self.report = report
        self.tuples_read = 0
        self.passes = 0
        #: ``tuples_read`` snapshot taken when each pass opened; the
        #: diffs are the per-pass read counts (:attr:`pass_reads`),
        #: recorded at zero per-tuple cost.
        self._pass_bases: list[int] = []
        #: Tuples skipped into the side-channel under QUARANTINE.
        self.quarantined = 0
        self._iterator: Optional[Iterator[TemporalTuple]] = None
        self._buffer: Optional[TemporalTuple] = None
        self._previous: Optional[TemporalTuple] = None
        self._exhausted = False
        self._started = False

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_relation(
        cls,
        relation: TemporalRelation,
        name: Optional[str] = None,
        verify_order: bool = True,
        recovery: RecoveryPolicy = RecoveryPolicy.STRICT,
        report: Optional[ExecutionReport] = None,
    ) -> "TupleStream":
        """A stream over a relation, inheriting its declared order."""
        return cls(
            lambda: iter(relation.tuples),
            order=relation.order,
            name=name or relation.schema.relation_name,
            verify_order=verify_order,
            recovery=recovery,
            report=report,
        )

    @classmethod
    def from_tuples(
        cls,
        tuples: Iterable[TemporalTuple],
        order: Optional[SortOrder] = None,
        name: str = "stream",
        verify_order: bool = True,
        recovery: RecoveryPolicy = RecoveryPolicy.STRICT,
        report: Optional[ExecutionReport] = None,
    ) -> "TupleStream":
        """A stream over an in-memory (restartable) tuple sequence."""
        materialised = tuple(tuples)
        return cls(
            lambda: iter(materialised),
            order=order,
            name=name,
            verify_order=verify_order,
            recovery=recovery,
            report=report,
        )

    @classmethod
    def from_heap_file(
        cls,
        heap_file: HeapFile,
        order: Optional[SortOrder] = None,
        name: Optional[str] = None,
        stats: Optional[IOStats] = None,
        verify_order: bool = True,
        recovery: RecoveryPolicy = RecoveryPolicy.STRICT,
        report: Optional[ExecutionReport] = None,
    ) -> "TupleStream":
        """A stream backed by a simulated disk file; every restart is a
        fresh scan charged to the file's I/O stats."""
        return cls(
            lambda: heap_file.scan(stats=stats),
            order=order,
            name=name or heap_file.name,
            verify_order=verify_order,
            recovery=recovery,
            report=report,
        )

    # ------------------------------------------------------------------
    # cursor protocol
    # ------------------------------------------------------------------
    @property
    def buffer(self) -> Optional[TemporalTuple]:
        """The tuple currently in the input buffer (the paper's
        ``x_b``), or ``None`` before the first :meth:`advance` or after
        exhaustion."""
        return self._buffer

    @property
    def exhausted(self) -> bool:
        """True once the buffer is empty and the source is drained."""
        return self._exhausted and self._buffer is None

    @property
    def pass_reads(self) -> list:
        """Tuples read by each pass separately (one entry per pass, in
        order).  ``restart()`` resets order verification but never the
        counters, so without this breakdown a DEGRADE re-sort run would
        report one aggregated total instead of per-pass counts."""
        bases = self._pass_bases
        return [
            (bases[i + 1] if i + 1 < len(bases) else self.tuples_read)
            - base
            for i, base in enumerate(bases)
        ]

    def advance(self) -> Optional[TemporalTuple]:
        """Load the next tuple into the buffer, returning it (or
        ``None`` at end of stream).

        Under QUARANTINE, order- or validity-violating tuples are
        skipped (and counted) here, so the caller only ever sees a
        clean, ordered stream.
        """
        if self._iterator is None:
            if self._exhausted:
                return None
            self._open()
        if self._iterator is None:
            raise StreamStateError(
                f"stream {self.name!r} failed to open an iterator"
            )
        previous = self._buffer
        quarantining = self.recovery is RecoveryPolicy.QUARANTINE
        while True:
            nxt = next(self._iterator, None)
            if nxt is None:
                self._previous = previous
                self._buffer = None
                self._exhausted = True
                self._iterator = None
                tracer = get_tracer()
                if tracer.enabled:
                    reads = self.pass_reads
                    tracer.event(
                        "stream.pass",
                        stream=self.name,
                        number=self.passes,
                        read=reads[-1] if reads else 0,
                    )
                return None
            self.tuples_read += 1
            if quarantining and not _tuple_valid(nxt):
                self._quarantine("validity", nxt)
                continue
            if (
                self.verify_order
                and previous is not None
                and self.order is not None
                and not self.order.check(previous, nxt)
            ):
                if quarantining:
                    self._quarantine("order", nxt)
                    continue
                error = StreamOrderError(
                    f"stream {self.name!r} declared order [{self.order}] "
                    f"but produced {previous} before {nxt}"
                )
                # Let the resilient executor target the offending side
                # (and avoid double-counting the violation).
                error.stream_name = self.name
                if self.report is not None:
                    self.report.note_order_violation()
                    error.reported = True
                raise error
            self._previous = previous
            self._buffer = nxt
            return nxt

    def _quarantine(self, reason: str, item: TemporalTuple) -> None:
        self.quarantined += 1
        if self.report is not None:
            self.report.note_quarantine(self.name, reason, item)

    def restart(self) -> None:
        """Rewind to the beginning for another pass.  The pass counter
        lets tests prove single-pass claims (``stream.passes == 1``)."""
        self._iterator = None
        self._buffer = None
        self._previous = None
        self._exhausted = False
        self._started = False

    def drain(self) -> Iterator[TemporalTuple]:
        """Consume the remainder of the stream tuple by tuple."""
        if self._buffer is None:
            self.advance()
        while self._buffer is not None:
            current = self._buffer
            self.advance()
            yield current

    def _open(self) -> None:
        if self._started and self._iterator is None and not self._exhausted:
            raise ExecutionError(
                f"stream {self.name!r} is in an inconsistent state"
            )
        self._iterator = self._source_factory()
        self._started = True
        # A fresh pass must re-check the ordering from its own first
        # tuple: comparing across pass boundaries would misreport a
        # legal rewind (last tuple of pass N vs first of pass N+1) as
        # an order violation.
        self._previous = None
        self._buffer = None
        self._pass_bases.append(self.tuples_read)
        self.passes += 1
        token = active_token()
        if token is not None:
            # Pass boundaries are governance checkpoints: multi-pass
            # plans (re-sorts, spills, rewinding nested loops) observe
            # deadline/cancellation between passes even when the pages
            # themselves are served from memory.
            token.check()
        registry = active_registry()
        if registry is not None:
            registry.counter(
                "repro_stream_passes_total",
                "Passes opened over tuple streams",
            ).inc(stream=self.name)

    def note_batch_pass(self, count: int) -> None:
        """Account one whole-stream batch read (the columnar drain,
        which bypasses the single-buffer cursor) exactly like a cursor
        pass: pass counter, per-pass base, read total, and the same
        trace/metric hooks."""
        self._pass_bases.append(self.tuples_read)
        self.passes += 1
        self.tuples_read += count
        token = active_token()
        if token is not None:
            token.check()
        registry = active_registry()
        if registry is not None:
            registry.counter(
                "repro_stream_passes_total",
                "Passes opened over tuple streams",
            ).inc(stream=self.name)
        tracer = get_tracer()
        if tracer.enabled:
            tracer.event(
                "stream.pass",
                stream=self.name,
                number=self.passes,
                read=count,
                batch=True,
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TupleStream({self.name!r}, order={self.order}, "
            f"read={self.tuples_read}, passes={self.passes})"
        )
