"""Execution metrics reported by every stream processor.

These are the quantities the paper's Tables 1-3 are about: workspace
high-water marks, buffers, tuples read, and passes over each input
stream.  Benchmarks read them off the processor after a run instead of
inferring costs from timing.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Optional

from .workspace import WorkspaceReport


@dataclass
class ProcessorMetrics:
    """Counters gathered during one stream-processor execution."""

    #: Tuples pulled from the X (left / outer) stream.
    tuples_read_x: int = 0
    #: Tuples pulled from the Y (right / inner) stream; 0 for unary ops.
    tuples_read_y: int = 0
    #: Passes over each stream (1 == the single-scan claim).
    passes_x: int = 0
    passes_y: int = 0
    #: Per-pass breakdown of the read totals (one entry per pass), so a
    #: DEGRADE re-sort run reports each pass separately instead of one
    #: aggregated total.
    pass_reads_x: list[int] = field(default_factory=list)
    pass_reads_y: list[int] = field(default_factory=list)
    #: Input buffers the algorithm uses (the paper counts these
    #: separately from state tuples: <Buffer-x, Buffer-y>).
    buffers: int = 2
    #: Number of output tuples / pairs emitted.
    output_count: int = 0
    #: Join-condition (or state-maintenance) comparisons performed — a
    #: CPU-side cost proxy for comparing against nested-loop baselines.
    comparisons: int = 0
    #: Liveness tests spent rediscovering dead state entries (the lazy
    #: eviction overhead of the batch backends); kept out of
    #: ``comparisons`` so the column stays comparable across backends.
    eviction_checks: int = 0
    #: Which physical backend executed the operator ("tuple",
    #: "columnar", or "fused") — audit records distinguish executions
    #: per shard by this.
    backend: str = "tuple"
    #: Name of the batch kernel that ran, if any (``None`` on the
    #: tuple-at-a-time backend).
    kernel: Optional[str] = None
    #: Joint workspace accounting across the operator's state spaces.
    workspace: WorkspaceReport = field(
        default_factory=lambda: WorkspaceReport(0, 0, 0, 0)
    )
    #: Per-state-space high-water marks, keyed by workspace name.
    state_high_water: dict[str, int] = field(default_factory=dict)
    #: Snapshot of the :class:`~repro.resilience.recovery.
    #: ExecutionReport` when the run went through the resilient
    #: executor (``None`` for plain runs).
    resilience: Optional[dict] = None

    @property
    def total_tuples_read(self) -> int:
        return self.tuples_read_x + self.tuples_read_y

    @property
    def workspace_high_water(self) -> int:
        """Peak number of state tuples held at once (buffers excluded)."""
        return self.workspace.high_water

    @property
    def total_footprint(self) -> int:
        """Peak state tuples plus input buffers — the paper's complete
        'local workspace'."""
        return self.workspace.high_water + self.buffers

    def to_dict(self) -> dict:
        """Plain-data snapshot used by the trace/metric exporters and
        benchmark JSON reports (everything JSON-serialisable)."""
        out = asdict(self)
        out["workspace"] = {
            "high_water": self.workspace.high_water,
            "total_inserted": self.workspace.total_inserted,
            "total_discarded": self.workspace.total_discarded,
            "residual": self.workspace.residual,
        }
        return out

    def summary(self) -> str:
        """One-line human-readable report (used by example scripts)."""
        return (
            f"read x={self.tuples_read_x} (passes={self.passes_x}) "
            f"y={self.tuples_read_y} (passes={self.passes_y}) | "
            f"state high-water={self.workspace.high_water} "
            f"buffers={self.buffers} | out={self.output_count} "
            f"comparisons={self.comparisons}"
        )
