"""Local workspace with garbage-collection accounting (Section 4.1).

The paper's central performance quantity is the size of the *local
workspace* — the state tuples a stream processor must retain.  A
:class:`Workspace` is a small tuple store that records every insertion
and eviction and tracks its high-water mark; a shared
:class:`WorkspaceMeter` additionally tracks the *joint* high-water mark
when an operator keeps several state spaces (e.g. X-state and Y-state
of the Contain-join), since the paper's state characterisations are
about the union.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Callable,
    Generic,
    Iterator,
    List,
    Optional,
    TypeVar,
)

from ..errors import WorkspaceOverflowError, WorkspaceStateError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for hints
    from ..governance.budget import CancellationToken

T = TypeVar("T")


@dataclass
class WorkspaceMeter:
    """Joint accounting shared by one operator's workspaces."""

    current: int = 0
    high_water: int = 0
    total_inserted: int = 0
    total_discarded: int = 0
    #: When enabled, the state size after every insertion/eviction —
    #: the Figure-5 view of the algorithm's workspace over the sweep.
    trace: Optional[List[int]] = None
    #: Optional hard budget on concurrent state tuples.  Exceeding it
    #: raises :class:`~repro.errors.WorkspaceOverflowError` — modelling
    #: the paper's finite "local workspace" and forcing the trade-off
    #: towards sorting or multiple passes.
    limit: Optional[int] = None
    #: Times the budget was breached (kept even when a recovery policy
    #: later absorbs the overflow by spilling).
    overflows: int = 0
    #: Optional sampling hook called with the state size after every
    #: insertion/eviction — how the observability layer records the
    #: workspace-size timeline (e.g. ``Histogram.observe``) without the
    #: meter importing it.  ``None`` keeps the hot path a single check.
    observer: Optional[Callable[[int], None]] = None
    #: Governance hook: when a query runs under a
    #: :class:`~repro.governance.CancellationToken`, the executor
    #: attaches it here and every insert reports the joint state size
    #: against the budget's ``workspace_tuple_cap``.  Unlike ``limit``
    #: (the paper's per-operator workspace, whose overflow the ladder
    #: may absorb by spilling), a governance breach raises the
    #: non-retryable :class:`~repro.errors.BudgetExceededError`.
    token: Optional["CancellationToken"] = None

    def enable_trace(self) -> None:
        """Start recording the state-size trajectory."""
        if self.trace is None:
            self.trace = [self.current]

    def on_insert(self, count: int = 1) -> None:
        self.current += count
        self.total_inserted += count
        if self.current > self.high_water:
            self.high_water = self.current
        if self.trace is not None:
            self.trace.append(self.current)
        if self.observer is not None:
            self.observer(self.current)
        if self.token is not None:
            self.token.charge_workspace(self.current)
        if self.limit is not None and self.current > self.limit:
            self.overflows += 1
            raise WorkspaceOverflowError(
                f"workspace exceeded its budget of {self.limit} state "
                f"tuples"
            )

    def on_discard(self, count: int = 1) -> None:
        self.current -= count
        self.total_discarded += count
        if self.trace is not None:
            self.trace.append(self.current)
        if self.observer is not None:
            self.observer(self.current)


class Workspace(Generic[T]):
    """One state space of a stream processor.

    Iteration yields the live state tuples; :meth:`evict_where` is the
    garbage-collection primitive of the paper's algorithms.
    """

    def __init__(
        self, name: str = "state", meter: Optional[WorkspaceMeter] = None
    ) -> None:
        self.name = name
        self.meter = meter if meter is not None else WorkspaceMeter()
        self.high_water = 0
        self.total_inserted = 0
        self.total_discarded = 0
        self._items: List[T] = []

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def insert(self, item: T) -> None:
        self._items.append(item)
        self.total_inserted += 1
        if len(self._items) > self.high_water:
            self.high_water = len(self._items)
        self.meter.on_insert()

    def remove(self, item: T) -> None:
        """Remove one specific state tuple (e.g. a semijoin match that
        has been output and is no longer needed).

        Removal is by *identity*, not equality: relations may hold
        duplicate rows, and equal-but-distinct state tuples must each be
        retired exactly once for the high-water accounting to stay
        truthful.  Asking to remove a tuple that is not in the workspace
        raises :class:`~repro.errors.WorkspaceStateError`.
        """
        for index, existing in enumerate(self._items):
            if existing is item:
                del self._items[index]
                self.total_discarded += 1
                self.meter.on_discard()
                return
        raise WorkspaceStateError(
            f"workspace {self.name!r} asked to remove {item!r}, which it "
            f"does not hold ({len(self._items)} state tuples present)"
        )

    def evict_where(self, condition: Callable[[T], bool]) -> int:
        """Garbage-collect every state tuple satisfying ``condition``,
        returning how many were discarded."""
        keep = [item for item in self._items if not condition(item)]
        discarded = len(self._items) - len(keep)
        if discarded:
            self._items = keep
            self.total_discarded += discarded
            self.meter.on_discard(discarded)
        return discarded

    def clear(self) -> int:
        """Discard everything (used when the opposite stream is
        exhausted and the state can no longer produce matches)."""
        return self.evict_where(lambda _item: True)

    def replace(self, item: T) -> None:
        """Swap the single state tuple — the operation of the
        one-state-tuple self-semijoin algorithm (Section 4.2.3)."""
        if self._items:
            self.evict_where(lambda _item: True)
        self.insert(item)

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    def __iter__(self) -> Iterator[T]:
        return iter(list(self._items))

    def __len__(self) -> int:
        return len(self._items)

    def __bool__(self) -> bool:
        return bool(self._items)

    def peek(self) -> Optional[T]:
        """The single state tuple, when at most one is kept."""
        return self._items[0] if self._items else None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Workspace({self.name!r}, size={len(self._items)}, "
            f"high_water={self.high_water})"
        )


@dataclass(frozen=True)
class WorkspaceReport:
    """Immutable summary of an operator's workspace behaviour, exposed
    through :class:`~repro.streams.metrics.ProcessorMetrics`."""

    high_water: int
    total_inserted: int
    total_discarded: int
    residual: int

    @classmethod
    def from_meter(cls, meter: WorkspaceMeter) -> "WorkspaceReport":
        return cls(
            high_water=meter.high_water,
            total_inserted=meter.total_inserted,
            total_discarded=meter.total_discarded,
            residual=meter.current,
        )
