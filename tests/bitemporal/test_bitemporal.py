"""Tests for the bitemporal (rollback) extension."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import TemporalModelError
from repro.bitemporal import UNTIL_CHANGED, BitemporalRelation, BitemporalTuple
from repro.model import (
    TS_ASC,
    TemporalSchema,
    TemporalTuple,
    faculty_constraints,
)

FACULTY = TemporalSchema("Faculty", "Name", "Rank")


@pytest.fixture
def store():
    """A faculty history with corrections:

    tx=1: Smith recorded Assistant [0, 6)
    tx=2: Smith recorded Associate [6, 12)
    tx=3: the Assistant period is corrected to [0, 5) (the original
          record was wrong), and Associate is re-dated accordingly.
    """
    relation = BitemporalRelation(FACULTY)
    relation.insert("Smith", "Assistant", 0, 6, tx_time=1)
    relation.insert("Smith", "Associate", 6, 12, tx_time=2)
    relation.logical_delete(
        3, lambda t: t.surrogate == "Smith"
    )
    relation.insert("Smith", "Assistant", 0, 5, tx_time=4)
    relation.insert("Smith", "Associate", 5, 12, tx_time=5)
    return relation


class TestBitemporalTuple:
    def test_defaults_to_current(self):
        tup = BitemporalTuple("a", 1, 0, 5, tx_start=10)
        assert tup.is_current
        assert tup.tx_stop == UNTIL_CHANGED

    def test_validation(self):
        with pytest.raises(Exception):
            BitemporalTuple("a", 1, 5, 5, tx_start=1)
        with pytest.raises(TemporalModelError):
            BitemporalTuple("a", 1, 0, 5, tx_start=9, tx_stop=9)

    def test_believed_at(self):
        tup = BitemporalTuple("a", 1, 0, 5, tx_start=10, tx_stop=20)
        assert tup.believed_at(10)
        assert tup.believed_at(19)
        assert not tup.believed_at(20)
        assert not tup.believed_at(9)

    def test_closed(self):
        tup = BitemporalTuple("a", 1, 0, 5, tx_start=10)
        done = tup.closed(15)
        assert done.tx_stop == 15
        assert not done.is_current
        with pytest.raises(TemporalModelError):
            done.closed(20)
        with pytest.raises(TemporalModelError):
            tup.closed(10)

    def test_projection(self):
        tup = BitemporalTuple("a", 1, 0, 5, tx_start=10)
        assert tup.to_valid_time() == TemporalTuple("a", 1, 0, 5)


class TestRollback:
    def test_as_of_before_anything(self, store):
        assert len(store.as_of(0)) == 0

    def test_as_of_sees_the_original_record(self, store):
        at_tx2 = store.as_of(2)
        assert TemporalTuple("Smith", "Assistant", 0, 6) in at_tx2
        assert TemporalTuple("Smith", "Associate", 6, 12) in at_tx2

    def test_as_of_mid_correction(self, store):
        # At tx=3 the delete has happened but the corrections not yet.
        assert len(store.as_of(3)) == 0

    def test_current_reflects_corrections(self, store):
        now = store.current()
        assert TemporalTuple("Smith", "Assistant", 0, 5) in now
        assert TemporalTuple("Smith", "Associate", 5, 12) in now
        assert len(now) == 2

    def test_belief_changes(self, store):
        assert store.belief_changes() == [1, 2, 3, 4, 5]

    def test_log_preserves_history(self, store):
        # 4 inserts; 2 of them closed.
        assert len(store) == 4
        closed = [t for t in store if not t.is_current]
        assert len(closed) == 2


class TestTransactionDiscipline:
    def test_clock_must_increase(self):
        relation = BitemporalRelation(FACULTY)
        relation.insert("a", "Assistant", 0, 5, tx_time=5)
        with pytest.raises(TemporalModelError):
            relation.insert("b", "Assistant", 0, 5, tx_time=5)
        with pytest.raises(TemporalModelError):
            relation.logical_delete(4, lambda t: True)

    def test_sentinel_collision_rejected(self):
        relation = BitemporalRelation(FACULTY)
        with pytest.raises(TemporalModelError):
            relation.insert("a", 1, 0, 5, tx_time=UNTIL_CHANGED)

    def test_update_closes_and_reopens(self):
        relation = BitemporalRelation(FACULTY)
        relation.insert("a", "Assistant", 0, 5, tx_time=1)
        corrected = relation.update(
            2, lambda t: t.surrogate == "a", "Associate"
        )
        assert corrected == 1
        assert [t.value for t in relation.current()] == ["Associate"]
        assert [t.value for t in relation.as_of(1)] == ["Assistant"]


class TestInteroperability:
    def test_stream_operators_run_on_rollback_states(self, store):
        """as_of() yields an ordinary TemporalRelation — sortable and
        usable by the stream engine."""
        from repro.streams import SelfContainSemijoin, TupleStream

        snapshot = store.as_of(2).sorted_by(TS_ASC)
        semi = SelfContainSemijoin(TupleStream.from_relation(snapshot))
        assert semi.run() == []  # no containment in this history

    def test_constraints_carry_over(self):
        relation = BitemporalRelation(
            FACULTY, constraints=faculty_constraints()
        )
        relation.insert("a", "Full", 0, 5, tx_time=1)
        relation.insert("a", "Assistant", 5, 9, tx_time=2)
        violations = relation.current().validate()
        assert violations  # demotion detected on the belief state

    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=3),
                st.integers(min_value=0, max_value=30),
                st.integers(min_value=1, max_value=10),
            ),
            min_size=1,
            max_size=15,
        )
    )
    def test_property_asof_monotone_log(self, rows):
        """With inserts only, as_of() is monotone: later transaction
        times see supersets."""
        relation = BitemporalRelation(FACULTY)
        for tx, (s, a, d) in enumerate(rows, start=1):
            relation.insert(f"s{s}", tx, a, a + d, tx_time=tx)
        previous: set = set()
        for tx in range(1, len(rows) + 1):
            seen = set(relation.as_of(tx).tuples)
            assert previous <= seen
            previous = seen
        assert len(relation.current()) == len(rows)
