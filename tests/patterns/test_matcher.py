"""Tests for single-scan temporal pattern matching."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.allen import AllenRelation as R
from repro.errors import StreamOrderError, TemporalModelError
from repro.model import SortOrder, TemporalRelation, TemporalSchema, TemporalTuple
from repro.patterns import (
    PatternMatch,
    PatternScan,
    PatternStep,
    SequencePattern,
    find_pattern,
)
from repro.workload import FacultyWorkload, figure1_relation

SCHEMA = TemporalSchema("R", "Id", "Val")


def rel(*rows):
    return TemporalRelation.from_rows(SCHEMA, rows)


class TestPatternConstruction:
    def test_needs_steps(self):
        with pytest.raises(TemporalModelError):
            SequencePattern.of()

    def test_first_step_must_be_anchorless(self):
        with pytest.raises(TemporalModelError):
            SequencePattern.of(PatternStep("A", R.MEETS))

    def test_career_builder(self):
        pattern = SequencePattern.career(("A", "B", "C"))
        assert len(pattern) == 3
        assert pattern.steps[0].relation is None
        assert pattern.steps[1].relation is R.MET_BY

    def test_value_predicates(self):
        step = PatternStep(lambda v: v > 10)
        assert step.accepts_value(11)
        assert not step.accepts_value(9)
        constant = PatternStep("A")
        assert constant.accepts_value("A")


class TestCareerMatching:
    def test_full_promotion_chain(self):
        matches = find_pattern(
            figure1_relation(),
            SequencePattern.career(("Assistant", "Associate", "Full")),
        )
        assert {m.surrogate for m in matches} == {"Smith", "Jones"}
        smith = next(m for m in matches if m.surrogate == "Smith")
        assert smith.span == (0, 30)
        assert [t.value for t in smith.tuples] == [
            "Assistant",
            "Associate",
            "Full",
        ]

    def test_partial_chain(self):
        matches = find_pattern(
            figure1_relation(),
            SequencePattern.career(("Assistant", "Associate")),
        )
        # Kim reached Associate too.
        assert {m.surrogate for m in matches} == {"Smith", "Jones", "Kim"}

    def test_gap_breaks_met_by_chain(self):
        relation = rel(
            ("a", "A", 0, 5),
            ("a", "B", 7, 9),  # gap: B is AFTER A, not MET_BY
        )
        met_by = find_pattern(relation, SequencePattern.career(("A", "B")))
        assert met_by == []
        after = find_pattern(
            relation, SequencePattern.career(("A", "B"), relation=R.AFTER)
        )
        assert len(after) == 1

    def test_matches_all_on_generated_careers(self):
        faculty = FacultyWorkload(
            faculty_count=50, continuous=True, full_fraction=1.0
        ).generate(3)
        matches = find_pattern(
            faculty,
            SequencePattern.career(("Assistant", "Associate", "Full")),
        )
        assert len(matches) == 50  # everyone reaches Full continuously


class TestScanDiscipline:
    def test_single_pass_and_group_workspace(self):
        faculty = FacultyWorkload(
            faculty_count=200, continuous=True, full_fraction=1.0
        ).generate(5).sorted_by(SortOrder.by_surrogate())
        scan = PatternScan(
            faculty.tuples,
            SequencePattern.career(("Assistant", "Associate", "Full")),
        )
        matches = scan.run()
        assert len(matches) == 200
        assert scan.tuples_read == len(faculty)
        assert scan.groups_scanned == 200
        # Workspace is one career, not the relation.
        assert scan.max_group_size == 3

    def test_ungrouped_input_rejected(self):
        tuples = [
            TemporalTuple("a", "A", 0, 5),
            TemporalTuple("b", "A", 0, 5),
            TemporalTuple("a", "B", 5, 9),
        ]
        scan = PatternScan(tuples, SequencePattern.career(("A", "B")))
        with pytest.raises(StreamOrderError):
            scan.run()

    def test_empty_input(self):
        scan = PatternScan([], SequencePattern.career(("A", "B")))
        assert scan.run() == []


class TestMultipleMatches:
    def test_branching_histories(self):
        """Several tuples can extend the same partial match."""
        relation = rel(
            ("a", "A", 0, 5),
            ("a", "B", 5, 9),
            ("a", "B", 5, 12),  # a second B also meeting A
        )
        matches = find_pattern(relation, SequencePattern.career(("A", "B")))
        assert len(matches) == 2

    def test_overlapping_pattern(self):
        pattern = SequencePattern.of(
            PatternStep("deploy"),
            PatternStep("incident", R.DURING),
        )
        relation = rel(
            ("svc", "deploy", 0, 100),
            ("svc", "incident", 10, 20),
            ("svc", "incident", 150, 160),
        )
        matches = find_pattern(relation, pattern)
        assert len(matches) == 1
        assert matches[0].tuples[1].valid_from == 10


class TestAgainstBruteForce:
    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=2),      # surrogate
                st.sampled_from(["A", "B"]),                 # value
                st.integers(min_value=0, max_value=30),      # start
                st.integers(min_value=1, max_value=8),       # duration
            ),
            max_size=14,
        )
    )
    def test_two_step_pattern(self, rows):
        relation = rel(
            *[(f"s{s}", v, a, a + d) for s, v, a, d in rows]
        )
        pattern = SequencePattern.of(
            PatternStep("A"), PatternStep("B", R.AFTER)
        )
        found = {
            (m.surrogate, m.tuples[0], m.tuples[1])
            for m in find_pattern(relation, pattern)
        }
        brute = set()
        for first in relation:
            for second in relation:
                if (
                    first.surrogate == second.surrogate
                    and first.value == "A"
                    and second.value == "B"
                    and second.interval.after(first.interval)
                ):
                    brute.add((first.surrogate, first, second))
        assert found == brute


class TestForwardRelationDiscipline:
    def test_backward_relations_rejected(self):
        from repro.patterns import FORWARD_RELATIONS

        for relation in (R.BEFORE, R.MEETS, R.OVERLAPS, R.CONTAINS,
                         R.STARTS, R.FINISHED_BY, R.EQUAL):
            assert relation not in FORWARD_RELATIONS
            with pytest.raises(TemporalModelError):
                SequencePattern.of(
                    PatternStep("A"), PatternStep("B", relation)
                )

    def test_inverse_reformulation_finds_same_pairs(self):
        """'A before B' stated forward: B AFTER the previous A."""
        relation = rel(
            ("a", "A", 0, 3),
            ("a", "B", 5, 9),
        )
        forward = SequencePattern.of(
            PatternStep("A"), PatternStep("B", R.AFTER)
        )
        matches = find_pattern(relation, forward)
        assert len(matches) == 1
