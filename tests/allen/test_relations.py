"""Tests for the 13 Allen relations (Figure 2), exhaustively
cross-validated over a small interval space."""

from itertools import combinations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.allen import ALL_RELATIONS, GENERAL_OVERLAP, AllenRelation, classify
from repro.model import Interval

SMALL_INTERVALS = [Interval(a, b) for a, b in combinations(range(6), 2)]

intervals = st.tuples(
    st.integers(min_value=-100, max_value=100),
    st.integers(min_value=1, max_value=60),
).map(lambda t: Interval(t[0], t[0] + t[1]))


class TestClassify:
    @pytest.mark.parametrize(
        "x, y, expected",
        [
            ((1, 5), (1, 5), AllenRelation.EQUAL),
            ((1, 5), (5, 9), AllenRelation.MEETS),
            ((5, 9), (1, 5), AllenRelation.MET_BY),
            ((1, 3), (1, 9), AllenRelation.STARTS),
            ((1, 9), (1, 3), AllenRelation.STARTED_BY),
            ((7, 9), (1, 9), AllenRelation.FINISHES),
            ((1, 9), (7, 9), AllenRelation.FINISHED_BY),
            ((3, 5), (1, 9), AllenRelation.DURING),
            ((1, 9), (3, 5), AllenRelation.CONTAINS),
            ((1, 5), (3, 9), AllenRelation.OVERLAPS),
            ((3, 9), (1, 5), AllenRelation.OVERLAPPED_BY),
            ((1, 3), (5, 9), AllenRelation.BEFORE),
            ((5, 9), (1, 3), AllenRelation.AFTER),
        ],
    )
    def test_figure2_rows(self, x, y, expected):
        assert classify(Interval(*x), Interval(*y)) is expected

    def test_partition_property_exhaustive(self):
        """Exactly one of the 13 relations holds per pair (Figure 2:
        'the 13 possible temporal relationships' partition the space)."""
        for x in SMALL_INTERVALS:
            for y in SMALL_INTERVALS:
                holding = [r for r in ALL_RELATIONS if r.holds(x, y)]
                assert holding == [classify(x, y)]

    @given(intervals, intervals)
    def test_classify_agrees_with_predicate(self, x, y):
        assert classify(x, y).holds(x, y)

    @given(intervals, intervals)
    def test_classify_inverse_symmetry(self, x, y):
        assert classify(y, x) is classify(x, y).inverse()


class TestInverse:
    def test_involution(self):
        for rel in ALL_RELATIONS:
            assert rel.inverse().inverse() is rel

    def test_self_inverse_is_only_equal(self):
        self_inverse = [r for r in ALL_RELATIONS if r.inverse() is r]
        assert self_inverse == [AllenRelation.EQUAL]

    def test_there_are_thirteen(self):
        assert len(ALL_RELATIONS) == 13
        assert len(set(ALL_RELATIONS)) == 13


class TestInequalityOnly:
    def test_members(self):
        """Section 4.2 names during/contains, overlaps and before (and
        inverses) as the operators whose explicit constraints are pure
        inequalities."""
        expected = {
            AllenRelation.DURING,
            AllenRelation.CONTAINS,
            AllenRelation.OVERLAPS,
            AllenRelation.OVERLAPPED_BY,
            AllenRelation.BEFORE,
            AllenRelation.AFTER,
        }
        assert {
            r for r in ALL_RELATIONS if r.is_inequality_only
        } == expected


class TestGeneralOverlap:
    def test_matches_intersects_exhaustively(self):
        """The TQuel 'overlap' is exactly the union of the nine
        point-sharing Allen relations (footnote 6 of the paper)."""
        for x in SMALL_INTERVALS:
            for y in SMALL_INTERVALS:
                assert (classify(x, y) in GENERAL_OVERLAP) == x.intersects(y)

    def test_excludes_before_meets(self):
        for rel in (
            AllenRelation.BEFORE,
            AllenRelation.AFTER,
            AllenRelation.MEETS,
            AllenRelation.MET_BY,
        ):
            assert rel not in GENERAL_OVERLAP
        assert len(GENERAL_OVERLAP) == 9
