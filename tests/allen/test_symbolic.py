"""Tests for symbolic endpoint constraints — Figure 2's right column.

The key property: for every Allen relation, the explicit constraint
conjunction evaluates to true exactly when the relation holds.  The
paper calls the operators "syntactic sugar" for these constraints; we
verify the desugaring is faithful.
"""

from itertools import combinations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.allen import (
    ALL_RELATIONS,
    AllenRelation,
    Comparison,
    CompOp,
    Conjunction,
    Endpoint,
    EndpointKind,
    constraint_for,
    general_overlap_constraint,
    intra_tuple_constraint,
)
from repro.model import Interval

SMALL_INTERVALS = [Interval(a, b) for a, b in combinations(range(6), 2)]

intervals = st.tuples(
    st.integers(min_value=-50, max_value=50),
    st.integers(min_value=1, max_value=40),
).map(lambda t: Interval(t[0], t[0] + t[1]))


class TestEndpoint:
    def test_evaluate(self):
        binding = {"f1": Interval(3, 9)}
        assert Endpoint("f1", EndpointKind.TS).evaluate(binding) == 3
        assert Endpoint("f1", EndpointKind.TE).evaluate(binding) == 9

    def test_str(self):
        assert str(Endpoint("f1", EndpointKind.TS)) == "f1.TS"


class TestComparison:
    def test_gt_normalises_to_lt(self):
        a = Endpoint("X", EndpointKind.TS)
        b = Endpoint("Y", EndpointKind.TS)
        c = Comparison.gt(a, b)
        assert c.op is CompOp.LT
        assert c.left == b and c.right == a

    def test_ge_normalises_to_le(self):
        a = Endpoint("X", EndpointKind.TS)
        c = Comparison.ge(a, 5)
        assert c.op is CompOp.LE
        assert c.left == 5 and c.right == a

    def test_constant_operands(self):
        c = Comparison.lt(Endpoint("X", EndpointKind.TS), 10)
        assert c.evaluate({"X": Interval(3, 9)})
        assert not c.evaluate({"X": Interval(10, 19)})

    def test_variables(self):
        c = Comparison.lt(
            Endpoint("X", EndpointKind.TS), Endpoint("Y", EndpointKind.TE)
        )
        assert c.variables() == {"X", "Y"}
        assert Comparison.lt(5, 6).variables() == frozenset()

    def test_rename(self):
        c = Comparison.lt(
            Endpoint("X", EndpointKind.TS), Endpoint("Y", EndpointKind.TE)
        )
        renamed = c.rename({"X": "f1", "Y": "f3"})
        assert renamed.variables() == {"f1", "f3"}


class TestConjunction:
    def test_evaluate_is_conjunctive(self):
        conj = constraint_for(AllenRelation.DURING)
        assert conj.evaluate({"X": Interval(3, 5), "Y": Interval(1, 9)})
        assert not conj.evaluate({"X": Interval(1, 5), "Y": Interval(1, 9)})

    def test_without_removes_one(self):
        conj = constraint_for(AllenRelation.DURING)
        first = conj.comparisons[0]
        smaller = conj.without(first)
        assert len(smaller) == len(conj) - 1
        assert first not in smaller.comparisons

    def test_conjoin(self):
        a = constraint_for(AllenRelation.BEFORE, "f1", "f2")
        b = intra_tuple_constraint("f1")
        combined = a.conjoin(b)
        assert len(combined) == len(a) + len(b)

    def test_rename(self):
        conj = constraint_for(AllenRelation.OVERLAPS).rename(
            {"X": "f1", "Y": "f3"}
        )
        assert conj.variables() == {"f1", "f3"}


class TestFigure2Faithfulness:
    @pytest.mark.parametrize("relation", ALL_RELATIONS)
    def test_constraint_matches_relation_exhaustively(self, relation):
        conj = constraint_for(relation)
        for x in SMALL_INTERVALS:
            for y in SMALL_INTERVALS:
                assert conj.evaluate({"X": x, "Y": y}) == relation.holds(
                    x, y
                ), f"{relation} vs {conj} on {x}, {y}"

    @given(intervals, intervals)
    def test_constraint_matches_relation_random(self, x, y):
        for relation in ALL_RELATIONS:
            conj = constraint_for(relation)
            assert conj.evaluate({"X": x, "Y": y}) == relation.holds(x, y)

    def test_overlaps_has_three_inequalities(self):
        """Figure 2 row 6 lists three strict inequalities."""
        conj = constraint_for(AllenRelation.OVERLAPS)
        assert len(conj) == 3
        assert all(c.op is CompOp.LT for c in conj)

    def test_inverse_relations_swap_operands(self):
        during = constraint_for(AllenRelation.DURING, "a", "b")
        contains = constraint_for(AllenRelation.CONTAINS, "b", "a")
        assert set(during.comparisons) == set(contains.comparisons)


class TestGeneralOverlapConstraint:
    @given(intervals, intervals)
    def test_matches_intersects(self, x, y):
        conj = general_overlap_constraint()
        assert conj.evaluate({"X": x, "Y": y}) == x.intersects(y)

    def test_superstar_translation(self):
        """The paper's Section-3 desugaring: (f1 overlap f3) becomes
        f1.TS < f3.TE AND f3.TS < f1.TE."""
        conj = general_overlap_constraint("f1", "f3")
        assert str(conj) == "f1.TS < f3.TE AND f3.TS < f1.TE"


class TestIntraTupleConstraint:
    @given(intervals)
    def test_always_holds_on_valid_intervals(self, x):
        assert intra_tuple_constraint("X").evaluate({"X": x})
