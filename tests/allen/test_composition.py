"""Tests for the derived Allen composition table."""

from hypothesis import given
from hypothesis import strategies as st

from repro.allen import (
    ALL_RELATIONS,
    AllenRelation,
    compose,
    compose_sets,
    is_consistent_triple,
)
from repro.model import Interval

intervals = st.tuples(
    st.integers(min_value=0, max_value=40),
    st.integers(min_value=1, max_value=20),
).map(lambda t: Interval(t[0], t[0] + t[1]))

relations = st.sampled_from(list(ALL_RELATIONS))


class TestKnownEntries:
    def test_equal_is_identity(self):
        for rel in ALL_RELATIONS:
            assert compose(AllenRelation.EQUAL, rel) == {rel}
            assert compose(rel, AllenRelation.EQUAL) == {rel}

    def test_before_is_transitive(self):
        assert compose(AllenRelation.BEFORE, AllenRelation.BEFORE) == {
            AllenRelation.BEFORE
        }
        assert compose(AllenRelation.AFTER, AllenRelation.AFTER) == {
            AllenRelation.AFTER
        }

    def test_during_before_gives_before(self):
        assert compose(AllenRelation.DURING, AllenRelation.BEFORE) == {
            AllenRelation.BEFORE
        }

    def test_contains_during_is_wide_open(self):
        # X contains Y, Y during Z constrains X vs Z only weakly.
        result = compose(AllenRelation.CONTAINS, AllenRelation.DURING)
        assert AllenRelation.EQUAL in result
        assert AllenRelation.CONTAINS in result
        assert AllenRelation.DURING in result
        assert len(result) == 9

    def test_before_after_is_universal(self):
        assert compose(AllenRelation.BEFORE, AllenRelation.AFTER) == set(
            ALL_RELATIONS
        )

    def test_meets_meets_gives_before(self):
        assert compose(AllenRelation.MEETS, AllenRelation.MEETS) == {
            AllenRelation.BEFORE
        }

    def test_during_transitive(self):
        assert compose(AllenRelation.DURING, AllenRelation.DURING) == {
            AllenRelation.DURING
        }


class TestAlgebraicProperties:
    def test_every_entry_nonempty(self):
        for r1 in ALL_RELATIONS:
            for r2 in ALL_RELATIONS:
                assert compose(r1, r2)

    def test_inverse_law(self):
        """(r1 ; r2)^-1 == r2^-1 ; r1^-1."""
        for r1 in ALL_RELATIONS:
            for r2 in ALL_RELATIONS:
                lhs = {r.inverse() for r in compose(r1, r2)}
                rhs = compose(r2.inverse(), r1.inverse())
                assert lhs == rhs

    @given(intervals, intervals, intervals)
    def test_soundness_on_concrete_triples(self, x, y, z):
        from repro.allen import classify

        r1 = classify(x, y)
        r2 = classify(y, z)
        r3 = classify(x, z)
        assert r3 in compose(r1, r2)
        assert is_consistent_triple(r1, r2, r3)

    def test_compose_sets_unions_pointwise(self):
        s1 = frozenset({AllenRelation.BEFORE, AllenRelation.MEETS})
        s2 = frozenset({AllenRelation.BEFORE})
        expected = compose(AllenRelation.BEFORE, AllenRelation.BEFORE) | (
            compose(AllenRelation.MEETS, AllenRelation.BEFORE)
        )
        assert compose_sets(s1, s2) == expected

    def test_inconsistent_triple_rejected(self):
        # X before Y and Y before Z cannot give X after Z.
        assert not is_consistent_triple(
            AllenRelation.BEFORE,
            AllenRelation.BEFORE,
            AllenRelation.AFTER,
        )
