"""Unit tests for the columnar interval representation."""

import pytest

from repro.columnar import IntervalColumns
from repro.errors import StreamOrderError
from repro.model import TE_ASC, TS_ASC, TS_DESC, TemporalTuple
from repro.model.sortorder import SortOrder


def T(value, ts, te):
    return TemporalTuple(f"s{value}", value, ts, te)


TUPLES = [T(0, 5, 9), T(1, 0, 4), T(2, 3, 12), T(3, 3, 5)]


class TestConstruction:
    def test_from_tuples_sorts_by_order(self):
        cols = IntervalColumns.from_tuples(TUPLES, order=TS_ASC)
        assert list(cols.ts) == [0, 3, 3, 5]
        assert len(cols) == 4
        # payload stays positionally aligned with the endpoint columns
        for i, payload in enumerate(cols.payload):
            assert payload.valid_from == cols.ts[i]
            assert payload.valid_to == cols.te[i]

    def test_presorted_trusts_caller(self):
        cols = IntervalColumns.from_tuples(
            TUPLES, order=TS_ASC, presorted=True
        )
        assert list(cols.ts) == [5, 0, 3, 3]  # untouched

    def test_misaligned_columns_rejected(self):
        cols = IntervalColumns.from_tuples(TUPLES, order=TS_ASC)
        with pytest.raises(ValueError):
            IntervalColumns(cols.ts, cols.te[:2], cols.payload, TS_ASC)

    def test_no_order_keeps_arrival_sequence(self):
        cols = IntervalColumns.from_tuples(TUPLES)
        assert [p.value for p in cols.payload] == [0, 1, 2, 3]


class TestVerifyOrder:
    def test_sorted_columns_pass(self):
        for order in (TS_ASC, TE_ASC, TS_DESC):
            IntervalColumns.from_tuples(TUPLES, order=order).verify_order()

    def test_violation_raises(self):
        cols = IntervalColumns.from_tuples(
            TUPLES, order=TS_ASC, presorted=True
        )
        with pytest.raises(StreamOrderError):
            cols.verify_order()

    def test_secondary_key_violation_detected(self):
        order = SortOrder.by_ts(secondary_te=True)
        bad = [T(0, 1, 9), T(1, 1, 4)]  # equal TS, descending TE
        cols = IntervalColumns.from_tuples(bad, order=order, presorted=True)
        with pytest.raises(StreamOrderError):
            cols.verify_order()
        IntervalColumns.from_tuples(bad, order=order).verify_order()

    def test_ties_are_legal(self):
        dup = [T(0, 2, 6), T(1, 2, 6), T(2, 2, 6)]
        IntervalColumns.from_tuples(
            dup, order=TS_ASC, presorted=True
        ).verify_order()

    def test_surrogate_order_falls_back_to_tuple_check(self):
        order = SortOrder.by_surrogate()
        cols = IntervalColumns.from_tuples(TUPLES, order=order)
        cols.verify_order()
        bad = IntervalColumns.from_tuples(
            list(reversed(cols.payload)), order=order, presorted=True
        )
        with pytest.raises(StreamOrderError):
            bad.verify_order()
