"""Fused endpoint-event backend: event encoding laws, the tie-rank
order against the kernels' implicit merge, lazy join materialisation,
endpoint-only column execution, and the slot-store bound declarations."""

from array import array

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.tables import FUSED_BOUNDS, derive_fused_bound
from repro.columnar import fused, kernels
from repro.columnar.backend import FusedContainJoinTsTs, LazyPairs
from repro.columnar.events import (
    IDX_MASK,
    RANK_EVICT,
    RANK_PROBE,
    RANK_START,
    SIDE_X,
    SIDE_Y,
    check_capacity,
    disposal_bound,
    entry_endpoint,
    entry_index,
    event_index,
    event_rank,
    event_side,
    event_time,
    merged_schedule,
    pack_entry,
    pack_event,
)
from repro.errors import WorkspaceOverflowError
from repro.model import TS_ASC, TemporalTuple, sort_tuples
from repro.streams import TupleStream, supported_entries
from repro.streams.registry import _registry

#: Endpoints cover negatives: the time-reversal mirrors feed negated
#: columns through the same packing.
times = st.integers(min_value=-(10**6), max_value=10**6)
indexes = st.integers(min_value=0, max_value=IDX_MASK)

#: Random interval workloads as parallel sorted endpoint columns.
interval_columns = st.lists(
    st.tuples(
        st.integers(min_value=-50, max_value=50),
        st.integers(min_value=1, max_value=40),
    ),
    max_size=50,
).map(
    lambda spans: (
        [a for a, _ in sorted(spans)],
        [a + d for a, d in sorted(spans)],
    )
)


class TestEntryKeys:
    @given(times, indexes)
    def test_pack_roundtrip(self, t, i):
        key = pack_entry(t, i)
        assert entry_endpoint(key) == t
        assert entry_index(key) == i

    @given(times, times, indexes, indexes)
    def test_order_preserving(self, t1, t2, i1, i2):
        """Packed keys sort exactly like (endpoint, index) tuples —
        including for negative (mirrored) endpoints."""
        a, b = pack_entry(t1, i1), pack_entry(t2, i2)
        assert (a < b) == ((t1, i1) < (t2, i2))

    @given(st.lists(st.tuples(times, indexes), max_size=40), times)
    def test_disposal_bound_splits_store(self, entries, t):
        """bisect at disposal_bound(t) == count of entries with
        endpoint <= t — the Section-4.2 disposal prefix."""
        store = sorted(pack_entry(e, i) for e, i in entries)
        from bisect import bisect_right

        k = bisect_right(store, disposal_bound(t))
        assert k == sum(1 for e, _ in entries if e <= t)
        assert all(entry_endpoint(key) <= t for key in store[:k])
        assert all(entry_endpoint(key) > t for key in store[k:])

    def test_capacity_guard(self):
        check_capacity(IDX_MASK)
        with pytest.raises(ValueError):
            check_capacity(IDX_MASK + 1)


class TestEventSchedule:
    @given(times, st.sampled_from([RANK_EVICT, RANK_PROBE, RANK_START]),
           st.sampled_from([SIDE_X, SIDE_Y]), indexes)
    def test_event_roundtrip(self, t, rank, side, i):
        e = pack_event(t, rank, side, i)
        assert event_time(e) == t
        assert event_rank(e) == rank
        assert event_side(e) == side
        assert event_index(e) == i

    @given(interval_columns, st.lists(times, max_size=40))
    def test_tie_rank_law(self, xcols, probes):
        """At any shared timestamp the merged schedule fires evictions
        first, the probe second, and starts last — the closed-open
        disposal order of Section 4.2."""
        x_ts, x_te = xcols
        schedule = merged_schedule(x_ts, x_te, sorted(probes))
        decoded = [
            (event_time(e), event_rank(e), event_side(e), event_index(e))
            for e in schedule
        ]
        assert decoded == sorted(decoded)
        assert len(decoded) == 2 * len(x_ts) + len(probes)
        # Rank semantics: every start/evict event carries its column's
        # actual endpoint.
        for t, rank, side, i in decoded:
            if rank == RANK_START:
                assert (side, t) == (SIDE_X, x_ts[i])
            elif rank == RANK_EVICT:
                assert (side, t) == (SIDE_X, x_te[i])

    @given(interval_columns, interval_columns)
    @settings(max_examples=60)
    def test_kernel_realises_schedule_order(self, xcols, ycols):
        """The fused contain-join's implicit merge (two pointers plus
        the equal-timestamp holdback) produces exactly the pairs the
        explicit merged schedule mandates: replaying the schedule with
        a naive active set gives the same output multiset."""
        x_ts, x_te = xcols
        y_ts, y_te = ycols
        runs, _ = fused.contain_join_ts_ts(x_ts, x_te, y_ts, y_te)
        xi, yj = runs.index_columns()
        got = sorted(zip(xi, yj))

        # Replay the explicit schedule: starts admit, evicts remove,
        # probes match the *current* active set against Y.TE.
        schedule = merged_schedule(x_ts, x_te, y_ts)
        active = set()
        expected = []
        for e in schedule:
            rank, idx = event_rank(e), event_index(e)
            if rank == RANK_START:
                active.add(idx)
            elif rank == RANK_EVICT:
                active.discard(idx)
            else:
                for x in active:
                    if x_te[x] > y_te[idx]:
                        expected.append((x, idx))
        assert got == sorted(expected)


class TestLazyPairs:
    def _runs(self, n=6):
        x_ts = list(range(n))
        x_te = [t + 10 for t in x_ts]
        y_ts = [t + 1 for t in x_ts]
        y_te = [t + 2 for t in y_ts]
        runs, _ = fused.contain_join_ts_ts(x_ts, x_te, y_ts, y_te)
        xp = [f"x{i}" for i in range(n)]
        yp = [f"y{j}" for j in range(n)]
        return runs, xp, yp

    def test_len_before_materialize(self):
        runs, xp, yp = self._runs()
        lazy = LazyPairs(runs, xp, yp)
        assert len(lazy) == runs.total > 0
        assert lazy.materialized is False  # len() touched nothing

    def test_materialises_on_iteration_and_caches(self):
        runs, xp, yp = self._runs()
        lazy = LazyPairs(runs, xp, yp)
        first = list(lazy)
        assert lazy.materialized is True
        assert list(lazy) is not first  # list() copies...
        assert lazy[0] == first[0]  # ...but the cache is shared
        assert len(first) == len(lazy)

    @given(interval_columns, interval_columns)
    @settings(max_examples=40)
    def test_len_matches_eager_kernel(self, xcols, ycols):
        """The O(1) run-total length equals the eager columnar kernel's
        pair count, without expanding a single pair."""
        x_ts, x_te = xcols
        y_ts, y_te = ycols
        runs, _ = fused.contain_join_ts_ts(x_ts, x_te, y_ts, y_te)
        lazy = LazyPairs(runs, [None] * len(x_ts), [None] * len(y_ts))
        (exi, _), _ = kernels.contain_join_ts_ts(x_ts, x_te, y_ts, y_te)
        assert len(lazy) == len(exi)
        assert lazy.materialized is False

    def test_equality_materialises(self):
        runs, xp, yp = self._runs()
        lazy = LazyPairs(runs, xp, yp)
        eager = list(LazyPairs(runs, xp, yp))
        assert lazy == eager
        assert lazy.materialized is True


class TestEndpointOnlyExecution:
    """Fused kernels run on bare endpoint columns (the shared-memory
    worker shape: no payload objects at all)."""

    def test_join_kernel_on_arrays(self):
        x_ts = array("q", [0, 2, 5])
        x_te = array("q", [10, 6, 12])
        y_ts = array("q", [1, 3, 6, 11])
        y_te = array("q", [4, 6, 11, 12])
        runs, stats = fused.contain_join_ts_ts(x_ts, x_te, y_ts, y_te)
        xi, yj = runs.index_columns()
        assert sorted(zip(xi, yj)) == [(0, 0), (0, 1), (2, 2)]
        assert stats.inserted == stats.discarded
        assert stats.high_water >= 1

    def test_semijoin_kernel_on_arrays(self):
        x_ts = array("q", [0, 2, 5])
        x_te = array("q", [10, 6, 12])
        y_ts = array("q", [1, 3, 6])
        y_te = array("q", [4, 6, 11])
        out, stats = fused.contain_semijoin_ts_ts(x_ts, x_te, y_ts, y_te)
        assert out == [0, 2]
        assert stats.eviction_checks >= 0

    def test_budget_overflow(self):
        x_ts = [0, 1, 2]
        x_te = [100, 100, 100]
        with pytest.raises(WorkspaceOverflowError):
            fused.contain_join_ts_ts(x_ts, x_te, [50], [60], limit=2)


class TestSlotBounds:
    def test_every_fused_cell_declares_a_certified_bound(self):
        """Each fused processor's declared slot_bound is in the bound
        vocabulary and matches the Tables-1/2/3 derivation."""
        seen = 0
        for entry in _registry().values():
            if entry.fused_factory is None:
                continue
            seen += 1
            base = getattr(
                entry.fused_factory, "base_factory", entry.fused_factory
            )
            declared = base.slot_bound
            assert declared in FUSED_BOUNDS
            assert declared == derive_fused_bound(
                entry.operator, entry.state_class
            )
        assert seen > 0

    def test_fused_high_water_respects_declared_bound(self):
        """A zero-bound cell never inserts; a one-bound cell peaks at
        one; an active-intervals cell tracks the columnar backend."""
        rows = sort_tuples(
            [
                TemporalTuple(f"s{i}", i, i, i + 5)
                for i in range(20)
            ],
            TS_ASC,
        )
        from repro.streams import TemporalOperator

        def run(op, x_order, y_order, backend):
            entry = None
            for e in supported_entries(op):
                if str(e.x_order) == x_order and (
                    y_order is None or str(e.y_order) == y_order
                ):
                    entry = e
                    break
            assert entry is not None
            streams = [
                TupleStream.from_tuples(
                    sort_tuples(rows, entry.x_order),
                    order=entry.x_order,
                    name="X",
                )
            ]
            if entry.y_order is not None:
                streams.append(
                    TupleStream.from_tuples(
                        sort_tuples(rows, entry.y_order),
                        order=entry.y_order,
                        name="Y",
                    )
                )
            p = entry.build(*streams, backend=backend)
            p.run()
            return p.metrics.workspace.high_water

        # class (d): zero slot-store entries
        assert (
            run(
                TemporalOperator.CONTAIN_SEMIJOIN,
                "ValidFrom^",
                "ValidTo^",
                "fused",
            )
            == 0
        )
        # class (a1): at most one
        assert (
            run(
                TemporalOperator.SELF_CONTAINED_SEMIJOIN,
                "ValidFrom^, ValidTo^",
                None,
                "fused",
            )
            <= 1
        )
        # class (a): equal to the columnar active-list peak
        assert run(
            TemporalOperator.CONTAIN_JOIN,
            "ValidFrom^",
            "ValidFrom^",
            "fused",
        ) == run(
            TemporalOperator.CONTAIN_JOIN,
            "ValidFrom^",
            "ValidFrom^",
            "columnar",
        )

    def test_processor_class_exposes_bound(self):
        assert FusedContainJoinTsTs.slot_bound == "active-intervals"
