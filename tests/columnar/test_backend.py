"""Backend-selection plumbing: registry, processors, planner."""

import pytest

from repro.columnar import (
    ColumnarContainJoinTsTs,
    ColumnarOverlapJoin,
    ColumnarSelfContainSemijoin,
)
from repro.errors import (
    UnsupportedBackendError,
    UnsupportedSortOrderError,
    WorkspaceOverflowError,
)
from repro.model import (
    TE_ASC,
    TS_ASC,
    TemporalRelation,
    TemporalSchema,
    TemporalTuple,
    sort_tuples,
)
from repro.optimizer.planner import TemporalJoinPlanner
from repro.streams import BACKENDS, TemporalOperator, TupleStream, lookup
from repro.streams.registry import supported_entries


def T(value, ts, te):
    return TemporalTuple(f"s{value}", value, ts, te)


XS = [T(0, 0, 10), T(1, 2, 6), T(2, 5, 12)]
YS = [T(10, 1, 4), T(11, 3, 6), T(12, 6, 11)]


def stream(tuples, order, name):
    return TupleStream.from_tuples(
        sort_tuples(tuples, order), order=order, name=name
    )


class TestRegistrySelection:
    def test_backends_constant(self):
        assert BACKENDS == ("tuple", "columnar", "fused")

    def test_supported_cells_offer_all_backends(self):
        entry = lookup(TemporalOperator.CONTAIN_JOIN, TS_ASC, TS_ASC)
        assert entry.backends == ("tuple", "columnar", "fused")

    def test_unsupported_cells_offer_neither(self):
        entry = lookup(TemporalOperator.CONTAIN_JOIN, TE_ASC, TE_ASC)
        assert entry.backends == ()
        with pytest.raises(UnsupportedSortOrderError):
            entry.factory_for("columnar")

    def test_unknown_backend_rejected(self):
        entry = lookup(TemporalOperator.CONTAIN_JOIN, TS_ASC, TS_ASC)
        with pytest.raises(UnsupportedBackendError):
            entry.factory_for("vectorised")

    def test_build_backend_dispatch(self):
        entry = lookup(TemporalOperator.CONTAIN_JOIN, TS_ASC, TS_ASC)
        processor = entry.build(
            stream(XS, TS_ASC, "X"),
            stream(YS, TS_ASC, "Y"),
            backend="columnar",
        )
        assert isinstance(processor, ColumnarContainJoinTsTs)
        pairs = processor.run()
        assert sorted((a.value, b.value) for a, b in pairs) == [
            (0, 10),
            (0, 11),
            (2, 12),
        ]


class TestColumnarProcessors:
    def test_admission_check_matches_tuple_backend(self):
        with pytest.raises(UnsupportedSortOrderError):
            ColumnarOverlapJoin(
                stream(XS, TE_ASC, "X"), stream(YS, TS_ASC, "Y")
            )

    def test_binary_operator_requires_y(self):
        with pytest.raises(TypeError):
            ColumnarOverlapJoin(stream(XS, TS_ASC, "X"))

    def test_single_use(self):
        processor = ColumnarSelfContainSemijoin(stream(XS, TS_ASC, "X"))
        processor.run()
        from repro.errors import ExecutionError

        with pytest.raises(ExecutionError):
            processor.run()

    def test_order_violation_surfaces(self):
        from repro.errors import StreamOrderError

        bad = TupleStream.from_tuples(XS[::-1], order=TS_ASC, name="bad")
        processor = ColumnarSelfContainSemijoin(bad)
        with pytest.raises(StreamOrderError):
            processor.run()

    def test_meter_limit_enforced(self):
        processor = ColumnarOverlapJoin(
            stream(XS, TS_ASC, "X"), stream(YS, TS_ASC, "Y")
        )
        processor.meter.limit = 1
        with pytest.raises(WorkspaceOverflowError):
            processor.run()

    def test_meter_trace_enabled(self):
        processor = ColumnarOverlapJoin(
            stream(XS, TS_ASC, "X"), stream(YS, TS_ASC, "Y")
        )
        processor.meter.enable_trace()
        processor.run()
        trace = processor.meter.trace
        assert trace is not None and len(trace) > 1
        assert max(trace) == processor.metrics.workspace.high_water

    def test_metrics_account_like_tuple_backend(self):
        entry = lookup(TemporalOperator.CONTAIN_SEMIJOIN, TS_ASC, TS_ASC)
        results = {}
        for backend in entry.backends:
            processor = entry.build(
                stream(XS, TS_ASC, "X"),
                stream(YS, TS_ASC, "Y"),
                backend=backend,
            )
            out = processor.run()
            results[backend] = sorted(t.value for t in out)
            report = processor.metrics.workspace
            assert report.total_inserted == report.total_discarded
            assert report.residual == 0
        assert results["tuple"] == results["columnar"]


class TestPlannerBackend:
    def make_relations(self):
        schema_x = TemporalSchema("X", "Id", "Seq")
        schema_y = TemporalSchema("Y", "Id", "Seq")
        x = TemporalRelation(
            schema_x, sort_tuples(XS * 5, TS_ASC), order=TS_ASC
        )
        y = TemporalRelation(
            schema_y, sort_tuples(YS * 5, TS_ASC), order=TS_ASC
        )
        return x, y

    def test_unknown_backend_rejected(self):
        with pytest.raises(UnsupportedBackendError):
            TemporalJoinPlanner(backend="gpu")

    def test_backends_agree_end_to_end(self):
        x, y = self.make_relations()
        outputs = {}
        for backend in BACKENDS:
            planner = TemporalJoinPlanner(backend=backend)
            results, profile = planner.execute(
                TemporalOperator.OVERLAP_JOIN, x, y
            )
            outputs[backend] = sorted(
                (a.value, b.value) for a, b in results
            )
            if profile.chosen.kind == "stream":
                assert profile.metrics.passes_x == 1
        assert outputs["tuple"] == outputs["columnar"]

    def test_columnar_planner_skips_tuple_only_cells(self):
        """Every enumerated stream alternative must actually be
        executable on the planner's backend."""
        x, y = self.make_relations()
        planner = TemporalJoinPlanner(backend="columnar")
        for alt in planner.alternatives(
            TemporalOperator.CONTAIN_SEMIJOIN, x, y
        ):
            if alt.kind == "stream":
                assert "columnar" in alt.entry.backends

    def test_workspace_budget_falls_back_to_nested_loop(self):
        x, y = self.make_relations()
        planner = TemporalJoinPlanner(backend="columnar")
        results, profile = planner.execute(
            TemporalOperator.OVERLAP_JOIN, x, y, workspace_budget=1
        )
        if profile.details.get("workspace_overflow"):
            baseline = TemporalJoinPlanner(backend="tuple").execute(
                TemporalOperator.OVERLAP_JOIN, x, y
            )[0]
            assert sorted((a.value, b.value) for a, b in results) == sorted(
                (a.value, b.value) for a, b in baseline
            )


def test_every_supported_cell_reachable_per_backend():
    """Building every supported cell on every advertised backend must
    yield a runnable processor (mirrored lower-half rows included)."""
    operators = [
        TemporalOperator.CONTAIN_JOIN,
        TemporalOperator.CONTAIN_SEMIJOIN,
        TemporalOperator.CONTAINED_SEMIJOIN,
        TemporalOperator.OVERLAP_JOIN,
        TemporalOperator.OVERLAP_SEMIJOIN,
        TemporalOperator.BEFORE_SEMIJOIN,
    ]
    mirrored_seen = 0
    for operator in operators:
        for entry in supported_entries(operator):
            mirrored_seen += entry.mirrored
            for backend in entry.backends:
                processor = entry.build(
                    stream(XS, entry.x_order, "X"),
                    stream(YS, entry.y_order, "Y"),
                    backend=backend,
                )
                processor.run()
    assert mirrored_seen > 0
