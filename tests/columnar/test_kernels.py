"""Direct unit tests for the batch sweep kernels: hand-checked outputs,
accounting, the workspace budget, and the Figure-5 trace."""

import pytest

from repro.columnar import kernels
from repro.errors import WorkspaceOverflowError


def cols(spans):
    """Split [(ts, te), ...] into parallel endpoint lists."""
    return [a for a, _ in spans], [b for _, b in spans]


def pairs(out):
    """Zip a join kernel's parallel (xi, yj) output columns."""
    return sorted(zip(out[0], out[1]))


class TestContainJoinTsTs:
    def test_hand_checked(self):
        x_ts, x_te = cols([(0, 10), (2, 6), (5, 12)])
        y_ts, y_te = cols([(1, 4), (3, 6), (6, 11), (11, 12)])
        out, stats = kernels.contain_join_ts_ts(x_ts, x_te, y_ts, y_te)
        # x0=[0,10) contains y0=[1,4), y1=[3,6); x2=[5,12) contains y2=[6,11)
        assert pairs(out) == [(0, 0), (0, 1), (2, 2)]
        assert stats.inserted == stats.discarded  # state fully retired
        assert stats.high_water >= 1

    def test_shared_endpoints_are_strict(self):
        x_ts, x_te = cols([(0, 9)])
        y_ts, y_te = cols([(0, 5), (4, 9), (0, 9)])
        out, _ = kernels.contain_join_ts_ts(x_ts, x_te, y_ts, y_te)
        assert pairs(out) == []  # shared start/end or identical: no pair

    def test_budget_overflow(self):
        x_ts, x_te = cols([(0, 100), (1, 100), (2, 100)])
        y_ts, y_te = cols([(50, 60)])
        with pytest.raises(WorkspaceOverflowError):
            kernels.contain_join_ts_ts(x_ts, x_te, y_ts, y_te, limit=2)
        # A sufficient budget passes.
        out, stats = kernels.contain_join_ts_ts(
            x_ts, x_te, y_ts, y_te, limit=3
        )
        assert len(pairs(out)) == 3
        assert stats.high_water == 3

    def test_trace_records_state_trajectory(self):
        x_ts, x_te = cols([(0, 10), (1, 3)])
        y_ts, y_te = cols([(2, 4), (5, 8)])
        trace = [0]
        kernels.contain_join_ts_ts(x_ts, x_te, y_ts, y_te, trace=trace)
        assert trace[0] == 0
        assert max(trace) == 2  # both X open at sweep position 2
        assert trace[-1] == 0  # everything retired by the end


class TestContainJoinTsTe:
    def test_hand_checked(self):
        # X sorted by TS, Y sorted by TE.
        x_ts, x_te = cols([(0, 10), (2, 6), (5, 12)])
        y_ts, y_te = cols([(1, 4), (3, 6), (6, 11), (11, 12)])
        out, _ = kernels.contain_join_ts_te(x_ts, x_te, y_ts, y_te)
        assert pairs(out) == [(0, 0), (0, 1), (2, 2)]


class TestZeroStateSemijoins:
    def test_contain_semijoin_ts_te(self):
        x_ts, x_te = cols([(0, 10), (3, 5), (4, 12)])
        y_ts, y_te = cols([(3, 5), (6, 11)])
        out, stats = kernels.contain_semijoin_ts_te(x_ts, x_te, y_ts, y_te)
        assert out == [0, 2]  # [3,5) inside [0,10); [6,11) inside [4,12)
        assert stats.inserted == 0 and stats.high_water == 0

    def test_contained_semijoin_te_ts(self):
        # X sorted by TE, Y sorted by TS.
        x_ts, x_te = cols([(3, 5), (6, 8), (0, 10)])
        y_ts, y_te = cols([(0, 10), (2, 9)])
        out, stats = kernels.contained_semijoin_te_ts(x_ts, x_te, y_ts, y_te)
        assert sorted(out) == [0, 1]
        assert stats.high_water == 0

    def test_overlap_semijoin(self):
        x_ts, x_te = cols([(0, 2), (2, 4), (5, 7)])
        y_ts, y_te = cols([(2, 5)])
        out, stats = kernels.overlap_semijoin_ts_ts(x_ts, x_te, y_ts, y_te)
        assert out == [1]  # zero-gap neighbours do not overlap
        assert stats.high_water == 0


class TestOverlapJoin:
    def test_each_pair_once(self):
        x_ts, x_te = cols([(0, 5), (3, 8)])
        y_ts, y_te = cols([(1, 4), (4, 9)])
        out, _ = kernels.overlap_join_ts_ts(x_ts, x_te, y_ts, y_te)
        assert pairs(out) == [(0, 0), (0, 1), (1, 0), (1, 1)]
        # zero-gap neighbours do not pair up
        out2, _ = kernels.overlap_join_ts_ts([0], [5], [5], [9])
        assert pairs(out2) == []
        # identical operands: every tuple overlaps itself exactly once
        s_ts, s_te = cols([(0, 4), (2, 6)])
        out3, _ = kernels.overlap_join_ts_ts(s_ts, s_te, s_ts, s_te)
        assert pairs(out3) == [(0, 0), (0, 1), (1, 0), (1, 1)]

    def test_budget_and_trace(self):
        x_ts, x_te = cols([(0, 10), (1, 10), (2, 10)])
        y_ts, y_te = cols([(3, 4)])
        with pytest.raises(WorkspaceOverflowError):
            kernels.overlap_join_ts_ts(x_ts, x_te, y_ts, y_te, limit=2)
        trace = [0]
        out, stats = kernels.overlap_join_ts_ts(
            x_ts, x_te, y_ts, y_te, trace=trace
        )
        assert len(pairs(out)) == 3
        assert max(trace) == stats.high_water == 3


class TestBeforeSemijoin:
    def test_strict_gap_required(self):
        x_ts, x_te = cols([(0, 3), (0, 5), (0, 6)])
        y_ts, y_te = cols([(5, 9)])
        out, stats = kernels.before_semijoin(x_ts, x_te, y_ts, y_te)
        assert out == [0]  # TE == max(Y.TS) is not before
        assert stats.high_water == 0

    def test_empty_y(self):
        out, _ = kernels.before_semijoin([0], [5], [], [])
        assert out == []


class TestSelfSemijoins:
    def test_contained_one_state_tuple(self):
        # sorted (TS^, TE^)
        x_ts, x_te = cols([(0, 10), (1, 4), (1, 9), (2, 6)])
        out, stats = kernels.self_contained_semijoin_ts_te(x_ts, x_te)
        assert sorted(out) == [1, 2, 3]
        assert stats.high_water == 1

    def test_contained_equal_ts_never_contains(self):
        x_ts, x_te = cols([(2, 6), (2, 6), (2, 8)])
        out, _ = kernels.self_contained_semijoin_ts_te(x_ts, x_te)
        assert out == []

    def test_contain_desc_one_state_tuple(self):
        # sorted (TSv, TEv)
        x_ts, x_te = cols([(5, 9), (2, 6), (1, 7), (0, 10)])
        out, stats = kernels.self_contain_semijoin_ts_te_desc(x_ts, x_te)
        assert sorted(out) == [2, 3]  # [1,7) and [0,10) contain [2,6)
        assert stats.high_water == 1

    def test_contain_ts_candidates(self):
        x_ts, x_te = cols([(0, 10), (1, 4), (5, 9), (6, 8)])
        out, stats = kernels.self_contain_semijoin_ts(x_ts, x_te)
        assert sorted(out) == [0, 2]
        # retire-on-match keeps the candidate set at one entry here
        assert stats.high_water == 1
        # overlapping non-containing runs do grow the candidate set
        ts2, te2 = cols([(0, 10), (1, 11), (2, 12)])
        _, stats2 = kernels.self_contain_semijoin_ts(ts2, te2)
        assert stats2.high_water == 3

    def test_zero_budget_rejected_on_nonempty(self):
        with pytest.raises(WorkspaceOverflowError):
            kernels.self_contained_semijoin_ts_te([0], [1], limit=0)
        out, _ = kernels.self_contained_semijoin_ts_te([], [], limit=0)
        assert out == []
