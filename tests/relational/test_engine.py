"""Tests for the conventional relational engine."""

import pytest

from repro.errors import SchemaError
from repro.model import TemporalRelation, TemporalSchema
from repro.relational import (
    And,
    Attr,
    Compare,
    CrossProduct,
    Distinct,
    EngineStats,
    HashEquiJoin,
    Literal,
    MergeEquiJoin,
    Not,
    Or,
    Project,
    RowSchema,
    Select,
    Sort,
    Table,
    TableScan,
    ThetaNestedLoopJoin,
    TruePredicate,
    table_from_temporal,
    temporal_scan,
)

FACULTY = TemporalRelation.from_rows(
    TemporalSchema("Faculty", "Name", "Rank"),
    [
        ("Smith", "Assistant", 0, 6),
        ("Smith", "Full", 12, 30),
        ("Jones", "Assistant", 0, 4),
        ("Jones", "Associate", 4, 20),
    ],
)


class TestRowSchema:
    def test_index_and_reader(self):
        schema = RowSchema.of("a", "b", "c")
        assert schema.index_of("b") == 1
        assert schema.reader("c")((10, 20, 30)) == 30

    def test_unknown_attribute(self):
        schema = RowSchema.of("a")
        with pytest.raises(SchemaError):
            schema.index_of("zzz")

    def test_duplicates_rejected(self):
        with pytest.raises(SchemaError):
            RowSchema.of("a", "a")

    def test_for_variable_qualifies(self):
        schema = RowSchema.for_variable("f1", ("Name", "Rank"))
        assert schema.attributes == ("f1.Name", "f1.Rank")

    def test_concat_and_project(self):
        left = RowSchema.of("a", "b")
        combined = left.concat(RowSchema.of("c"))
        assert combined.attributes == ("a", "b", "c")
        assert combined.project(["c", "a"]).attributes == ("c", "a")


class TestExpressions:
    SCHEMA = RowSchema.of("x", "y")

    def test_compare(self):
        pred = Compare(Attr("x"), "<", Attr("y")).compile_against(self.SCHEMA)
        assert pred((1, 2))
        assert not pred((2, 1))

    def test_literal_comparison(self):
        pred = Compare(Attr("x"), "=", Literal(5)).compile_against(self.SCHEMA)
        assert pred((5, 0))
        assert not pred((4, 0))

    def test_bad_operator(self):
        with pytest.raises(ValueError):
            Compare(Attr("x"), "<>", Attr("y"))

    def test_and_flattens(self):
        a = Compare(Attr("x"), "<", Literal(10))
        b = Compare(Attr("y"), "<", Literal(10))
        c = Compare(Attr("x"), ">", Literal(0))
        combined = And.of(And.of(a, b), c)
        assert len(list(combined.conjuncts())) == 3

    def test_or_and_not(self):
        a = Compare(Attr("x"), "=", Literal(1))
        b = Compare(Attr("y"), "=", Literal(1))
        either = Or.of(a, b).compile_against(self.SCHEMA)
        assert either((1, 0)) and either((0, 1)) and not either((0, 0))
        neither = Not(Or.of(a, b)).compile_against(self.SCHEMA)
        assert neither((0, 0))

    def test_attributes_collection(self):
        a = Compare(Attr("x"), "<", Attr("y"))
        assert And.of(a, TruePredicate()).attributes() == {"x", "y"}

    def test_true_predicate_has_no_conjuncts(self):
        assert list(TruePredicate().conjuncts()) == []


class TestScansAndTable:
    def test_table_from_temporal_qualified(self):
        table = table_from_temporal(FACULTY, "f1")
        assert table.schema.attributes == (
            "f1.Name",
            "f1.Rank",
            "f1.ValidFrom",
            "f1.ValidTo",
        )
        assert len(table) == 4

    def test_row_arity_checked(self):
        with pytest.raises(ValueError):
            Table("t", RowSchema.of("a", "b"), [(1,)])

    def test_scan_counts(self):
        stats = EngineStats()
        scan = temporal_scan(FACULTY, "f1", stats=stats)
        list(scan)
        list(scan)
        assert stats.scans_started == 2
        assert stats.rows_scanned == 8


class TestUnaryOperators:
    def scan(self, stats=None):
        return temporal_scan(FACULTY, "f", stats=stats)

    def test_select(self):
        select = Select(
            self.scan(), Compare(Attr("f.Rank"), "=", Literal("Assistant"))
        )
        out = select.run()
        assert len(out) == 2
        assert select.stats.comparisons == 4

    def test_project_by_name_and_expression(self):
        project = Project(
            self.scan(), ["f.Name", ("Start", Attr("f.ValidFrom"))]
        )
        assert project.schema.attributes == ("f.Name", "Start")
        assert ("Smith", 0) in project.run()

    def test_sort(self):
        ordered = Sort(self.scan(), ["f.ValidFrom", "f.ValidTo"]).run()
        starts = [row[2] for row in ordered]
        assert starts == sorted(starts)
        reverse = Sort(self.scan(), ["f.ValidFrom"], descending=True).run()
        assert [row[2] for row in reverse] == sorted(starts, reverse=True)

    def test_distinct(self):
        names = Project(self.scan(), ["f.Name"])
        assert sorted(Distinct(names).run()) == [("Jones",), ("Smith",)]


class TestJoins:
    def scans(self):
        stats = EngineStats()
        return (
            temporal_scan(FACULTY, "f1", stats=stats),
            temporal_scan(FACULTY, "f2", stats=stats),
        )

    def equality(self):
        return Compare(Attr("f1.Name"), "=", Attr("f2.Name"))

    def test_cross_product_cardinality(self):
        left, right = self.scans()
        assert len(CrossProduct(left, right).run()) == 16

    def test_mismatched_stats_rejected(self):
        left = temporal_scan(FACULTY, "f1")
        right = temporal_scan(FACULTY, "f2")
        with pytest.raises(ValueError):
            CrossProduct(left, right)

    def test_three_join_algorithms_agree(self):
        def run(builder):
            left, right = self.scans()
            return sorted(builder(left, right).run())

        nested = run(
            lambda l, r: ThetaNestedLoopJoin(l, r, self.equality())
        )
        hashed = run(
            lambda l, r: HashEquiJoin(l, r, "f1.Name", "f2.Name")
        )
        merged = run(
            lambda l, r: MergeEquiJoin(
                Sort(l, ["f1.Name"]), Sort(r, ["f2.Name"]), "f1.Name", "f2.Name"
            )
        )
        assert nested == hashed == merged
        assert len(nested) == 8  # 2x2 per name

    def test_residual_predicate(self):
        left, right = self.scans()
        join = HashEquiJoin(
            left,
            right,
            "f1.Name",
            "f2.Name",
            residual=Compare(Attr("f1.ValidTo"), "<=", Attr("f2.ValidFrom")),
        )
        out = join.run()
        # Per name: (Assistant, later-rank) pairs only.
        assert len(out) == 2

    def test_less_than_join_as_product_plus_selection(self):
        """Section 3: a less-than join is a Cartesian product followed
        by a selection — and equals the nested-loop theta join."""
        theta = Compare(Attr("f1.ValidTo"), "<", Attr("f2.ValidFrom"))
        left, right = self.scans()
        via_product = sorted(
            Select(CrossProduct(left, right), theta).run()
        )
        left2, right2 = self.scans()
        via_join = sorted(ThetaNestedLoopJoin(left2, right2, theta).run())
        assert via_product == via_join

    def test_explain_renders_tree(self):
        left, right = self.scans()
        join = ThetaNestedLoopJoin(left, right, self.equality())
        text = Select(join, TruePredicate()).explain()
        assert "Select" in text and "NestedLoopJoin" in text
        assert text.count("Scan") == 2
