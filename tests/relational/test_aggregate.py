"""Tests for the conventional hash aggregation operator."""

import pytest

from repro.relational import (
    EngineStats,
    HashAggregate,
    RowSchema,
    Table,
    TableScan,
    count_of,
    max_of,
    min_of,
    sum_of,
)

PAYROLL = Table(
    "payroll",
    RowSchema.of("dept", "emp", "salary"),
    [
        ("toys", "ann", 100),
        ("toys", "bob", 150),
        ("tools", "cat", 200),
        ("tools", "dan", 50),
        ("books", "fay", 300),
    ],
)


def scan():
    return TableScan(PAYROLL, stats=EngineStats())


class TestHashAggregate:
    def test_sum_per_group(self):
        agg = HashAggregate(
            scan(), ["dept"], {"total": sum_of("salary")}
        )
        assert sorted(agg.run()) == [
            ("books", 300),
            ("tools", 250),
            ("toys", 250),
        ]
        assert agg.schema.attributes == ("dept", "total")

    def test_multiple_aggregates(self):
        agg = HashAggregate(
            scan(),
            ["dept"],
            {
                "n": count_of("emp"),
                "hi": max_of("salary"),
                "lo": min_of("salary"),
            },
        )
        rows = {row[0]: row[1:] for row in agg.run()}
        assert rows["tools"] == (2, 200, 50)
        assert rows["books"] == (1, 300, 300)

    def test_global_aggregate(self):
        agg = HashAggregate(scan(), [], {"total": sum_of("salary")})
        assert agg.run() == [(800,)]

    def test_multi_column_grouping(self):
        agg = HashAggregate(
            scan(), ["dept", "emp"], {"n": count_of("salary")}
        )
        assert len(agg.run()) == 5

    def test_state_is_one_accumulator_per_group(self):
        agg = HashAggregate(scan(), ["dept"], {"total": sum_of("salary")})
        agg.run()
        assert agg.stats.rows_materialized == 3

    def test_agrees_with_stream_aggregate_on_grouped_input(self):
        """The Figure-4 stream processor and the conventional hash
        aggregate compute the same sums — with 1 vs #groups state."""
        from repro.streams import grouped_sum

        stream = grouped_sum(
            list(PAYROLL), key=lambda r: r[0], value=lambda r: r[2]
        )
        assert dict(stream) == dict(
            HashAggregate(
                scan(), ["dept"], {"total": sum_of("salary")}
            ).run()
        )
        assert stream.metrics.state_high_water == 1

    def test_empty_input(self):
        empty = Table("e", RowSchema.of("k", "v"), [])
        agg = HashAggregate(
            TableScan(empty, stats=EngineStats()),
            ["k"],
            {"s": sum_of("v")},
        )
        assert agg.run() == []

    def test_unknown_attribute(self):
        from repro.errors import SchemaError

        with pytest.raises(SchemaError):
            HashAggregate(scan(), ["nope"], {"s": sum_of("salary")})
