"""Tests for the Figure-3 rewrite pipeline."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebra import (
    LJoin,
    LProduct,
    LProject,
    LSelect,
    Rel,
    compile_plan,
    fuse_products,
    optimize,
    push_selections,
    split_selections,
)
from repro.model import TemporalRelation, TemporalSchema
from repro.query import parse_query, translate
from repro.relational import And, Attr, Compare, EngineStats, Literal
from repro.workload import FacultyWorkload, figure1_relation

CATALOG = {"Faculty": figure1_relation()}

SUPERSTAR = """
range of f1 is Faculty
range of f2 is Faculty
range of f3 is Faculty
retrieve into Stars (Name = f1.Name, ValidFrom = f1.ValidFrom, ValidTo = f2.ValidTo)
where f3.Rank = "Associate" and f1.Name = f2.Name and f1.Rank = "Assistant"
  and f2.Rank = "Full" and (f1 overlap f3) and (f2 overlap f3)
"""


def superstar_plan():
    return translate(parse_query(SUPERSTAR), CATALOG)


class TestSplitSelections:
    def test_conjunction_becomes_stack(self):
        plan = split_selections(superstar_plan())
        depth = 0
        node = plan.child
        while isinstance(node, LSelect):
            depth += 1
            node = node.child
        assert depth == 8  # 4 scalar + 2x2 desugared overlap conjuncts


class TestPushSelections:
    def test_rank_selections_reach_leaves(self):
        plan = push_selections(split_selections(superstar_plan()))
        # Each Rel should now sit directly under a Select on its rank,
        # i.e. some Select has a Rel child.
        rel_parents = [
            node
            for node in plan.walk()
            if isinstance(node, LSelect) and isinstance(node.child, Rel)
        ]
        assert len(rel_parents) == 3


class TestFuseProducts:
    def test_no_products_remain(self):
        plan = fuse_products(
            push_selections(split_selections(superstar_plan()))
        )
        assert not any(
            isinstance(node, LProduct) for node in plan.walk()
        )
        joins = [node for node in plan.walk() if isinstance(node, LJoin)]
        assert len(joins) == 2

    def test_join_predicates_partitioned(self):
        plan = optimize(superstar_plan())
        joins = [node for node in plan.walk() if isinstance(node, LJoin)]
        upper, lower = joins
        # The lower join carries the name equality; the upper carries
        # the four-inequality theta' of Figure 3(b).
        assert "f1.Name = f2.Name" in str(lower.predicate)
        inequality_count = sum(
            1
            for conjunct in upper.predicate.conjuncts()
            if isinstance(conjunct, Compare) and conjunct.is_inequality
        )
        assert inequality_count == 4


class TestProjectionPushdown:
    def test_unneeded_attribute_pruned(self):
        plan = optimize(superstar_plan())
        pruned = [
            node
            for node in plan.walk()
            if isinstance(node, LProject) and node is not plan
        ]
        assert pruned, "expected a pruning projection above a leaf"
        # f3.Name is never used upstream.
        for node in pruned:
            assert "f3.Name" not in node.schema().attributes


class TestSemanticsPreserved:
    def test_superstar_results_identical(self):
        raw = superstar_plan()
        rewritten = optimize(raw)
        raw_rows = sorted(compile_plan(raw, CATALOG).run())
        opt_rows = sorted(compile_plan(rewritten, CATALOG).run())
        assert raw_rows == opt_rows == [("Smith", 0, 30)]

    def test_optimization_reduces_comparisons(self):
        catalog = {"Faculty": FacultyWorkload(faculty_count=30).generate(5)}
        plan = translate(parse_query(SUPERSTAR), catalog)
        raw_stats = EngineStats()
        opt_stats = EngineStats()
        raw_rows = sorted(compile_plan(plan, catalog, raw_stats).run())
        opt_rows = sorted(
            compile_plan(optimize(plan), catalog, opt_stats).run()
        )
        assert raw_rows == opt_rows
        assert opt_stats.comparisons < raw_stats.comparisons / 10

    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_equivalence_on_random_faculty(self, seed):
        catalog = {
            "Faculty": FacultyWorkload(faculty_count=12).generate(seed)
        }
        plan = translate(parse_query(SUPERSTAR), catalog)
        assert sorted(compile_plan(plan, catalog).run()) == sorted(
            compile_plan(optimize(plan), catalog).run()
        )


class TestRewriteEdgeCases:
    def test_plan_without_where(self):
        plan = translate(
            parse_query("range of f is Faculty retrieve (N = f.Name)"),
            CATALOG,
        )
        assert sorted(compile_plan(optimize(plan), CATALOG).run()) == sorted(
            compile_plan(plan, CATALOG).run()
        )

    def test_selection_on_single_relation(self):
        schema = TemporalSchema("R", "Id", "Val")
        catalog = {
            "R": TemporalRelation.from_rows(
                schema, [("a", 1, 0, 5), ("b", 2, 3, 9)]
            )
        }
        plan = translate(
            parse_query(
                "range of r is R retrieve (I = r.Id) where r.ValidFrom < 3"
            ),
            catalog,
        )
        assert compile_plan(optimize(plan), catalog).run() == [("a",)]

    def test_fused_predicate_with_literal_side(self):
        # A predicate mixing literal and cross-side attributes must end
        # up somewhere valid.
        leaf = Rel("Faculty", "f", CATALOG["Faculty"].schema)
        plan = LSelect(
            leaf,
            And.of(
                Compare(Attr("f.ValidFrom"), "<", Literal(10)),
                Compare(Attr("f.Rank"), "=", Literal("Assistant")),
            ),
        )
        rows = compile_plan(optimize(plan), CATALOG).run()
        assert len(rows) == 2  # Smith and Jones as assistants
