"""AdmissionController: bounded slots, queue-with-timeout rejection,
slot release on every exit path, and the counters EXPLAIN/ops read."""

import threading

import pytest

from repro.errors import AdmissionRejectedError, GovernanceError
from repro.governance import AdmissionController
from repro.obs.metrics import (
    MetricsRegistry,
    install_registry,
    uninstall_registry,
)


class TestSlots:
    def test_grants_up_to_max_concurrent(self):
        controller = AdmissionController(max_concurrent=2)
        with controller.admit():
            with controller.admit():
                assert controller.stats().in_flight == 2
        assert controller.stats().in_flight == 0

    def test_fail_fast_when_full(self):
        controller = AdmissionController(max_concurrent=1)
        with controller.admit():
            with pytest.raises(AdmissionRejectedError):
                with controller.admit():
                    pass  # pragma: no cover - never admitted

    def test_rejection_is_a_governance_error(self):
        with pytest.raises(GovernanceError):
            AdmissionController(max_concurrent=0)

    def test_slot_released_on_error(self):
        controller = AdmissionController(max_concurrent=1)
        with pytest.raises(RuntimeError):
            with controller.admit():
                raise RuntimeError("query blew up")
        with controller.admit():  # slot must be free again
            assert controller.stats().in_flight == 1

    def test_queue_timeout_waits_then_rejects(self):
        controller = AdmissionController(
            max_concurrent=1, queue_timeout=0.05
        )
        with controller.admit():
            with pytest.raises(AdmissionRejectedError) as info:
                with controller.admit():
                    pass  # pragma: no cover - never admitted
        assert info.value.waited >= 0.05

    def test_queued_query_admitted_when_slot_frees(self):
        controller = AdmissionController(
            max_concurrent=1, queue_timeout=5.0
        )
        holding = threading.Event()
        release = threading.Event()
        outcomes = []

        def holder():
            with controller.admit():
                holding.set()
                release.wait(timeout=5.0)

        def waiter():
            holding.wait(timeout=5.0)
            with controller.admit():
                outcomes.append("admitted")

        threads = [
            threading.Thread(target=holder),
            threading.Thread(target=waiter),
        ]
        for thread in threads:
            thread.start()
        holding.wait(timeout=5.0)
        release.set()
        for thread in threads:
            thread.join(timeout=10.0)
        assert outcomes == ["admitted"]
        stats = controller.stats()
        assert stats.admitted == 2 and stats.rejected == 0


class TestStats:
    def test_counters_accumulate(self):
        controller = AdmissionController(max_concurrent=1)
        with controller.admit():
            with pytest.raises(AdmissionRejectedError):
                with controller.admit():
                    pass  # pragma: no cover
        stats = controller.stats()
        assert stats.admitted == 1
        assert stats.rejected == 1
        assert stats.in_flight == 0
        assert stats.as_dict()["max_concurrent"] == 1

    def test_registry_counters_emitted(self):
        install_registry(MetricsRegistry())
        try:
            controller = AdmissionController(max_concurrent=1)
            with controller.admit():
                with pytest.raises(AdmissionRejectedError):
                    with controller.admit():
                        pass  # pragma: no cover
            from repro.obs.metrics import active_registry

            dump = active_registry().to_prometheus()
        finally:
            uninstall_registry()
        assert "repro_governance_admitted_total" in dump
        assert "repro_governance_admission_rejected_total" in dump
        assert "repro_governance_queries_in_flight" in dump
