"""Governance through the query surface: ``run_query(deadline=...,
budget=..., admission=...)`` — the acceptance path.  A deadline below
the query's runtime must raise :class:`DeadlineExceededError` within
the checkpoint interval; budget breaches must be typed and terminal;
the spend summary must ride back on the result."""

import threading
import time

import pytest

from repro.errors import (
    AdmissionRejectedError,
    BudgetExceededError,
    DeadlineExceededError,
)
from repro.governance import AdmissionController, QueryBudget, active_token
from repro.query import run_query
from repro.workload import PoissonWorkload, fixed_duration

DURING_QUERY = (
    "range of a is X range of b is Y "
    "retrieve (A = a.Seq, B = b.Seq) where a during b"
)

# Detection latency for a blown deadline is bounded by the checkpoint
# interval (one page read / pass boundary / poll tick), none of which
# exceeds a second on these inputs; 2x that is the acceptance bound.
CHECKPOINT_INTERVAL_BOUND = 1.0


def catalog(n=120):
    x = PoissonWorkload(n, 0.4, fixed_duration(4), name="X").generate(5)
    y = PoissonWorkload(n, 0.4, fixed_duration(30), name="Y").generate(6)
    return {"X": x, "Y": y}


class TestDeadline:
    def test_deadline_below_runtime_raises_promptly(self):
        started = time.monotonic()
        with pytest.raises(DeadlineExceededError) as info:
            run_query(DURING_QUERY, catalog(), streams=True, deadline=0.0)
        wall = time.monotonic() - started
        # Raised at the first checkpoint after expiry: both the token's
        # own elapsed clock and the caller's wall clock stay within 2x
        # the checkpoint interval.
        assert info.value.elapsed <= 2 * CHECKPOINT_INTERVAL_BOUND
        assert wall <= 2 * CHECKPOINT_INTERVAL_BOUND

    def test_generous_deadline_is_invisible(self):
        cat = catalog()
        plain = run_query(DURING_QUERY, cat, streams=True)
        governed_run = run_query(
            DURING_QUERY, cat, streams=True, deadline=60.0
        )
        assert governed_run.rows == plain.rows

    def test_token_uninstalled_after_success_and_failure(self):
        run_query(DURING_QUERY, catalog(), streams=True, deadline=60.0)
        assert active_token() is None
        with pytest.raises(DeadlineExceededError):
            run_query(DURING_QUERY, catalog(), streams=True, deadline=0.0)
        assert active_token() is None


class TestBudget:
    def test_workspace_cap_breach_is_typed(self):
        with pytest.raises(BudgetExceededError) as info:
            run_query(
                DURING_QUERY,
                catalog(),
                streams=True,
                budget=QueryBudget(workspace_tuple_cap=1),
            )
        assert info.value.resource == "workspace"
        assert info.value.cap == 1

    def test_unbreached_budget_returns_spend_summary(self):
        result = run_query(
            DURING_QUERY,
            catalog(),
            streams=True,
            budget=QueryBudget(
                deadline_seconds=60.0, workspace_tuple_cap=100_000
            ),
        )
        governance = result.governance
        assert governance is not None
        assert governance["cancelled"] is False
        assert governance["workspace_peak"] >= 1
        assert governance["budget"]["workspace_tuple_cap"] == 100_000
        assert governance["elapsed_seconds"] >= 0

    def test_ungoverned_result_has_no_governance(self):
        result = run_query(DURING_QUERY, catalog(), streams=True)
        assert result.governance is None


class TestAdmission:
    def test_rejected_when_service_is_full(self):
        controller = AdmissionController(max_concurrent=1)
        holding = threading.Event()
        release = threading.Event()

        def holder():
            with controller.admit():
                holding.set()
                release.wait(timeout=10.0)

        thread = threading.Thread(target=holder)
        thread.start()
        try:
            assert holding.wait(timeout=5.0)
            with pytest.raises(AdmissionRejectedError):
                run_query(
                    DURING_QUERY,
                    catalog(),
                    streams=True,
                    admission=controller,
                )
        finally:
            release.set()
            thread.join(timeout=10.0)

    def test_admitted_query_runs_and_releases_its_slot(self):
        controller = AdmissionController(max_concurrent=1)
        cat = catalog()
        plain = run_query(DURING_QUERY, cat, streams=True)
        admitted = run_query(
            DURING_QUERY, cat, streams=True, admission=controller
        )
        assert admitted.rows == plain.rows
        stats = controller.stats()
        assert stats.admitted == 1 and stats.in_flight == 0

    def test_admission_composes_with_budget(self):
        controller = AdmissionController(max_concurrent=2)
        result = run_query(
            DURING_QUERY,
            catalog(),
            streams=True,
            admission=controller,
            deadline=60.0,
        )
        assert result.governance is not None
        assert controller.stats().in_flight == 0
