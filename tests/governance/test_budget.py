"""Unit behaviour of QueryBudget, CancellationToken, and the
thread-local ``governed`` installation: deadlines fire at checkpoints,
caps are terminal, tokens nest, and governance errors are excluded from
every retry path."""

import threading

import pytest

from repro.errors import (
    BudgetExceededError,
    DeadlineExceededError,
    GovernanceError,
    QueryCancelledError,
)
from repro.governance import (
    CancellationToken,
    QueryBudget,
    active_token,
    governed,
    install_token,
)
from repro.resilience.retry import RETRYABLE


class FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestQueryBudget:
    def test_default_is_unbounded(self):
        budget = QueryBudget()
        assert not budget.is_bounded()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"deadline_seconds": 5.0},
            {"workspace_tuple_cap": 10},
            {"page_read_cap": 100},
            {"shm_byte_cap": 1 << 20},
        ],
    )
    def test_any_cap_makes_it_bounded(self, kwargs):
        assert QueryBudget(**kwargs).is_bounded()

    def test_with_deadline_keeps_the_tighter_one(self):
        loose = QueryBudget(deadline_seconds=10.0)
        assert loose.with_deadline(2.0).deadline_seconds == 2.0
        tight = QueryBudget(deadline_seconds=1.0)
        assert tight.with_deadline(5.0) is tight

    def test_with_deadline_preserves_other_caps(self):
        budget = QueryBudget(workspace_tuple_cap=7)
        merged = budget.with_deadline(3.0)
        assert merged.deadline_seconds == 3.0
        assert merged.workspace_tuple_cap == 7


class TestCancellationToken:
    def test_deadline_raises_at_next_checkpoint(self):
        clock = FakeClock()
        token = CancellationToken(
            QueryBudget(deadline_seconds=1.0), clock=clock
        )
        token.check()  # within budget
        clock.advance(1.5)
        with pytest.raises(DeadlineExceededError) as info:
            token.check()
        assert info.value.elapsed == pytest.approx(1.5)

    def test_remaining_goes_negative_past_the_deadline(self):
        clock = FakeClock()
        token = CancellationToken(
            QueryBudget(deadline_seconds=1.0), clock=clock
        )
        assert token.remaining() == pytest.approx(1.0)
        clock.advance(2.0)
        assert token.remaining() == pytest.approx(-1.0)
        assert CancellationToken(QueryBudget()).remaining() is None

    def test_cancel_observed_at_checkpoint_from_any_thread(self):
        token = CancellationToken()
        thread = threading.Thread(
            target=token.cancel, args=("client disconnect",)
        )
        thread.start()
        thread.join()
        with pytest.raises(QueryCancelledError) as info:
            token.check()
        assert info.value.reason == "client disconnect"

    def test_page_cap_is_terminal(self):
        token = CancellationToken(QueryBudget(page_read_cap=2))
        token.charge_pages()
        token.charge_pages()
        with pytest.raises(BudgetExceededError) as info:
            token.charge_pages()
        assert info.value.resource == "pages"
        assert info.value.spent == 3 and info.value.cap == 2

    def test_workspace_cap_tracks_peak_not_total(self):
        token = CancellationToken(QueryBudget(workspace_tuple_cap=5))
        token.charge_workspace(3)
        token.charge_workspace(2)  # shrank — concurrent size, not sum
        assert token.workspace_peak == 3
        with pytest.raises(BudgetExceededError) as info:
            token.charge_workspace(6)
        assert info.value.resource == "workspace"

    def test_shm_cap_accumulates(self):
        token = CancellationToken(QueryBudget(shm_byte_cap=100))
        token.charge_shm(60)
        with pytest.raises(BudgetExceededError) as info:
            token.charge_shm(60)
        assert info.value.resource == "shm_bytes"
        assert info.value.spent == 120

    def test_as_dict_reports_spend(self):
        token = CancellationToken(QueryBudget(deadline_seconds=9.0))
        token.charge_pages(4)
        token.charge_workspace(2)
        summary = token.as_dict()
        assert summary["pages_read"] == 4
        assert summary["workspace_peak"] == 2
        assert summary["budget"]["deadline_seconds"] == 9.0
        assert summary["cancelled"] is False


class TestGoverned:
    def test_no_token_by_default(self):
        assert active_token() is None

    def test_governed_installs_and_restores(self):
        with governed(deadline=5.0) as token:
            assert active_token() is token
            assert token.budget.deadline_seconds == 5.0
        assert active_token() is None

    def test_governed_blocks_nest(self):
        with governed(deadline=10.0) as outer:
            with governed(deadline=1.0) as inner:
                assert active_token() is inner
            assert active_token() is outer
        assert active_token() is None

    def test_governed_restores_on_error(self):
        with pytest.raises(RuntimeError):
            with governed(deadline=5.0):
                raise RuntimeError("boom")
        assert active_token() is None

    def test_existing_token_passes_through(self):
        token = CancellationToken()
        with governed(token=token) as active:
            assert active is token

    def test_install_token_returns_previous(self):
        first = CancellationToken()
        assert install_token(first) is None
        assert install_token(None) is first
        assert active_token() is None

    def test_tokens_are_thread_local(self):
        seen = []
        with governed(deadline=5.0):
            thread = threading.Thread(
                target=lambda: seen.append(active_token())
            )
            thread.start()
            thread.join()
        assert seen == [None]


class TestRetryExclusion:
    def test_governance_errors_are_never_retryable(self):
        """The retry allowlist must exclude the whole governance
        hierarchy — retrying a blown budget only spends more of it."""
        for retryable in RETRYABLE:
            assert not issubclass(retryable, GovernanceError)
        for error in (
            DeadlineExceededError("d"),
            QueryCancelledError("c"),
            BudgetExceededError("b"),
        ):
            assert not isinstance(error, RETRYABLE)
