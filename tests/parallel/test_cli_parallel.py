"""CLI surface: ``explain-analyze --parallelism K`` renders the
per-shard breakdown and the extended single-scan gate covers shards."""

import json

from repro.cli import main


class TestExplainAnalyzeParallelism:
    def test_parallelism_renders_shard_table(self, capsys):
        code = main(
            [
                "explain-analyze",
                "--parallelism",
                "2",
                "--faculty",
                "3000",
            ]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "== parallel shards ==" in captured.out
        assert "parallel:" in captured.out
        # at least the header plus one shard row
        lines = [
            line
            for line in captured.out.splitlines()
            if line.strip() and line.lstrip()[0].isdigit()
        ]
        assert lines, captured.out

    def test_single_scan_gate_covers_shards(self, capsys):
        code = main(
            [
                "explain-analyze",
                "--parallelism",
                "2",
                "--faculty",
                "3000",
                "--check-single-scan",
            ]
        )
        captured = capsys.readouterr()
        assert code == 0, captured.err
        assert "single-scan check passed" in captured.err

    def test_small_input_still_works_serially(self, capsys):
        """The cost model may pick serial below the parallel break-even;
        the flag must not force a degenerate sharding."""
        code = main(
            ["explain-analyze", "--parallelism", "4", "--faculty", "50"]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "plan:" in captured.out

    def test_artifacts_include_shard_spans(self, tmp_path, capsys):
        jsonl = tmp_path / "spans.jsonl"
        prom = tmp_path / "metrics.prom"
        code = main(
            [
                "explain-analyze",
                "--parallelism",
                "2",
                "--faculty",
                "3000",
                "--jsonl",
                str(jsonl),
                "--prometheus",
                str(prom),
            ]
        )
        capsys.readouterr()
        assert code == 0
        names = [
            json.loads(line)["name"]
            for line in jsonl.read_text().splitlines()
            if '"kind": "span"' in line
        ]
        assert any(name.startswith("shard:") for name in names)
        assert any(name.startswith("parallel:") for name in names)
        assert "repro_parallel_runs_total" in prom.read_text()
