"""Shared-memory runtime lifecycle: segments must never outlive the
query (success, STRICT re-raise, or worker crash), the warm pool must
persist across queries and survive concurrent dispatch, and pool
degradation must be visible (counter + span), never silent."""

import os
import threading

import pytest

from repro.errors import StorageFaultError
from repro.model import TS_ASC, sort_tuples
from repro.obs.metrics import (
    MetricsRegistry,
    active_registry,
    install_registry,
    uninstall_registry,
)
from repro.obs.trace import Tracer, set_tracer
from repro.parallel import (
    LazyResults,
    execute_parallel,
    pool_stats,
    shutdown_pool,
)
from repro.parallel import executor as executor_mod
from repro.resilience import FaultPlan, RecoveryPolicy, RetryPolicy
from repro.streams import TemporalOperator, lookup

from .conftest import canon, make_tuples, serial_run


def contain_entry():
    return lookup(TemporalOperator.CONTAIN_JOIN, TS_ASC, TS_ASC)


def inputs(seed_x=31, seed_y=32, n=80):
    xs = sort_tuples(make_tuples("x", n, seed=seed_x), TS_ASC)
    ys = sort_tuples(make_tuples("y", n, seed=seed_y), TS_ASC)
    return xs, ys


def shm_entries():
    """Names of our segments currently visible in /dev/shm (empty set
    on platforms without the tmpfs mount, making leak checks vacuous
    rather than wrong)."""
    try:
        names = os.listdir("/dev/shm")
    except FileNotFoundError:
        return set()
    return {name for name in names if name.startswith("repro-")}


class TestSegmentLifecycle:
    def test_success_unlinks_every_segment(self):
        entry = contain_entry()
        xs, ys = inputs()
        before = shm_entries()
        outcome = execute_parallel(
            entry, xs, ys, shards=3, workers=2, mode="process"
        )
        assert outcome.mode == "process"
        assert canon(outcome.results) == canon(
            serial_run(entry, xs, ys, "tuple")
        )
        assert shm_entries() == before

    def test_strict_reraise_sweeps_segments(self):
        """A STRICT failure inside a worker must surface the original
        exception type AND leave /dev/shm clean — the parent sweeps the
        names it handed out on the error path too."""
        entry = contain_entry()
        xs, ys = inputs()
        plan = FaultPlan(
            seed=0,
            rate=0.0,
            persistent=frozenset({("contain-join[tuple].X", 0)}),
        )
        before = shm_entries()
        with pytest.raises(StorageFaultError):
            execute_parallel(
                entry,
                xs,
                ys,
                shards=2,
                workers=2,
                policy=RecoveryPolicy.STRICT,
                fault_plan=plan,
                retry_policy=RetryPolicy(seed=0, max_attempts=3),
                page_capacity=8,
                mode="process",
            )
        assert shm_entries() == before

    def test_worker_crash_degrades_visibly_and_sweeps(self, monkeypatch):
        """Kill one worker before it writes its result: the run must
        fall back inline with correct output, bump the fallback counter
        with the exception class, mark the span, and leave no segments
        behind (the crashed shard's result segment never existed; the
        sweep tolerates that)."""
        entry = contain_entry()
        xs, ys = inputs()
        expected = canon(serial_run(entry, xs, ys, "tuple"))
        original = executor_mod._shm_tasks

        def sabotaged(*args, **kwargs):
            tasks = original(*args, **kwargs)
            tasks[0]["fault_exit"] = True
            return tasks

        monkeypatch.setattr(executor_mod, "_shm_tasks", sabotaged)
        before = shm_entries()
        tracer = Tracer("crash")
        previous = set_tracer(tracer)
        install_registry(MetricsRegistry())
        try:
            outcome = execute_parallel(
                entry, xs, ys, shards=2, workers=2, mode="process"
            )
            dump = active_registry().to_prometheus()
        finally:
            uninstall_registry()
            set_tracer(previous)
            shutdown_pool()
        assert outcome.mode == "inline"
        assert canon(outcome.results) == expected
        assert shm_entries() == before
        assert "repro_parallel_pool_fallbacks_total" in dump
        assert "WorkerPoolError" in dump
        parallel_span = next(
            s for s in tracer.spans if s.name.startswith("parallel:")
        )
        assert parallel_span.attributes["pool_fallback"] is True
        assert (
            parallel_span.attributes["fallback_error"]
            == "WorkerPoolError"
        )

    def test_pool_recovers_after_crash(self, monkeypatch):
        """The poisoned pool must be rebuilt transparently: the very
        next process-mode query succeeds through fresh workers."""
        entry = contain_entry()
        xs, ys = inputs()
        original = executor_mod._shm_tasks
        calls = {"n": 0}

        def sabotage_first(*args, **kwargs):
            tasks = original(*args, **kwargs)
            calls["n"] += 1
            if calls["n"] == 1:
                tasks[0]["fault_exit"] = True
            return tasks

        monkeypatch.setattr(executor_mod, "_shm_tasks", sabotage_first)
        crashed = execute_parallel(
            entry, xs, ys, shards=2, workers=2, mode="process"
        )
        assert crashed.mode == "inline"
        healed = execute_parallel(
            entry, xs, ys, shards=2, workers=2, mode="process"
        )
        assert healed.mode == "process"
        assert canon(healed.results) == canon(
            serial_run(entry, xs, ys, "tuple")
        )


class TestWarmPool:
    def test_pool_persists_across_queries(self):
        entry = contain_entry()
        xs, ys = inputs()
        shutdown_pool()
        execute_parallel(entry, xs, ys, shards=2, workers=2, mode="process")
        first = pool_stats()
        execute_parallel(entry, xs, ys, shards=2, workers=2, mode="process")
        second = pool_stats()
        assert first["alive"] and second["alive"]
        assert first["pids"] == second["pids"]

    def test_concurrent_queries_from_two_threads(self):
        """Two threads sharing the warm pool must both get exactly
        their own results — the regression the old fork-pool global
        task handoff (_FORK_TASKS) could not guarantee."""
        entry = contain_entry()
        runs = [inputs(seed_x=71, seed_y=72), inputs(seed_x=73, seed_y=74)]
        expected = [
            canon(serial_run(entry, xs, ys, "tuple")) for xs, ys in runs
        ]
        failures = []

        def query(slot):
            xs, ys = runs[slot]
            try:
                outcome = execute_parallel(
                    entry, xs, ys, shards=2, workers=2, mode="process"
                )
                if canon(outcome.results) != expected[slot]:
                    failures.append(f"slot {slot}: wrong results")
            except Exception as exc:  # pragma: no cover - surfaced below
                failures.append(f"slot {slot}: {exc!r}")

        threads = [
            threading.Thread(target=query, args=(slot,)) for slot in (0, 1)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert not failures, failures


class TestLazyResults:
    def test_len_is_free_and_payloads_cache(self):
        entry = contain_entry()
        xs, ys = inputs()
        expected = canon(serial_run(entry, xs, ys, "columnar"))
        outcome = execute_parallel(
            entry,
            xs,
            ys,
            shards=2,
            workers=2,
            backend="columnar",
            mode="process",
        )
        assert outcome.mode == "process"
        results = outcome.results
        assert isinstance(results, LazyResults)
        count = len(results)
        assert results._cache is None  # len() alone must not materialise
        assert canon(results) == expected
        assert results._cache is not None
        assert len(results) == count == len(expected)
        left, right = results[0]
        assert left in xs and right in ys
