"""Shared-memory runtime lifecycle: segments must never outlive the
query (success, STRICT re-raise, or worker crash), the warm pool must
persist across queries and survive concurrent dispatch, and pool
degradation must be visible (counter + span), never silent."""

import os
import threading
import time

import pytest

from repro.errors import StorageFaultError
from repro.model import TS_ASC, sort_tuples
from repro.obs.metrics import (
    MetricsRegistry,
    active_registry,
    install_registry,
    uninstall_registry,
)
from repro.obs.trace import Tracer, set_tracer
from repro.parallel import (
    LazyResults,
    WorkerPool,
    WorkerPoolError,
    execute_parallel,
    pool_stats,
    shutdown_pool,
)
from repro.parallel import executor as executor_mod
from repro.parallel import pool as pool_mod
from repro.resilience import (
    FaultPlan,
    RecoveryPolicy,
    RetryPolicy,
    WorkerFaultKind,
    WorkerFaultPlan,
)
from repro.streams import TemporalOperator, lookup

from .conftest import canon, make_tuples, serial_run


def contain_entry():
    return lookup(TemporalOperator.CONTAIN_JOIN, TS_ASC, TS_ASC)


def inputs(seed_x=31, seed_y=32, n=80):
    xs = sort_tuples(make_tuples("x", n, seed=seed_x), TS_ASC)
    ys = sort_tuples(make_tuples("y", n, seed=seed_y), TS_ASC)
    return xs, ys


def shm_entries():
    """Names of our segments currently visible in /dev/shm (empty set
    on platforms without the tmpfs mount, making leak checks vacuous
    rather than wrong)."""
    try:
        names = os.listdir("/dev/shm")
    except FileNotFoundError:
        return set()
    return {name for name in names if name.startswith("repro-")}


class TestSegmentLifecycle:
    def test_success_unlinks_every_segment(self):
        entry = contain_entry()
        xs, ys = inputs()
        before = shm_entries()
        outcome = execute_parallel(
            entry, xs, ys, shards=3, workers=2, mode="process"
        )
        assert outcome.mode == "process"
        assert canon(outcome.results) == canon(
            serial_run(entry, xs, ys, "tuple")
        )
        assert shm_entries() == before

    def test_strict_reraise_sweeps_segments(self):
        """A STRICT failure inside a worker must surface the original
        exception type AND leave /dev/shm clean — the parent sweeps the
        names it handed out on the error path too."""
        entry = contain_entry()
        xs, ys = inputs()
        plan = FaultPlan(
            seed=0,
            rate=0.0,
            persistent=frozenset({("contain-join[tuple].X", 0)}),
        )
        before = shm_entries()
        with pytest.raises(StorageFaultError):
            execute_parallel(
                entry,
                xs,
                ys,
                shards=2,
                workers=2,
                policy=RecoveryPolicy.STRICT,
                fault_plan=plan,
                retry_policy=RetryPolicy(seed=0, max_attempts=3),
                page_capacity=8,
                mode="process",
            )
        assert shm_entries() == before

    def test_worker_crash_degrades_visibly_and_sweeps(self, monkeypatch):
        """Kill one worker before it writes its result: the run must
        fall back inline with correct output, bump the fallback counter
        with the exception class, mark the span, and leave no segments
        behind (the crashed shard's result segment never existed; the
        sweep tolerates that)."""
        entry = contain_entry()
        xs, ys = inputs()
        expected = canon(serial_run(entry, xs, ys, "tuple"))
        original = executor_mod._shm_tasks

        def sabotaged(*args, **kwargs):
            tasks = original(*args, **kwargs)
            tasks[0]["fault_exit"] = True
            return tasks

        monkeypatch.setattr(executor_mod, "_shm_tasks", sabotaged)
        before = shm_entries()
        tracer = Tracer("crash")
        previous = set_tracer(tracer)
        install_registry(MetricsRegistry())
        try:
            outcome = execute_parallel(
                entry, xs, ys, shards=2, workers=2, mode="process"
            )
            dump = active_registry().to_prometheus()
        finally:
            uninstall_registry()
            set_tracer(previous)
            shutdown_pool()
        assert outcome.mode == "inline"
        assert canon(outcome.results) == expected
        assert shm_entries() == before
        assert "repro_parallel_pool_fallbacks_total" in dump
        assert "WorkerPoolError" in dump
        parallel_span = next(
            s for s in tracer.spans if s.name.startswith("parallel:")
        )
        assert parallel_span.attributes["pool_fallback"] is True
        assert (
            parallel_span.attributes["fallback_error"]
            == "WorkerPoolError"
        )

    def test_pool_recovers_after_crash(self, monkeypatch):
        """The poisoned pool must be rebuilt transparently: the very
        next process-mode query succeeds through fresh workers."""
        entry = contain_entry()
        xs, ys = inputs()
        original = executor_mod._shm_tasks
        calls = {"n": 0}

        def sabotage_first(*args, **kwargs):
            tasks = original(*args, **kwargs)
            calls["n"] += 1
            if calls["n"] == 1:
                tasks[0]["fault_exit"] = True
            return tasks

        monkeypatch.setattr(executor_mod, "_shm_tasks", sabotage_first)
        crashed = execute_parallel(
            entry, xs, ys, shards=2, workers=2, mode="process"
        )
        assert crashed.mode == "inline"
        healed = execute_parallel(
            entry, xs, ys, shards=2, workers=2, mode="process"
        )
        assert healed.mode == "process"
        assert canon(healed.results) == canon(
            serial_run(entry, xs, ys, "tuple")
        )


class TestWarmPool:
    def test_pool_persists_across_queries(self):
        entry = contain_entry()
        xs, ys = inputs()
        shutdown_pool()
        execute_parallel(entry, xs, ys, shards=2, workers=2, mode="process")
        first = pool_stats()
        execute_parallel(entry, xs, ys, shards=2, workers=2, mode="process")
        second = pool_stats()
        assert first["alive"] and second["alive"]
        assert first["pids"] == second["pids"]

    def test_concurrent_queries_from_two_threads(self):
        """Two threads sharing the warm pool must both get exactly
        their own results — the regression the old fork-pool global
        task handoff (_FORK_TASKS) could not guarantee."""
        entry = contain_entry()
        runs = [inputs(seed_x=71, seed_y=72), inputs(seed_x=73, seed_y=74)]
        expected = [
            canon(serial_run(entry, xs, ys, "tuple")) for xs, ys in runs
        ]
        failures = []

        def query(slot):
            xs, ys = runs[slot]
            try:
                outcome = execute_parallel(
                    entry, xs, ys, shards=2, workers=2, mode="process"
                )
                if canon(outcome.results) != expected[slot]:
                    failures.append(f"slot {slot}: wrong results")
            except Exception as exc:  # pragma: no cover - surfaced below
                failures.append(f"slot {slot}: {exc!r}")

        threads = [
            threading.Thread(target=query, args=(slot,)) for slot in (0, 1)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert not failures, failures


class TestFaultContainment:
    """Worker-level faults must be contained at shard granularity: one
    dead worker costs one shard re-dispatch, never a pool rebuild or an
    inline fallback."""

    def run_with_fault(self, plan, straggler_after=None, shards=3):
        entry = contain_entry()
        xs, ys = inputs()
        expected = canon(serial_run(entry, xs, ys, "tuple"))
        install_registry(MetricsRegistry())
        try:
            outcome = execute_parallel(
                entry,
                xs,
                ys,
                shards=shards,
                workers=2,
                mode="process",
                worker_fault_plan=plan,
                straggler_after=straggler_after,
            )
            dump = active_registry().to_prometheus()
        finally:
            uninstall_registry()
        assert outcome.mode == "process"
        assert canon(outcome.results) == expected
        return outcome, dump

    def test_kill_heals_with_one_retry_and_no_rebuild(self):
        outcome, dump = self.run_with_fault(
            WorkerFaultPlan(seed=3, kind=WorkerFaultKind.KILL)
        )
        containment = outcome.containment
        assert containment["worker_deaths"] == 1
        assert containment["shard_retries"] == 1
        assert "repro_parallel_worker_deaths_total" in dump
        # Contained crash: the pool stays healthy (topped up, not
        # rebuilt) and the next query runs through it.
        assert "repro_parallel_pool_rebuilds_total" not in dump
        assert pool_stats()["alive"]

    def test_stall_triggers_speculation_not_death_handling(self):
        plan = WorkerFaultPlan(
            seed=11, kind=WorkerFaultKind.STALL, stall_seconds=1.0
        )
        # A replacement worker from an earlier test may still be
        # importing (one warm worker can absorb a whole clean batch
        # meanwhile), and a still-importing worker makes its shard look
        # silent past the threshold.  Warm the pool and give the
        # replacement time to finish importing before the faulted run.
        entry = contain_entry()
        xs, ys = inputs()
        execute_parallel(entry, xs, ys, shards=2, workers=2, mode="process")
        time.sleep(1.0)
        # One shard per worker: a queued-but-healthy shard would also
        # look silent past the threshold and be speculated.
        outcome, dump = self.run_with_fault(plan, straggler_after=0.2, shards=2)
        containment = outcome.containment
        assert containment["worker_deaths"] == 0
        assert containment["speculations"] == 1
        assert 'reason="straggler"' in dump
        # Quiesce: the abandoned loser still holds its worker for the
        # stall; don't let the next test's batch queue behind it.
        time.sleep(plan.stall_seconds)

    def test_corrupt_result_is_reread_from_a_fresh_segment(self):
        outcome, dump = self.run_with_fault(
            WorkerFaultPlan(seed=42, kind=WorkerFaultKind.CORRUPT_RESULT)
        )
        containment = outcome.containment
        assert containment["worker_deaths"] == 0
        assert containment["shard_retries"] == 1
        assert 'reason="corrupt-result"' in dump

    def test_fault_gated_on_attempt_heals_deterministically(self):
        """attempts=1 means the re-dispatched attempt runs clean — the
        property that makes the differential oracle hold."""
        entry = contain_entry()
        xs, ys = inputs()
        expected = canon(serial_run(entry, xs, ys, "tuple"))
        plan = WorkerFaultPlan(seed=7, kind=WorkerFaultKind.KILL)
        for _ in range(2):  # replays identically, heals identically
            outcome = execute_parallel(
                entry,
                xs,
                ys,
                shards=3,
                workers=2,
                mode="process",
                worker_fault_plan=plan,
            )
            assert outcome.mode == "process"
            assert canon(outcome.results) == expected
            assert outcome.containment["shard_retries"] == 1


class TestPoolLifecycle:
    def test_worker_pool_double_shutdown_is_idempotent(self):
        pool = WorkerPool(2)
        assert pool.healthy
        pool.shutdown()
        assert not pool.healthy
        pool.shutdown()  # second call must be a no-op, not an error

    def test_shutdown_pool_twice_and_after_manual_teardown(self):
        """The atexit hook may fire after a test (or the CLI) already
        shut the shared pool down manually; both orders must be safe."""
        entry = contain_entry()
        xs, ys = inputs()
        execute_parallel(entry, xs, ys, shards=2, workers=2, mode="process")
        assert pool_stats()["alive"]
        shutdown_pool()
        assert pool_stats() == {"alive": False, "size": 0, "pids": []}
        shutdown_pool()  # idempotent
        assert pool_stats() == {"alive": False, "size": 0, "pids": []}

    def test_get_pool_rebuilds_poisoned_pool_under_old_reference(self):
        """Code holding a reference to the poisoned pool must not
        resurrect it: get_pool hands out a fresh pool, the old object
        stays dead, and a batch on the stale reference fails fast."""
        old = pool_mod.get_pool(2)
        old._broken = True  # what quorum loss / a hung batch does
        install_registry(MetricsRegistry())
        try:
            fresh = pool_mod.get_pool(2)
            dump = active_registry().to_prometheus()
        finally:
            uninstall_registry()
        assert fresh is not old
        assert fresh.healthy and not old.healthy
        assert "repro_parallel_pool_rebuilds_total" in dump
        with pytest.raises(WorkerPoolError):
            old.run_batch([{"index": 0}])
        # The fresh pool serves queries normally.
        entry = contain_entry()
        xs, ys = inputs()
        outcome = execute_parallel(
            entry, xs, ys, shards=2, workers=2, mode="process"
        )
        assert outcome.mode == "process"


class TestLazyResults:
    def test_len_is_free_and_payloads_cache(self):
        entry = contain_entry()
        xs, ys = inputs()
        expected = canon(serial_run(entry, xs, ys, "columnar"))
        outcome = execute_parallel(
            entry,
            xs,
            ys,
            shards=2,
            workers=2,
            backend="columnar",
            mode="process",
        )
        assert outcome.mode == "process"
        results = outcome.results
        assert isinstance(results, LazyResults)
        count = len(results)
        assert results._cache is None  # len() alone must not materialise
        assert canon(results) == expected
        assert results._cache is not None
        assert len(results) == count == len(expected)
        left, right = results[0]
        assert left in xs and right in ys
