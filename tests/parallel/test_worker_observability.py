"""Distributed observability of the process-mode runtime.

Three properties, per the paper's "observability must be free of
observable effect" discipline extended across the process boundary:

* the traced-vs-untraced differential holds for process-mode parallel
  execution on every supported registry cell — worker-side tracing
  never changes the answer;
* untraced runs allocate ZERO real spans in the workers (the no-op
  tracer survives the pickle hop), while traced runs ship their span
  forest back and the parent grafts it under the matching ``shard:<i>``
  span with monotone, clock-calibrated, window-clamped timestamps and
  distinct worker pids;
* the audit record written for a traced parallel query agrees with the
  EXPLAIN ANALYZE shard table, attempt for attempt.
"""

import json

import pytest

from repro.model import TS_ASC, sort_tuples
from repro.obs import (
    MetricsRegistry,
    Tracer,
    install_registry,
    set_tracer,
    to_chrome_trace,
    uninstall_registry,
)
from repro.obs.explain import shard_summaries
from repro.parallel import execute_parallel
from repro.resilience import (
    RetryPolicy,
    WorkerFaultKind,
    WorkerFaultPlan,
)
from repro.streams import TemporalOperator, lookup

from .conftest import (
    all_supported_cells,
    canon,
    cell_id,
    make_tuples,
    sorted_inputs,
)


def small_xy():
    return make_tuples("x", 60, seed=5), make_tuples("y", 70, seed=6)


def run_process(entry, xs, ys, traced, shards=2, workers=2, **kwargs):
    """One process-mode run; returns (outcome, tracer-or-None)."""
    if not traced:
        outcome = execute_parallel(
            entry, xs, ys, shards=shards, workers=workers,
            mode="process", **kwargs
        )
        return outcome, None
    tracer = Tracer("diff")
    previous = set_tracer(tracer)
    install_registry(MetricsRegistry())
    try:
        outcome = execute_parallel(
            entry, xs, ys, shards=shards, workers=workers,
            mode="process", **kwargs
        )
    finally:
        uninstall_registry()
        set_tracer(previous)
    assert tracer.open_spans == 0
    return outcome, tracer


@pytest.mark.parametrize(
    "entry", all_supported_cells(), ids=cell_id
)
def test_traced_process_run_is_byte_identical(entry):
    x, y = small_xy()
    xs, ys = sorted_inputs(entry, x, y)
    plain, _ = run_process(entry, xs, ys, traced=False)
    traced, tracer = run_process(entry, xs, ys, traced=True)
    assert canon(traced.results) == canon(plain.results)
    assert traced.metrics.passes_x == plain.metrics.passes_x
    assert traced.metrics.passes_y == plain.metrics.passes_y
    assert traced.metrics.comparisons == plain.metrics.comparisons
    assert (
        traced.metrics.workspace_high_water
        == plain.metrics.workspace_high_water
    )
    if plain.mode == "process":
        # The untraced half is the zero-overhead gate: the no-op tracer
        # crossed the pipe and no real Span was ever allocated.
        assert all(
            run.worker_spans_created == 0 for run in plain.shard_runs
        )
    if traced.mode == "process":
        assert all(
            run.worker_spans_created > 0 for run in traced.shard_runs
        )


def contain_entry():
    return lookup(TemporalOperator.CONTAIN_JOIN, TS_ASC, TS_ASC)


def traced_contain_run(shards=4, workers=4, **kwargs):
    entry = contain_entry()
    x, y = small_xy()
    xs, ys = sorted_inputs(entry, x, y)
    outcome, tracer = run_process(
        entry, xs, ys, traced=True, shards=shards, workers=workers,
        **kwargs
    )
    return outcome, tracer


class TestGraftStructure:
    def test_worker_spans_nest_under_shard_spans(self):
        outcome, tracer = traced_contain_run()
        if outcome.mode != "process":
            pytest.skip("pool unavailable; fell back to inline")
        shard_spans = {
            int(s.name.split(":", 1)[1]): s
            for s in tracer.spans
            if s.name.startswith("shard:")
        }
        worker_roots = [
            s for s in tracer.spans if s.name.startswith("worker:shard:")
        ]
        assert len(worker_roots) == len(outcome.shard_runs)
        by_id = {s.span_id: s for s in tracer.spans}
        for root in worker_roots:
            parent = by_id[root.parent_id]
            assert parent.name == f"shard:{root.attributes['shard']}"
            # Monotone, clamped into the parent summary span's window.
            assert parent.start_ns <= root.start_ns
            assert root.end_ns <= parent.end_ns
            assert root.end_ns >= root.start_ns
            assert root.pid is not None
            assert root.attributes["worker_pid"] == root.pid
        # Grafted operator spans came along under the worker roots.
        grafted_ops = [
            s
            for s in tracer.spans
            if s.name.startswith("operator:") and s.pid is not None
        ]
        assert len(grafted_ops) == len(outcome.shard_runs)
        assert len(shard_spans) == len(outcome.shard_runs)

    def test_worker_pids_agree_between_spans_and_shard_table(self):
        outcome, tracer = traced_contain_run(shards=4, workers=4)
        if outcome.mode != "process":
            pytest.skip("pool unavailable; fell back to inline")
        pids = {s.pid for s in tracer.spans if s.pid is not None}
        assert pids
        assert {r.pid for r in outcome.shard_runs} == pids
        # On tiny shards one warm worker can legally drain the whole
        # queue before its siblings wake, so >=2 distinct pids is only
        # guaranteed at real sizes — bench_trace_artifacts and the CI
        # multi-track gate enforce it there.

    def test_chrome_trace_has_one_track_per_worker(self):
        outcome, tracer = traced_contain_run(shards=4, workers=4)
        if outcome.mode != "process":
            pytest.skip("pool unavailable; fell back to inline")
        doc = json.loads(json.dumps(to_chrome_trace(tracer)))
        events = doc["traceEvents"]
        worker_pids = {r.pid for r in outcome.shard_runs}
        named = {
            e["pid"]: e["args"]["name"]
            for e in events
            if e["ph"] == "M" and e["name"] == "process_name"
        }
        for pid in worker_pids:
            assert named[pid] == f"worker:{pid}"
        # Parent track sorts first.
        own = next(p for p in named if p not in worker_pids)
        sort_index = {
            e["pid"]: e["args"]["sort_index"]
            for e in events
            if e["ph"] == "M" and e["name"] == "process_sort_index"
        }
        assert sort_index[own] < min(sort_index[p] for p in worker_pids)

    def test_clock_offsets_and_shard_attrs(self):
        outcome, tracer = traced_contain_run()
        if outcome.mode != "process":
            pytest.skip("pool unavailable; fell back to inline")
        summaries = shard_summaries(tracer)
        assert len(summaries) == len(outcome.shard_runs)
        for summary, run in zip(summaries, outcome.shard_runs):
            assert summary["shard"] == run.index
            assert summary["attempt"] == run.attempt
            assert summary["output_count"] == run.output_count


class TestWorkerMetricsMerge:
    def test_worker_counters_carry_worker_and_shard_labels(self):
        entry = contain_entry()
        x, y = small_xy()
        xs, ys = sorted_inputs(entry, x, y)
        registry = MetricsRegistry()
        install_registry(registry)
        try:
            outcome = execute_parallel(
                entry, xs, ys, shards=2, workers=2, mode="process"
            )
        finally:
            uninstall_registry()
        if outcome.mode != "process":
            pytest.skip("pool unavailable; fell back to inline")
        dump = registry.to_prometheus()
        for run in outcome.shard_runs:
            assert f'worker="{run.pid}"' in dump
            assert f'shard="{run.index}"' in dump
        # Pool containment counters recorded the dispatch/ack traffic.
        assert "repro_pool_dispatch_total" in dump
        assert "repro_pool_ack_total" in dump


class TestRedispatchObservability:
    def test_killed_worker_leaves_attempt_one_trail(self):
        """A worker killed on first dispatch is re-dispatched; the audit
        trail — shard attempt, pool counters, grafted span attributes —
        all agree that the surviving result is attempt 1."""
        entry = contain_entry()
        x, y = small_xy()
        xs, ys = sorted_inputs(entry, x, y)
        plan = WorkerFaultPlan(seed=3, kind=WorkerFaultKind.KILL)
        registry = MetricsRegistry()
        tracer = Tracer("chaos")
        previous = set_tracer(tracer)
        install_registry(registry)
        try:
            outcome = execute_parallel(
                entry,
                xs,
                ys,
                shards=2,
                workers=2,
                mode="process",
                worker_fault_plan=plan,
                retry_policy=RetryPolicy(seed=0, max_attempts=3),
            )
        finally:
            uninstall_registry()
            set_tracer(previous)
        if outcome.mode != "process":
            pytest.skip("pool unavailable; fell back to inline")
        target = plan.target_shard(
            f"{entry.operator.value}/tuple", len(outcome.shard_runs)
        )
        victim = next(
            r for r in outcome.shard_runs if r.index == target
        )
        assert victim.attempt >= 1
        assert outcome.containment.get("worker_deaths", 0) >= 1
        dump = registry.to_prometheus()
        assert "repro_pool_redispatch_total" in dump
        assert "repro_pool_reap_total" in dump
        # The grafted span of the surviving run carries the attempt.
        roots = [
            s
            for s in tracer.spans
            if s.name == f"worker:shard:{target}" and s.pid is not None
        ]
        assert roots
        assert any(s.attributes.get("attempt") == victim.attempt
                   for s in roots)
