"""Differential suite: parallel execution must be multiset-identical
to the serial kernel for every registry cell, on both backends, at
every shard count — including under seeded chaos."""

import os

import pytest

from repro.resilience import (
    ExecutionReport,
    FaultPlan,
    RecoveryPolicy,
    RetryPolicy,
)
from repro.resilience.harness import generate_relation
from repro.model import TS_ASC, sort_tuples
from repro.parallel import execute_parallel
from repro.streams import TemporalOperator, lookup

from .conftest import (
    all_supported_cells,
    canon,
    cell_id,
    serial_run,
    sorted_inputs,
)

CELLS = all_supported_cells()

#: Worker/shard count for process-mode checks; the CI parallel job pins
#: this to 2 so the differential runs with a real fork pool.
WORKERS = int(os.environ.get("REPRO_PARALLEL_WORKERS", "2"))


@pytest.mark.parametrize("entry", CELLS, ids=cell_id)
@pytest.mark.parametrize("backend", ["tuple", "columnar"])
@pytest.mark.parametrize("shards", [2, 3])
def test_every_cell_matches_serial(entry, backend, shards, small_inputs):
    x_raw, y_raw = small_inputs
    xs, ys = sorted_inputs(entry, x_raw, y_raw)
    expected = canon(serial_run(entry, xs, ys, backend))
    outcome = execute_parallel(
        entry, xs, ys, shards=shards, backend=backend, mode="inline"
    )
    assert canon(outcome.results) == expected
    assert outcome.plan.effective_shards >= 1
    assert not outcome.degraded


class TestChaosDifferential:
    """A healing transient fault plan must leave the parallel output
    byte-identical to a clean serial run — per shard, the full
    resilience ladder composes exactly as it does serially."""

    pytestmark = pytest.mark.chaos

    @pytest.mark.parametrize("backend", ["tuple", "columnar"])
    def test_faulted_parallel_matches_clean_serial(self, backend):
        entry = lookup(TemporalOperator.CONTAIN_JOIN, TS_ASC, TS_ASC)
        xs = sort_tuples(generate_relation(5, "x", 72), TS_ASC)
        ys = sort_tuples(generate_relation(5, "y", 72), TS_ASC)
        expected = canon(serial_run(entry, xs, ys, backend))
        report = ExecutionReport()
        outcome = execute_parallel(
            entry,
            xs,
            ys,
            shards=3,
            backend=backend,
            policy=RecoveryPolicy.DEGRADE,
            fault_plan=FaultPlan(seed=13, rate=0.2),
            retry_policy=RetryPolicy(seed=13, max_attempts=5),
            report=report,
            page_capacity=8,
            mode="inline",
        )
        assert canon(outcome.results) == expected
        assert report.faults_injected > 0
        assert report.fully_accounted
        assert report.storage_errors == 0

    def test_chaos_parallel_is_deterministic(self):
        entry = lookup(TemporalOperator.CONTAIN_JOIN, TS_ASC, TS_ASC)
        xs = sort_tuples(generate_relation(5, "x", 48), TS_ASC)
        ys = sort_tuples(generate_relation(5, "y", 48), TS_ASC)

        def run():
            report = ExecutionReport()
            outcome = execute_parallel(
                entry,
                xs,
                ys,
                shards=3,
                policy=RecoveryPolicy.DEGRADE,
                fault_plan=FaultPlan(seed=21, rate=0.25),
                retry_policy=RetryPolicy(seed=21, max_attempts=5),
                report=report,
                page_capacity=8,
                mode="inline",
            )
            return canon(outcome.results), report.faults_injected

        assert run() == run()


class TestShardIsolation:
    """Recovery is shard-local: a workspace overflow triggered by one
    shard's dense time region degrades that shard alone — siblings run
    clean, and the merged output still matches serial."""

    def test_one_shard_degrades_siblings_stay_clean(self):
        from repro.model.tuples import TemporalTuple

        entry = lookup(TemporalOperator.CONTAIN_JOIN, TS_ASC, TS_ASC)
        # First half: 48 long intervals piled on [0, 50) — dozens open
        # at once, workspace far above budget.  Second half: singleton
        # intervals marching right — workspace of one.
        xs = [
            TemporalTuple(f"dense{i}", i, i % 10, 50 + i % 10)
            for i in range(48)
        ] + [
            TemporalTuple(f"sparse{i}", 100 + i, 100 + 10 * i, 101 + 10 * i)
            for i in range(48)
        ]
        xs = sort_tuples(xs, TS_ASC)
        ys = sort_tuples(
            [
                TemporalTuple(f"y{i}", i, 12 + (i % 20), 14 + (i % 20))
                for i in range(30)
            ],
            TS_ASC,
        )
        expected = canon(serial_run(entry, xs, ys, "tuple"))
        outcome = execute_parallel(
            entry,
            xs,
            ys,
            shards=2,
            policy=RecoveryPolicy.DEGRADE,
            workspace_budget=8,
            mode="inline",
        )
        # Degradation healed the output: still identical to serial.
        assert canon(outcome.results) == expected
        degraded = [r for r in outcome.shard_runs if r.degraded]
        clean = [r for r in outcome.shard_runs if not r.degraded]
        assert degraded, "the dense shard never overflowed"
        assert clean, "overflow leaked into the sparse shard"
        # Per-shard accounting keeps the blast radius visible: fallbacks
        # are recorded on the shard that took them, not smeared.
        assert sum(r.fallbacks for r in outcome.shard_runs) == len(
            outcome.report.fallbacks
        )
        assert outcome.report.workspace_overflows == len(degraded)


class TestProcessModeDifferential:
    """The fork pool path must agree with inline for a representative
    spread of shapes (join pairs, semijoin, self-semijoin)."""

    @pytest.mark.parametrize(
        "operator",
        [
            TemporalOperator.CONTAIN_JOIN,
            TemporalOperator.CONTAIN_SEMIJOIN,
            TemporalOperator.SELF_CONTAIN_SEMIJOIN,
        ],
    )
    def test_process_matches_inline(self, operator, small_inputs):
        entry = next(iter(_entries_for(operator)))
        x_raw, y_raw = small_inputs
        xs, ys = sorted_inputs(entry, x_raw, y_raw)
        inline = execute_parallel(
            entry, xs, ys, shards=WORKERS, mode="inline"
        )
        process = execute_parallel(
            entry,
            xs,
            ys,
            shards=WORKERS,
            workers=WORKERS,
            mode="process",
        )
        assert canon(process.results) == canon(inline.results)
        assert process.mode in ("process", "inline")


def _entries_for(operator):
    return [e for e in CELLS if e.operator is operator]
