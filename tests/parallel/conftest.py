"""Shared helpers for the parallel-execution suite."""

import random

import pytest

from repro.model import sort_tuples
from repro.model.tuples import TemporalTuple
from repro.streams import TemporalOperator, TupleStream
from repro.streams.registry import supported_entries


def all_supported_cells():
    """Every registry cell with an actual algorithm, across operators."""
    cells = []
    for operator in TemporalOperator:
        cells.extend(supported_entries(operator))
    return cells


def cell_id(entry):
    y = str(entry.y_order) if entry.y_order is not None else "unary"
    return f"{entry.operator.value}[{entry.x_order}/{y}]"


def make_tuples(name, count, seed, horizon=300, max_duration=50):
    rng = random.Random(seed)
    out = []
    for i in range(count):
        ts = rng.randint(0, horizon)
        out.append(
            TemporalTuple(
                f"{name}{i}", i, ts, ts + rng.randint(1, max_duration)
            )
        )
    return out


def tie_heavy_tuples(name, count, seed, horizon=12):
    """Endpoints drawn from a tiny domain with few durations, so equal
    TS/TE values land on shard cuts constantly."""
    rng = random.Random(seed)
    durations = (1, 2, 3, 5)
    out = []
    for i in range(count):
        ts = rng.randint(0, horizon)
        out.append(
            TemporalTuple(f"{name}{i}", i, ts, ts + rng.choice(durations))
        )
    return out


def canon(results):
    """Order-insensitive signature of any operator's output."""
    sig = []
    for r in results:
        if isinstance(r, tuple):
            sig.append((repr(r[0].surrogate), repr(r[1].surrogate)))
        else:
            sig.append(repr(r.surrogate))
    return sorted(map(repr, sig))


def sorted_inputs(entry, x, y):
    xs = sort_tuples(x, entry.x_order)
    ys = sort_tuples(y, entry.y_order) if entry.y_order is not None else None
    return xs, ys


def serial_run(entry, xs, ys, backend):
    x_stream = TupleStream.from_tuples(xs, order=entry.x_order, name="X")
    if ys is None:
        return entry.build(x_stream, backend=backend).run()
    y_stream = TupleStream.from_tuples(ys, order=entry.y_order, name="Y")
    return entry.build(x_stream, y_stream, backend=backend).run()


@pytest.fixture
def small_inputs():
    return make_tuples("x", 90, seed=5), make_tuples("y", 110, seed=6)
