"""Unit tests for the time-domain range partitioner."""

import pytest

from .conftest import make_tuples, tie_heavy_tuples

from repro.errors import ExecutionError
from repro.model import TS_ASC, TS_TE_ASC, sort_tuples
from repro.model.tuples import TemporalTuple
from repro.parallel import (
    OwnedAggregates,
    PartitionTag,
    necessity_window,
    partition,
    slice_bounds,
)
from repro.streams import TemporalOperator, lookup
from repro.streams.registry import supported_entries


def T(name, ts, te):
    return TemporalTuple(name, name, ts, te)


class TestSliceBounds:
    def test_even_split(self):
        assert slice_bounds(9, 3) == [(0, 3), (3, 6), (6, 9)]

    def test_remainder_spread(self):
        bounds = slice_bounds(10, 3)
        assert bounds[0][0] == 0 and bounds[-1][1] == 10
        assert all(hi > lo for lo, hi in bounds)
        assert [lo for lo, _ in bounds[1:]] == [hi for _, hi in bounds[:-1]]
        assert sum(hi - lo for lo, hi in bounds) == 10

    def test_more_shards_than_tuples_drops_empties(self):
        bounds = slice_bounds(2, 5)
        assert sum(hi - lo for lo, hi in bounds) == 2
        assert all(hi > lo for lo, hi in bounds)
        assert len(bounds) <= 2

    def test_single_shard(self):
        assert slice_bounds(7, 1) == [(0, 7)]

    def test_zero_shards_rejected(self):
        with pytest.raises(ExecutionError):
            slice_bounds(4, 0)


class TestAggregates:
    def test_of(self):
        agg = OwnedAggregates.of([T("a", 1, 9), T("b", 4, 5), T("c", 2, 7)])
        assert (agg.min_ts, agg.max_ts) == (1, 4)
        assert (agg.min_te, agg.max_te) == (5, 9)


class TestNecessityWindows:
    AGG = OwnedAggregates(min_ts=10, max_ts=20, min_te=15, max_te=40)

    def test_contain_window_is_superset_of_predicate(self):
        # x contains y needs x.ts < y.ts and y.te < x.te: any y inside
        # some owned lifespan satisfies ts >= minTS and te <= maxTE.
        window = necessity_window(TemporalOperator.CONTAIN_JOIN, self.AGG)
        assert window(T("in", 12, 30))
        assert window(T("edge", 10, 40))  # non-strict at the boundary
        assert not window(T("early", 9, 30))
        assert not window(T("late", 12, 41))

    def test_contained_window_mirrors(self):
        window = necessity_window(
            TemporalOperator.CONTAINED_SEMIJOIN, self.AGG
        )
        assert window(T("covers", 5, 50))
        assert window(T("edge-start", 20, 50))  # non-strict at max_ts
        assert window(T("edge-end", 5, 15))  # non-strict at min_te
        assert not window(T("starts-after-owned", 21, 50))
        assert not window(T("ends-before-owned", 5, 14))

    def test_overlap_window(self):
        window = necessity_window(TemporalOperator.OVERLAP_JOIN, self.AGG)
        assert window(T("spans", 5, 50))
        assert window(T("touch-left", 5, 10))   # non-strict supersets
        assert window(T("touch-right", 40, 50))
        assert not window(T("before", 1, 9))
        assert not window(T("after", 41, 50))

    def test_unknown_operator_rejected(self):
        with pytest.raises(ExecutionError):
            necessity_window(TemporalOperator.BEFORE_SEMIJOIN, self.AGG)


class TestWindowedPartition:
    def entry(self):
        return lookup(TemporalOperator.CONTAIN_JOIN, TS_ASC, TS_ASC)

    def test_x_owned_exactly_once(self):
        xs = sort_tuples(make_tuples("x", 50, seed=1), TS_ASC)
        ys = sort_tuples(make_tuples("y", 60, seed=2), TS_ASC)
        plan = partition(self.entry(), xs, ys, shards=4)
        rebuilt = [t for shard in plan.shards for t in shard.x]
        assert rebuilt == xs
        assert plan.cuts == [s.owned_lo for s in plan.shards[1:]]

    def test_shard_y_is_sorted_subsequence(self):
        xs = sort_tuples(make_tuples("x", 50, seed=1), TS_ASC)
        ys = sort_tuples(make_tuples("y", 60, seed=2), TS_ASC)
        plan = partition(self.entry(), xs, ys, shards=3)
        for shard in plan.shards:
            positions = [ys.index(t) for t in shard.y]
            assert positions == sorted(positions)

    def test_replication_accounting(self):
        xs = sort_tuples(make_tuples("x", 40, seed=3), TS_ASC)
        ys = sort_tuples(make_tuples("y", 40, seed=4), TS_ASC)
        plan = partition(self.entry(), xs, ys, shards=4)
        shipped = sum(len(s.y) for s in plan.shards)
        assert plan.shipped_total == shipped
        # shipped = distinct-needed + replicated copies
        distinct_needed = len(
            {id(t) for s in plan.shards for t in s.y}
        )
        assert plan.replicated_total == shipped - distinct_needed
        assert plan.boundary_spanning <= distinct_needed
        assert plan.skew_ratio >= 1.0

    def test_missing_y_rejected(self):
        xs = sort_tuples(make_tuples("x", 10, seed=1), TS_ASC)
        with pytest.raises(ExecutionError):
            partition(self.entry(), xs, None, shards=2)

    def test_tie_heavy_cuts_keep_single_ownership(self):
        # Many tuples share TS exactly where positional cuts land.
        xs = sort_tuples(tie_heavy_tuples("x", 64, seed=9), TS_ASC)
        ys = sort_tuples(tie_heavy_tuples("y", 64, seed=10), TS_ASC)
        plan = partition(self.entry(), xs, ys, shards=7)
        seen = []
        for shard in plan.shards:
            assert xs[shard.owned_lo : shard.owned_hi] == shard.x
            seen.extend(shard.x)
        assert seen == xs


class TestBeforePartition:
    def test_single_representative(self):
        from repro.model import TE_ASC

        entry = next(
            e
            for e in supported_entries(TemporalOperator.BEFORE_SEMIJOIN)
        )
        xs = sort_tuples(make_tuples("x", 30, seed=1), entry.x_order)
        ys = sort_tuples(make_tuples("y", 30, seed=2), entry.y_order)
        plan = partition(entry, xs, ys, shards=3)
        latest = max(ys, key=lambda t: t.valid_from)
        for shard in plan.shards:
            assert shard.y == [latest]
        assert plan.replicated_total == len(plan.shards) - 1
        assert plan.boundary_spanning == 1

    def test_empty_y(self):
        entry = next(
            e
            for e in supported_entries(TemporalOperator.BEFORE_SEMIJOIN)
        )
        xs = sort_tuples(make_tuples("x", 10, seed=1), entry.x_order)
        plan = partition(entry, xs, [], shards=2)
        for shard in plan.shards:
            assert shard.y == []
        assert plan.replicated_total == 0


class TestSelfPartition:
    def test_tags_and_owner_coverage(self):
        entry = lookup(
            TemporalOperator.SELF_CONTAINED_SEMIJOIN, TS_TE_ASC, None
        )
        xs = sort_tuples(make_tuples("x", 40, seed=7), TS_TE_ASC)
        plan = partition(entry, xs, shards=4)
        for shard in plan.shards:
            assert shard.y is None
            owned_tags = {
                t.value.index
                for t in shard.x
                if shard.owns(t.value.index)
            }
            # every owned position is present in the shard input
            assert owned_tags == set(
                range(shard.owned_lo, shard.owned_hi)
            )
            for t in shard.x:
                assert isinstance(t.value, PartitionTag)
                original = xs[t.value.index]
                assert (t.valid_from, t.valid_to) == (
                    original.valid_from,
                    original.valid_to,
                )

    def test_k1_is_whole_relation(self):
        entry = lookup(
            TemporalOperator.SELF_CONTAIN_SEMIJOIN, TS_TE_ASC, None
        )
        xs = sort_tuples(make_tuples("x", 25, seed=8), TS_TE_ASC)
        plan = partition(entry, xs, shards=1)
        assert plan.effective_shards == 1
        assert len(plan.shards[0].x) == len(xs)
        assert plan.replicated_total == 0


class TestPlanDict:
    def test_as_dict_round_trips(self):
        entry = lookup(TemporalOperator.CONTAIN_JOIN, TS_ASC, TS_ASC)
        xs = sort_tuples(make_tuples("x", 30, seed=1), TS_ASC)
        ys = sort_tuples(make_tuples("y", 30, seed=2), TS_ASC)
        plan = partition(entry, xs, ys, shards=3)
        d = plan.as_dict()
        assert d["operator"] == "contain-join"
        assert d["effective_shards"] == len(plan.shards)
        assert len(d["shard_sizes"]) == len(plan.shards)
        assert d["cuts"] == plan.cuts
