"""Range shard planning: the contiguous index ranges handed to the
shared-memory runtime must cover everything the windowed partitioner
would ship, shard for shard, on every operator."""

import pytest

from repro.columnar.relation import IntervalColumns
from repro.model import sort_tuples
from repro.parallel import plan_ranges
from repro.parallel.partition import (
    SELF_OPERATORS,
    PartitionTag,
    partition,
)
from repro.streams import TemporalOperator

from .conftest import all_supported_cells, cell_id, make_tuples

CELLS = all_supported_cells()


def binary_entry():
    return next(
        e for e in CELLS if e.operator is TemporalOperator.CONTAIN_JOIN
    )


def columns_for(entry, seed_x=41, seed_y=42, n=160):
    xs = sort_tuples(make_tuples("x", n, seed=seed_x), entry.x_order)
    ys = (
        sort_tuples(make_tuples("y", n, seed=seed_y), entry.y_order)
        if entry.y_order is not None
        else None
    )
    x_cols = IntervalColumns.from_tuples(
        xs, order=entry.x_order, presorted=True
    )
    y_cols = (
        IntervalColumns.from_tuples(
            ys, order=entry.y_order, presorted=True
        )
        if ys is not None
        else None
    )
    return xs, ys, x_cols, y_cols


def make_plan(entry, x_cols, y_cols, shards):
    return plan_ranges(
        entry,
        x_cols.ts,
        x_cols.te,
        y_cols.ts if y_cols is not None else None,
        y_cols.te if y_cols is not None else None,
        shards=shards,
    )


@pytest.mark.parametrize("entry", CELLS, ids=cell_id)
@pytest.mark.parametrize("shards", [2, 3, 5])
class TestRangeGeometry:
    def test_owned_ranges_partition_x(self, entry, shards):
        xs, _, x_cols, y_cols = columns_for(entry)
        plan = make_plan(entry, x_cols, y_cols, shards)
        cursor = 0
        for shard_range in plan.ranges:
            assert shard_range.owned_lo == cursor
            assert shard_range.owned_hi > shard_range.owned_lo
            cursor = shard_range.owned_hi
        assert cursor == len(xs)

    def test_range_covers_windowed_partition(self, entry, shards):
        """Every context tuple the windowed partitioner ships to shard
        i must fall inside shard i's planned index range — the range is
        allowed to be a superset (the kernels re-check the exact
        predicates) but never to miss a necessary tuple."""
        xs, ys, x_cols, y_cols = columns_for(entry)
        plan = make_plan(entry, x_cols, y_cols, shards)
        windowed = partition(entry, xs, ys, shards=shards)
        assert plan.effective_shards == windowed.effective_shards
        unary = entry.operator in SELF_OPERATORS
        if not unary:
            position = {id(t): i for i, t in enumerate(ys)}
        for shard, shard_range in zip(windowed.shards, plan.ranges):
            assert shard.owned_lo == shard_range.owned_lo
            assert shard.owned_hi == shard_range.owned_hi
            if unary:
                for tagged in shard.x:
                    tag = tagged.value
                    assert isinstance(tag, PartitionTag)
                    assert (
                        shard_range.y_lo <= tag.index < shard_range.y_hi
                    )
            else:
                for y_tuple in shard.y:
                    index = position[id(y_tuple)]
                    assert shard_range.y_lo <= index < shard_range.y_hi

    def test_self_context_contains_owned(self, entry, shards):
        if entry.operator not in SELF_OPERATORS:
            pytest.skip("binary cell")
        _, _, x_cols, y_cols = columns_for(entry)
        plan = make_plan(entry, x_cols, y_cols, shards)
        for shard_range in plan.ranges:
            assert shard_range.y_lo <= shard_range.owned_lo
            assert shard_range.y_hi >= shard_range.owned_hi


class TestBeforeRepresentative:
    def test_single_argmax_representative(self):
        entry = next(
            e
            for e in CELLS
            if e.operator is TemporalOperator.BEFORE_SEMIJOIN
        )
        _, ys, x_cols, y_cols = columns_for(entry)
        plan = make_plan(entry, x_cols, y_cols, 3)
        best = max(
            range(len(ys)), key=lambda i: (y_cols.ts[i], y_cols.te[i])
        )
        for shard_range in plan.ranges:
            assert shard_range.context_count == 1
            assert shard_range.y_lo == best


class TestAccounting:
    def test_as_dict_reports_partition_plan_surface(self):
        entry = binary_entry()
        _, _, x_cols, y_cols = columns_for(entry)
        plan = make_plan(entry, x_cols, y_cols, 3)
        payload = plan.as_dict()
        assert payload["strategy"] == "range"
        for key in (
            "operator",
            "requested_shards",
            "effective_shards",
            "x_total",
            "shipped_total",
            "replicated_total",
            "boundary_spanning",
            "cuts",
            "skew_ratio",
            "shard_sizes",
        ):
            assert key in payload
        assert len(payload["shard_sizes"]) == plan.effective_shards
        assert plan.skew_ratio >= 1.0

    def test_empty_input_plans_no_ranges(self):
        entry = binary_entry()
        plan = plan_ranges(entry, [], [], [], [], shards=4)
        assert plan.effective_shards == 0
        assert plan.replicated_total == 0

    def test_more_shards_than_tuples_degrades_gracefully(self):
        entry = binary_entry()
        xs = sort_tuples(make_tuples("x", 3, seed=9), entry.x_order)
        ys = sort_tuples(make_tuples("y", 3, seed=10), entry.y_order)
        x_cols = IntervalColumns.from_tuples(
            xs, order=entry.x_order, presorted=True
        )
        y_cols = IntervalColumns.from_tuples(
            ys, order=entry.y_order, presorted=True
        )
        plan = make_plan(entry, x_cols, y_cols, 10)
        assert 1 <= plan.effective_shards <= 3
