"""The parallel-vs-serial decision in the cost model and planner."""

import pytest

from repro.optimizer import CostModel, TemporalJoinPlanner
from repro.optimizer.cost import (
    choose_shard_count,
    expected_replication_per_cut,
)
from repro.stats import collect_statistics
from repro.streams import TemporalOperator
from repro.workload import PoissonWorkload, fixed_duration


def make_relation(n, rate=0.5, duration=20, name="R", seed=1):
    return PoissonWorkload(
        n, rate, fixed_duration(duration), name=name
    ).generate(seed)


class TestChooseShardCount:
    def test_tiny_inputs_stay_serial(self):
        model = CostModel()
        x = collect_statistics(make_relation(40, seed=1))
        y = collect_statistics(make_relation(40, seed=2))
        assert choose_shard_count(model, x, y, 10.0, 8, available_cpus=8) == 1

    def test_large_inputs_go_parallel(self):
        model = CostModel()
        x = collect_statistics(make_relation(4000, seed=1))
        y = collect_statistics(make_relation(4000, seed=2))
        workers = choose_shard_count(model, x, y, 20.0, 8, available_cpus=8)
        assert workers > 1

    def test_max_workers_caps_the_search(self):
        model = CostModel()
        x = collect_statistics(make_relation(4000, seed=1))
        y = collect_statistics(make_relation(4000, seed=2))
        assert choose_shard_count(model, x, y, 20.0, 2, available_cpus=8) <= 2

    def test_single_cpu_prefers_serial(self):
        # Even inputs that clearly justify sharding stay serial when
        # only one core can run them: time-slicing K shards on one CPU
        # pays the coordination for none of the speedup.
        model = CostModel()
        x = collect_statistics(make_relation(4000, seed=1))
        y = collect_statistics(make_relation(4000, seed=2))
        assert choose_shard_count(model, x, y, 20.0, 8, available_cpus=1) == 1

    def test_cpu_count_caps_the_search(self):
        model = CostModel()
        x = collect_statistics(make_relation(4000, seed=1))
        y = collect_statistics(make_relation(4000, seed=2))
        assert choose_shard_count(model, x, y, 20.0, 8, available_cpus=2) <= 2

    def test_default_cpu_clamp_is_host_honest(self):
        # With no explicit grant the search may never exceed the host's
        # core count (the regression: K=4 planned on a 1-CPU box).
        import os

        model = CostModel()
        x = collect_statistics(make_relation(4000, seed=1))
        y = collect_statistics(make_relation(4000, seed=2))
        workers = choose_shard_count(model, x, y, 20.0, 8)
        assert workers <= (os.cpu_count() or 1)

    def test_workers_1_cost_equals_serial_pass(self):
        model = CostModel()
        assert model.parallel_stream_cost(
            1000, 1000, 30.0, workers=1
        ) == model.stream_pass_cost(1000, 1000, 30.0)

    def test_replication_grows_with_interval_length(self):
        short_x = collect_statistics(
            make_relation(500, duration=5, seed=1)
        )
        long_x = collect_statistics(
            make_relation(500, duration=80, seed=1)
        )
        y = collect_statistics(make_relation(500, seed=2))
        assert expected_replication_per_cut(
            long_x, y
        ) > expected_replication_per_cut(short_x, y)


class TestPlannerParallelAlternative:
    def test_parallel_alternative_enumerated(self):
        planner = TemporalJoinPlanner(parallelism=4)
        x = make_relation(3000, name="X", seed=1)
        y = make_relation(3000, name="Y", seed=2)
        ranked = planner.alternatives(
            TemporalOperator.CONTAIN_JOIN, x, y
        )
        kinds = {a.kind for a in ranked}
        assert "parallel-stream" in kinds
        parallel = next(
            a for a in ranked if a.kind == "parallel-stream"
        )
        assert 2 <= parallel.workers <= 4
        assert "workers" in parallel.cost_breakdown
        assert parallel.describe().startswith(
            f"parallel[{parallel.workers}]-stream"
        )

    def test_no_parallelism_means_no_parallel_alternatives(self):
        planner = TemporalJoinPlanner()
        x = make_relation(3000, name="X", seed=1)
        y = make_relation(3000, name="Y", seed=2)
        ranked = planner.alternatives(
            TemporalOperator.CONTAIN_JOIN, x, y
        )
        assert all(a.kind != "parallel-stream" for a in ranked)

    def test_small_inputs_choose_serial(self):
        planner = TemporalJoinPlanner(parallelism=4)
        x = make_relation(60, name="X", seed=1)
        y = make_relation(60, name="Y", seed=2)
        chosen = planner.choose(TemporalOperator.CONTAIN_JOIN, x, y)
        assert chosen.kind != "parallel-stream"

    @pytest.mark.parametrize(
        "operator",
        [TemporalOperator.CONTAIN_JOIN, TemporalOperator.OVERLAP_JOIN],
    )
    def test_parallel_execute_matches_serial_rows(self, operator):
        x = make_relation(1500, name="X", seed=3)
        y = make_relation(1500, name="Y", seed=4)
        serial_rows, serial_profile = TemporalJoinPlanner().execute(
            operator, x, y
        )
        parallel_planner = TemporalJoinPlanner(
            parallelism=4, parallel_mode="inline"
        )
        rows, profile = parallel_planner.execute(operator, x, y)
        if profile.chosen.kind == "parallel-stream":
            assert profile.chosen.workers > 1

        def sig(pairs):
            return sorted(
                (a.surrogate, b.surrogate) for a, b in pairs
            )

        assert sig(rows) == sig(serial_rows)
        assert serial_profile.chosen is not None
