"""Executor mechanics: fork-pool mode, STRICT propagation from
workers, shard-span emission, and max-vs-sum metric merging."""

import pytest

from repro.errors import ExecutionError, StorageFaultError
from repro.model import TS_ASC, sort_tuples
from repro.obs.metrics import (
    MetricsRegistry,
    install_registry,
    uninstall_registry,
)
from repro.obs.trace import Tracer, set_tracer
from repro.parallel import execute_parallel
from repro.resilience import FaultPlan, RecoveryPolicy, RetryPolicy
from repro.streams import TemporalOperator, lookup

from .conftest import canon, make_tuples, serial_run


def contain_entry():
    return lookup(TemporalOperator.CONTAIN_JOIN, TS_ASC, TS_ASC)


def inputs():
    xs = sort_tuples(make_tuples("x", 80, seed=31), TS_ASC)
    ys = sort_tuples(make_tuples("y", 80, seed=32), TS_ASC)
    return xs, ys


class TestProcessMode:
    def test_pool_smoke_matches_serial(self):
        entry = contain_entry()
        xs, ys = inputs()
        expected = canon(serial_run(entry, xs, ys, "tuple"))
        outcome = execute_parallel(
            entry, xs, ys, shards=2, workers=2, mode="process"
        )
        assert canon(outcome.results) == expected
        assert outcome.mode in ("process", "inline")
        assert len(outcome.shard_runs) == outcome.plan.effective_shards
        assert all(r.output_count >= 0 for r in outcome.shard_runs)

    def test_strict_fault_propagates_from_worker(self):
        """A never-healing page under STRICT must surface the original
        StorageFaultError through the pool, not a pickling wrapper."""
        entry = contain_entry()
        xs, ys = inputs()
        plan = FaultPlan(
            seed=0,
            rate=0.0,
            persistent=frozenset({("contain-join[tuple].X", 0)}),
        )
        with pytest.raises(StorageFaultError):
            execute_parallel(
                entry,
                xs,
                ys,
                shards=2,
                workers=2,
                policy=RecoveryPolicy.STRICT,
                fault_plan=plan,
                retry_policy=RetryPolicy(seed=0, max_attempts=3),
                page_capacity=8,
                mode="process",
            )

    def test_unknown_mode_rejected(self):
        entry = contain_entry()
        xs, ys = inputs()
        with pytest.raises(ExecutionError):
            execute_parallel(entry, xs, ys, shards=2, mode="threads")


class TestShardSpans:
    @pytest.mark.parametrize("mode", ["inline", "process"])
    def test_each_shard_gets_a_span(self, mode):
        entry = contain_entry()
        xs, ys = inputs()
        tracer = Tracer("shards")
        previous = set_tracer(tracer)
        try:
            outcome = execute_parallel(
                entry, xs, ys, shards=3, mode=mode
            )
        finally:
            set_tracer(previous)
        shard_spans = [
            s for s in tracer.spans if s.name.startswith("shard:")
        ]
        assert len(shard_spans) == outcome.plan.effective_shards
        for span in shard_spans:
            assert span.attributes["passes_x"] <= 1
            assert "owned_lo" in span.attributes
            assert "wall_ms" in span.attributes
        parallel_spans = [
            s for s in tracer.spans if s.name.startswith("parallel:")
        ]
        assert len(parallel_spans) == 1
        assert parallel_spans[0].attributes["output_count"] == len(
            outcome.results
        )


class TestMergedAccounting:
    def test_passes_take_shard_max_not_sum(self):
        """Four single-scan shards must still report a single scan —
        the Tables 1-3 bound is shard-local, so merging sums would
        fabricate a violation that never happened."""
        entry = contain_entry()
        xs, ys = inputs()
        outcome = execute_parallel(
            entry, xs, ys, shards=4, mode="inline"
        )
        assert outcome.metrics.passes_x == 1
        assert outcome.metrics.passes_y == 1
        # Totals do sum: every shard's reads are real work.
        assert outcome.metrics.tuples_read_x == sum(
            len(s.x) for s in outcome.plan.shards
        )

    def test_registry_counters_bumped(self):
        entry = contain_entry()
        xs, ys = inputs()
        install_registry(MetricsRegistry())
        try:
            execute_parallel(entry, xs, ys, shards=3, mode="inline")
            from repro.obs.metrics import active_registry

            dump = active_registry().to_prometheus()
        finally:
            uninstall_registry()
        assert "repro_parallel_runs_total" in dump
        assert "repro_parallel_shards_total" in dump
        assert "repro_parallel_skew_ratio" in dump
