"""Property test: shard cuts never duplicate or drop boundary tuples.

Hypothesis drives tie-heavy inputs over a tiny time domain, so equal
TS/TE values straddle almost every positional cut; for each draw the
parallel output must be multiset-identical to the serial kernel at
every shard count, for every registry cell, on both backends."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.model.tuples import TemporalTuple
from repro.parallel import execute_parallel

from .conftest import all_supported_cells, canon, cell_id, serial_run, sorted_inputs

SHARD_COUNTS = (1, 2, 4, 7)

#: Tiny domain + few durations = maximal endpoint collisions.
_interval = st.tuples(
    st.integers(min_value=0, max_value=12),
    st.sampled_from((1, 2, 3, 5)),
)
_relation = st.lists(_interval, min_size=0, max_size=28)


def _tuples(name, drawn):
    return [
        TemporalTuple(f"{name}{i}", i, ts, ts + dur)
        for i, (ts, dur) in enumerate(drawn)
    ]


@pytest.mark.parametrize("entry", all_supported_cells(), ids=cell_id)
@pytest.mark.parametrize("backend", ["tuple", "columnar"])
@settings(max_examples=6, deadline=None)
@given(x_drawn=_relation, y_drawn=_relation)
def test_cuts_are_exact(entry, backend, x_drawn, y_drawn):
    xs, ys = sorted_inputs(
        entry, _tuples("x", x_drawn), _tuples("y", y_drawn)
    )
    expected = canon(serial_run(entry, xs, ys, backend))
    for shards in SHARD_COUNTS:
        outcome = execute_parallel(
            entry, xs, ys, shards=shards, backend=backend, mode="inline"
        )
        assert canon(outcome.results) == expected, (
            f"{cell_id(entry)} diverged at shards={shards}"
        )


@pytest.mark.parametrize("backend", ["tuple", "columnar"])
def test_all_equal_keys_worst_case(backend):
    """Every tuple identical: every cut lands mid-tie, replication
    windows admit everything, and positional ownership is the only
    thing preventing duplicates."""
    xs = [TemporalTuple(f"x{i}", i, 5, 10) for i in range(31)]
    ys = [TemporalTuple(f"y{i}", i, 6, 9) for i in range(17)]
    for entry in all_supported_cells():
        sx, sy = sorted_inputs(entry, xs, ys)
        expected = canon(serial_run(entry, sx, sy, backend))
        for shards in SHARD_COUNTS:
            outcome = execute_parallel(
                entry, sx, sy, shards=shards, backend=backend, mode="inline"
            )
            assert canon(outcome.results) == expected, (
                f"{cell_id(entry)} diverged at shards={shards}"
            )
