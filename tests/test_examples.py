"""Smoke tests: every example script runs cleanly and prints what it
promises."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"

EXPECTED_MARKERS = {
    "quickstart.py": "execution profile:",
    "superstar.py": "speedup in join-condition evaluations",
    "sort_order_tradeoffs.py": "planner choices for Contain-join:",
    "payroll_history.py": "shuffled input correctly rejected",
    "semantic_optimization.py": "results identical before/after",
    "hr_audit.py": "decompose -> recompose round-trips exactly",
    "incident_patterns.py": "ran as one scan",
}


@pytest.mark.parametrize("script", sorted(EXPECTED_MARKERS))
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / script)],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert result.returncode == 0, result.stderr
    assert EXPECTED_MARKERS[script] in result.stdout


def test_every_example_is_covered():
    scripts = {p.name for p in EXAMPLES.glob("*.py")}
    assert scripts == set(EXPECTED_MARKERS)
