"""Integration tests crossing module boundaries.

Each test exercises a pipeline that spans several subsystems: query
language -> algebra -> engines, storage -> streams, planner -> storage,
semantic optimizer -> stream execution.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebra import compile_plan, optimize
from repro.model import (
    TE_ASC,
    TS_ASC,
    TemporalRelation,
    TemporalSchema,
)
from repro.optimizer import TemporalJoinPlanner
from repro.query import parse_query, translate
from repro.semantic import semantically_optimize
from repro.stats import collect_statistics
from repro.storage import BufferPool, HeapFile, IOStats, external_sort
from repro.streams import (
    ContainJoinTsTs,
    TemporalOperator,
    TupleStream,
    contain_predicate,
)
from repro.superstar import SUPERSTAR_QUEL, all_strategies
from repro.workload import (
    FacultyWorkload,
    PoissonWorkload,
    fixed_duration,
)


class TestStorageToStreams:
    """Disk files -> external sort -> stream join, with every page
    counted."""

    def test_sort_then_stream_join_from_disk(self):
        x_rel = PoissonWorkload(
            300, 0.5, fixed_duration(25), name="X"
        ).generate(1)
        y_rel = PoissonWorkload(
            300, 0.5, fixed_duration(6), name="Y"
        ).generate(2)

        # Stage the relations shuffled: Poisson arrivals are already in
        # TS order, and the sortedness pre-check would (correctly) skip
        # the sort this test exists to exercise.
        import random

        shuffle = random.Random(99).shuffle
        x_records = list(x_rel.tuples)
        y_records = list(y_rel.tuples)
        shuffle(x_records)
        shuffle(y_records)

        stats = IOStats()
        x_file = HeapFile.from_records("x", x_records, stats=stats)
        y_file = HeapFile.from_records("y", y_records, stats=stats)

        sorted_x = external_sort(x_file, TS_ASC, stats=stats).output
        sorted_y = external_sort(y_file, TS_ASC, stats=stats).output

        join = ContainJoinTsTs(
            TupleStream.from_heap_file(sorted_x, order=TS_ASC, stats=stats),
            TupleStream.from_heap_file(sorted_y, order=TS_ASC, stats=stats),
        )
        out = join.run()

        expected = sum(
            1
            for a in x_rel
            for b in y_rel
            if contain_predicate(a, b)
        )
        assert len(out) == expected
        # The join itself read each sorted file exactly once.
        assert join.metrics.passes_x == 1
        assert join.metrics.passes_y == 1
        assert stats.page_reads > 0 and stats.page_writes > 0

    def test_buffer_pool_scan_feeds_stream(self):
        rel = PoissonWorkload(
            200, 0.5, fixed_duration(10), name="Z"
        ).generate(3).sorted_by(TS_ASC)
        stats = IOStats()
        heap = HeapFile.from_records("z", rel.tuples, stats=stats)
        pool = BufferPool(capacity_pages=4)
        stream = TupleStream(
            lambda: pool.scan(heap, stats=stats),
            order=TS_ASC,
            name="pooled",
        )
        assert len(list(stream.drain())) == 200
        assert pool.misses > 0


class TestQueryToBothEngines:
    """The same declarative query through the conventional engine and
    through the stream planner."""

    def test_during_query_agrees_with_stream_plan(self):
        x_rel = PoissonWorkload(
            150, 0.4, fixed_duration(4), name="Xr"
        ).generate(5)
        y_rel = PoissonWorkload(
            150, 0.4, fixed_duration(30), name="Yr"
        ).generate(6)
        catalog = {"X": x_rel, "Y": y_rel}

        # Conventional: 'x during y' through the query language.
        plan = translate(
            parse_query(
                "range of x is X range of y is Y "
                "retrieve (A = x.Seq, B = y.Seq) where x during y"
            ),
            catalog,
        )
        conventional = sorted(compile_plan(optimize(plan), catalog).run())

        # Stream: the planner evaluates Contain-join(Y, X) and we flip.
        planner = TemporalJoinPlanner()
        results, _profile = planner.execute(
            TemporalOperator.CONTAIN_JOIN, y_rel, x_rel
        )
        via_stream = sorted((x.value, y.value) for y, x in results)
        assert conventional == via_stream


class TestSemanticPipeline:
    def test_full_superstar_pipeline(self):
        """Quel text -> algebra -> rewrites -> semantic optimization ->
        stream execution, agreeing with the conventional result."""
        faculty = FacultyWorkload(
            faculty_count=80, continuous=True, full_fraction=1.0
        ).generate(11)
        catalog = {"Faculty": faculty}
        plan = optimize(translate(parse_query(SUPERSTAR_QUEL), catalog))
        rewritten, report = semantically_optimize(plan, catalog)

        assert report.removed_count == 2
        assert report.containments()[0].strict

        conventional_rows = sorted(compile_plan(plan, catalog).run())
        semantic_rows = sorted(compile_plan(rewritten, catalog).run())
        assert conventional_rows == semantic_rows

        # The bag-semantics plans emit one row per witnessing f3; the
        # strategy API returns the distinct Stars set.
        strategies = all_strategies(faculty)
        assert {frozenset(s.rows) for s in strategies} == {
            frozenset(conventional_rows)
        }

    @settings(max_examples=5, deadline=None)
    @given(st.integers(min_value=0, max_value=1000))
    def test_pipeline_on_random_seeds(self, seed):
        faculty = FacultyWorkload(
            faculty_count=20, continuous=True, full_fraction=1.0
        ).generate(seed)
        all_strategies(faculty)  # asserts agreement internally


class TestPlannerWithStatistics:
    def test_statistics_drive_cost(self):
        """Denser overlaps -> larger predicted workspace -> higher
        stream cost, same data size."""
        planner = TemporalJoinPlanner()
        sparse = PoissonWorkload(
            400, 0.2, fixed_duration(3), name="S"
        ).generate(1)
        dense = PoissonWorkload(
            400, 0.2, fixed_duration(120), name="D"
        ).generate(2)
        sparse_alt = planner.choose(
            TemporalOperator.OVERLAP_JOIN,
            sparse.sorted_by(TS_ASC),
            sparse.sorted_by(TS_ASC),
        )
        dense_alt = planner.choose(
            TemporalOperator.OVERLAP_JOIN,
            dense.sorted_by(TS_ASC),
            dense.sorted_by(TS_ASC),
        )
        assert (
            dense_alt.cost_breakdown["expected_workspace"]
            > sparse_alt.cost_breakdown["expected_workspace"] * 10
        )

    def test_estimator_matches_generator(self):
        rel = PoissonWorkload(
            2000, 0.25, fixed_duration(16), name="G"
        ).generate(9)
        stats = collect_statistics(rel)
        assert stats.arrival_rate == pytest.approx(0.25, rel=0.2)
        assert stats.mean_duration == 16.0


class TestSchemaInterop:
    def test_custom_schema_through_query_language(self):
        schema = TemporalSchema("Machines", "Serial", "State")
        rel = TemporalRelation.from_rows(
            schema,
            [
                ("m1", "up", 0, 50),
                ("m1", "down", 50, 60),
                ("m2", "up", 10, 90),
            ],
        )
        catalog = {"Machines": rel}
        plan = translate(
            parse_query(
                "range of m is Machines retrieve "
                "(Serial = m.Serial, From = m.ValidFrom) "
                'where m.State = "up"'
            ),
            catalog,
        )
        rows = compile_plan(optimize(plan), catalog).run()
        assert sorted(rows) == [("m1", 0), ("m2", 10)]
