"""Tests for multi-attribute temporal relations (decompose/recompose)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SchemaError, TemporalModelError
from repro.model import TemporalTuple, is_coalesced
from repro.multiattr import (
    MultiAttributeRelation,
    MultiAttributeSchema,
    MultiTuple,
    recompose,
)

#: Rank and Salary — the paper's own multi-attribute example.
SCHEMA = MultiAttributeSchema("Faculty", "Name", ("Rank", "Salary"))


@pytest.fixture
def smith():
    """Smith's rank changes at 5, salary changes at 8."""
    return MultiAttributeRelation.from_rows(
        SCHEMA,
        [
            ("Smith", "Assistant", 50, 0, 5),
            ("Smith", "Associate", 50, 5, 8),
            ("Smith", "Associate", 70, 8, 12),
        ],
    )


class TestSchema:
    def test_validation(self):
        with pytest.raises(SchemaError):
            MultiAttributeSchema("R", "Id", ())
        with pytest.raises(SchemaError):
            MultiAttributeSchema("R", "Id", ("Id",))
        with pytest.raises(SchemaError):
            MultiAttributeSchema("R", "Id", ("ValidFrom",))

    def test_single_attribute_schema(self):
        single = SCHEMA.single_attribute_schema("Rank")
        assert single.relation_name == "Faculty.Rank"
        assert single.surrogate_name == "Name"
        assert single.value_name == "Rank"
        with pytest.raises(SchemaError):
            SCHEMA.single_attribute_schema("Shoe")


class TestConstruction:
    def test_arity_checked(self):
        with pytest.raises(SchemaError):
            MultiAttributeRelation(
                SCHEMA, [MultiTuple("a", ("x",), 0, 5)]
            )
        with pytest.raises(SchemaError):
            MultiAttributeRelation.from_rows(SCHEMA, [("a", "x", 0, 5)])

    def test_snapshot(self, smith):
        assert smith.snapshot(6) == {"Smith": ("Associate", 50)}
        assert smith.snapshot(9) == {"Smith": ("Associate", 70)}
        assert smith.snapshot(20) == {}


class TestDecompose:
    def test_rank_coalesced_across_salary_change(self, smith):
        rank = smith.attribute("Rank")
        assert is_coalesced(rank)
        # Associate spans [5, 12) despite the salary change at 8.
        assert TemporalTuple("Smith", "Associate", 5, 12) in rank
        assert TemporalTuple("Smith", "Assistant", 0, 5) in rank
        assert len(rank) == 2

    def test_salary_coalesced_across_rank_change(self, smith):
        salary = smith.attribute("Salary")
        assert TemporalTuple("Smith", 50, 0, 8) in salary
        assert TemporalTuple("Smith", 70, 8, 12) in salary
        assert len(salary) == 2

    def test_decomposed_relations_usable_by_streams(self, smith):
        from repro.model import TS_ASC
        from repro.streams import OverlapJoin, TupleStream

        rank = smith.attribute("Rank").sorted_by(TS_ASC)
        salary = smith.attribute("Salary").sorted_by(TS_ASC)
        join = OverlapJoin(
            TupleStream.from_relation(rank),
            TupleStream.from_relation(salary),
        )
        # Rank/salary periods that co-existed in time:
        pairs = {(r.value, s.value) for r, s in join.run()}
        assert pairs == {
            ("Assistant", 50),
            ("Associate", 50),
            ("Associate", 70),
        }


class TestRecompose:
    def test_round_trip(self, smith):
        assert recompose(SCHEMA, smith.decompose()) == smith

    def test_attribute_with_partial_coverage(self):
        """Timepoints where some attribute is undefined are excluded
        from the join result (natural-join semantics)."""
        rel = recompose(
            SCHEMA,
            {
                "Rank": _single("Rank", [("a", "Assistant", 0, 10)]),
                "Salary": _single("Salary", [("a", 40, 3, 6)]),
            },
        )
        assert list(rel) == [MultiTuple("a", ("Assistant", 40), 3, 6)]

    def test_missing_surrogate_in_one_attribute(self):
        rel = recompose(
            SCHEMA,
            {
                "Rank": _single(
                    "Rank", [("a", "Assistant", 0, 5), ("b", "Full", 0, 5)]
                ),
                "Salary": _single("Salary", [("a", 50, 0, 5)]),
            },
        )
        assert {t.surrogate for t in rel} == {"a"}

    def test_missing_attribute_relation(self, smith):
        parts = smith.decompose()
        del parts["Salary"]
        with pytest.raises(SchemaError):
            recompose(SCHEMA, parts)

    def test_ambiguous_overlap_rejected(self):
        with pytest.raises(TemporalModelError):
            recompose(
                SCHEMA,
                {
                    "Rank": _single(
                        "Rank",
                        [("a", "Assistant", 0, 6), ("a", "Full", 4, 9)],
                    ),
                    "Salary": _single("Salary", [("a", 50, 0, 9)]),
                },
            )

    def test_adjacent_equal_segments_merge(self):
        """Recompose coalesces: boundary splits with identical value
        vectors are merged back."""
        rel = recompose(
            SCHEMA,
            {
                "Rank": _single(
                    "Rank",
                    [("a", "Assistant", 0, 5), ("a", "Assistant", 5, 9)],
                ),
                "Salary": _single("Salary", [("a", 50, 0, 9)]),
            },
        )
        assert list(rel) == [MultiTuple("a", ("Assistant", 50), 0, 9)]

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=1),  # surrogate
                st.sampled_from(["A", "B", "C"]),       # rank
                st.integers(min_value=1, max_value=3) , # salary
                st.integers(min_value=1, max_value=8),  # duration
            ),
            min_size=1,
            max_size=12,
        )
    )
    def test_property_round_trip_canonical(self, segments):
        """Contiguous per-surrogate histories round-trip through
        decompose/recompose up to coalescing of value-identical
        adjacent segments."""
        clocks = {0: 0, 1: 0}
        rows = []
        for surrogate, rank, salary, duration in segments:
            start = clocks[surrogate]
            rows.append(
                (f"s{surrogate}", rank, salary, start, start + duration)
            )
            clocks[surrogate] = start + duration
        relation = MultiAttributeRelation.from_rows(SCHEMA, rows)
        rebuilt = recompose(SCHEMA, relation.decompose())
        # Canonical form: identical snapshots at every timepoint.
        horizon = max(clocks.values()) + 1
        for point in range(horizon):
            assert rebuilt.snapshot(point) == relation.snapshot(point)
        # And the rebuilt form is minimal: no two adjacent tuples of a
        # surrogate carry identical value vectors.
        by_surrogate: dict = {}
        for tup in sorted(
            rebuilt, key=lambda t: (repr(t.surrogate), t.valid_from)
        ):
            prev = by_surrogate.get(tup.surrogate)
            if prev is not None and prev.valid_to == tup.valid_from:
                assert prev.values != tup.values
            by_surrogate[tup.surrogate] = tup


def _single(attribute, rows):
    from repro.model import TemporalRelation

    return TemporalRelation.from_rows(
        SCHEMA.single_attribute_schema(attribute), rows
    )
