"""Tests for hybrid execution: stream algorithms inside declarative
query plans."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebra import LJoin, compile_plan, optimize
from repro.optimizer import execute_hybrid, recognize_stream_join
from repro.query import parse_query, run_query, translate
from repro.streams import TemporalOperator
from repro.workload import PoissonWorkload, fixed_duration


def catalog(seed_offset=0, n=150):
    x = PoissonWorkload(n, 0.4, fixed_duration(4), name="X").generate(
        5 + seed_offset
    )
    y = PoissonWorkload(n, 0.4, fixed_duration(30), name="Y").generate(
        6 + seed_offset
    )
    return {"X": x, "Y": y}


def plan_for(text, cat):
    return optimize(translate(parse_query(text), cat))


def first_join(plan):
    return next(node for node in plan.walk() if isinstance(node, LJoin))


DURING_QUERY = (
    "range of a is X range of b is Y "
    "retrieve (A = a.Seq, B = b.Seq) where a during b"
)


class TestRecognition:
    def test_during_recognised_as_swapped_contain(self):
        cat = catalog()
        join = first_join(plan_for(DURING_QUERY, cat))
        recognised = recognize_stream_join(join)
        assert recognised == (TemporalOperator.CONTAIN_JOIN, True)

    def test_contains_recognised_unswapped(self):
        cat = catalog()
        join = first_join(
            plan_for(
                "range of a is X range of b is Y "
                "retrieve (A = a.Seq, B = b.Seq) where a contains b",
                cat,
            )
        )
        assert recognize_stream_join(join) == (
            TemporalOperator.CONTAIN_JOIN,
            False,
        )

    def test_general_overlap_recognised(self):
        cat = catalog()
        join = first_join(
            plan_for(
                "range of a is X range of b is Y "
                "retrieve (A = a.Seq, B = b.Seq) where a overlap b",
                cat,
            )
        )
        assert recognize_stream_join(join) == (
            TemporalOperator.OVERLAP_JOIN,
            False,
        )

    def test_equality_join_not_recognised(self):
        cat = catalog()
        join = first_join(
            plan_for(
                "range of a is X range of b is Y "
                "retrieve (A = a.Seq, B = b.Seq) where a.Id = b.Id",
                cat,
            )
        )
        assert recognize_stream_join(join) is None

    def test_mixed_predicate_not_recognised(self):
        cat = catalog()
        join = first_join(
            plan_for(
                "range of a is X range of b is Y "
                "retrieve (A = a.Seq, B = b.Seq) "
                "where a during b and a.Id = b.Id",
                cat,
            )
        )
        assert recognize_stream_join(join) is None

    def test_single_inequality_not_an_operator(self):
        """One bare inequality (a less-than join) is not equivalent to
        any Figure-2 operator — it stays conventional, as the paper
        says ('with only a single inequality ... no choice but the
        nested-loop join method')."""
        cat = catalog()
        join = first_join(
            plan_for(
                "range of a is X range of b is Y "
                "retrieve (A = a.Seq, B = b.Seq) "
                "where a.ValidFrom < b.ValidFrom",
                cat,
            )
        )
        assert recognize_stream_join(join) is None


class TestHybridExecution:
    def test_matches_conventional(self):
        cat = catalog()
        plan = plan_for(DURING_QUERY, cat)
        hybrid = execute_hybrid(plan, cat)
        conventional = compile_plan(plan, cat).run()
        assert sorted(hybrid.rows) == sorted(conventional)
        assert len(hybrid.stream_joins) == 1
        info = hybrid.stream_joins[0]
        assert info.operator is TemporalOperator.CONTAIN_JOIN
        assert info.swapped
        assert info.output_rows == len(hybrid.rows)

    def test_padded_condition_still_streams(self):
        """A redundant extra conjunct does not defeat recognition."""
        cat = catalog()
        plan = plan_for(
            "range of a is X range of b is Y "
            "retrieve (A = a.Seq, B = b.Seq) "
            "where a during b and a.ValidFrom < b.ValidTo",
            cat,
        )
        hybrid = execute_hybrid(plan, cat)
        assert len(hybrid.stream_joins) == 1
        conventional = compile_plan(plan, cat).run()
        assert sorted(hybrid.rows) == sorted(conventional)

    def test_conventional_joins_still_work(self):
        cat = catalog()
        plan = plan_for(
            "range of a is X range of b is Y "
            "retrieve (A = a.Seq, B = b.Seq) where a.Seq = b.Seq",
            cat,
        )
        hybrid = execute_hybrid(plan, cat)
        assert hybrid.stream_joins == []
        assert sorted(hybrid.rows) == sorted(compile_plan(plan, cat).run())

    def test_projection_above_stream_join(self):
        cat = catalog()
        plan = plan_for(
            "range of a is X range of b is Y "
            "retrieve unique (B = b.Seq) where a during b",
            cat,
        )
        hybrid = execute_hybrid(plan, cat)
        conventional = compile_plan(plan, cat).run()
        assert sorted(hybrid.rows) == sorted(conventional)

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=0, max_value=500))
    def test_equivalence_on_random_inputs(self, seed):
        cat = catalog(seed_offset=seed, n=40)
        for operator_text in ("during", "overlap", "before"):
            plan = plan_for(
                "range of a is X range of b is Y "
                f"retrieve (A = a.Seq, B = b.Seq) where a {operator_text} b",
                cat,
            )
            hybrid = execute_hybrid(plan, cat)
            conventional = compile_plan(plan, cat).run()
            assert sorted(hybrid.rows) == sorted(conventional)


class TestRunQueryStreams:
    def test_streams_flag(self):
        cat = catalog()
        hybrid = run_query(DURING_QUERY, cat, streams=True)
        plain = run_query(DURING_QUERY, cat)
        assert sorted(hybrid.rows) == sorted(plain.rows)
        assert len(hybrid.stream_joins) == 1
        assert "stream" in hybrid.stream_joins[0].chosen

    def test_streams_flag_off_by_default(self):
        cat = catalog()
        plain = run_query(DURING_QUERY, cat)
        assert plain.stream_joins == []

    def test_superstar_with_streams_still_correct(self):
        """The Superstar upper join spans three variables and must stay
        conventional; the hybrid path must not break it."""
        from repro.superstar import SUPERSTAR_QUEL
        from repro.workload import FacultyWorkload

        faculty = {
            "Faculty": FacultyWorkload(
                faculty_count=30, continuous=True, full_fraction=1.0
            ).generate(3)
        }
        hybrid = run_query(SUPERSTAR_QUEL, faculty, streams=True)
        plain = run_query(SUPERSTAR_QUEL, faculty)
        assert sorted(hybrid.rows) == sorted(plain.rows)
