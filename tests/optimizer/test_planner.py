"""Tests for cost-based temporal join planning."""

import pytest

from repro.model import TE_ASC, TS_ASC
from repro.optimizer import CostModel, TemporalJoinPlanner, expected_workspace_for
from repro.stats import collect_statistics
from repro.streams import TemporalOperator, contain_predicate
from repro.workload import PoissonWorkload, fixed_duration


def make_relation(n, rate=0.5, duration=20, name="R", seed=1):
    return PoissonWorkload(
        n, rate, fixed_duration(duration), name=name
    ).generate(seed)


@pytest.fixture
def planner():
    return TemporalJoinPlanner()


class TestCostModel:
    def test_pages(self):
        model = CostModel(page_capacity=10)
        assert model.pages(0) == 0
        assert model.pages(1) == 1
        assert model.pages(10) == 1
        assert model.pages(11) == 2

    def test_sort_cost_grows_superlinearly_in_passes(self):
        model = CostModel(page_capacity=4, sort_memory_pages=2)
        small = model.sort_cost(8)
        large = model.sort_cost(800)
        assert large > 100 * small / 8  # more passes, not just more pages

    def test_nested_loop_dominates_for_large_inputs(self):
        model = CostModel()
        assert model.nested_loop_cost(1000, 1000) > model.sort_cost(
            1000
        ) * 2 + model.stream_pass_cost(1000, 1000, 50)

    def test_zero_tuples(self):
        model = CostModel()
        assert model.sort_cost(0) == 0.0
        assert model.scan_cost(0) == 0.0


class TestExpectedWorkspace:
    def test_state_class_ordering(self):
        x = collect_statistics(make_relation(500))
        y = collect_statistics(make_relation(500, seed=2))
        d = expected_workspace_for("d", x, y)
        c = expected_workspace_for("c", x, y)
        a = expected_workspace_for("a", x, y)
        bad = expected_workspace_for("-", x, y)
        assert d == 0.0
        assert d < c < a < bad
        assert bad == 1000.0


class TestPlannerChoices:
    def test_large_inputs_choose_stream(self, planner):
        x = make_relation(600, name="X")
        y = make_relation(600, name="Y", seed=2)
        choice = planner.choose(TemporalOperator.CONTAIN_JOIN, x, y)
        assert choice.kind == "stream"

    def test_tiny_inputs_choose_nested_loop(self, planner):
        x = make_relation(4, name="X")
        y = make_relation(4, name="Y", seed=2)
        choice = planner.choose(TemporalOperator.CONTAIN_JOIN, x, y)
        assert choice.kind == "nested-loop"

    def test_existing_order_avoids_sort(self, planner):
        x = make_relation(600, name="X").sorted_by(TS_ASC)
        y = make_relation(600, name="Y", seed=2).sorted_by(TS_ASC)
        choice = planner.choose(TemporalOperator.CONTAIN_JOIN, x, y)
        assert choice.kind == "stream"
        assert not choice.sort_x and not choice.sort_y
        assert str(choice.entry.x_order) == "ValidFrom^"

    def test_interesting_order_tips_the_choice(self, planner):
        """With Y already ValidTo-sorted, the (TS^, TE^) entry wins the
        tie because it needs one fewer sort — the 'interesting orders'
        effect."""
        x = make_relation(600, name="X").sorted_by(TS_ASC)
        y = make_relation(600, name="Y", seed=2).sorted_by(TE_ASC)
        choice = planner.choose(TemporalOperator.CONTAIN_JOIN, x, y)
        assert choice.entry.state_class == "b"
        assert not choice.sort_x and not choice.sort_y

    def test_semijoin_prefers_buffer_only_entry(self, planner):
        x = make_relation(600, name="X").sorted_by(TS_ASC)
        y = make_relation(600, name="Y", seed=2).sorted_by(TE_ASC)
        choice = planner.choose(TemporalOperator.CONTAIN_SEMIJOIN, x, y)
        assert choice.entry.state_class == "d"

    def test_alternatives_are_ranked(self, planner):
        x = make_relation(300, name="X")
        y = make_relation(300, name="Y", seed=2)
        ranked = planner.alternatives(TemporalOperator.CONTAIN_JOIN, x, y)
        costs = [alt.estimated_cost for alt in ranked]
        assert costs == sorted(costs)
        assert any(alt.kind == "nested-loop" for alt in ranked)


class TestPlannerExecution:
    def test_execute_stream_correctness(self, planner):
        x = make_relation(200, duration=30, name="X")
        y = make_relation(200, duration=6, name="Y", seed=2)
        results, profile = planner.execute(
            TemporalOperator.CONTAIN_JOIN, x, y
        )
        assert profile.chosen.kind == "stream"
        expected = sorted(
            (a.value, b.value)
            for a in x
            for b in y
            if contain_predicate(a, b)
        )
        assert sorted((a.value, b.value) for a, b in results) == expected
        assert profile.metrics is not None
        assert profile.metrics.passes_x == 1

    def test_execute_nested_loop_correctness(self, planner):
        x = make_relation(6, duration=30, name="X")
        y = make_relation(6, duration=6, name="Y", seed=2)
        results, profile = planner.execute(
            TemporalOperator.CONTAIN_JOIN, x, y
        )
        assert profile.chosen.kind == "nested-loop"
        expected = sorted(
            (a.value, b.value)
            for a in x
            for b in y
            if contain_predicate(a, b)
        )
        assert sorted((a.value, b.value) for a, b in results) == expected

    def test_execute_semijoin(self, planner):
        x = make_relation(150, duration=25, name="X")
        y = make_relation(150, duration=5, name="Y", seed=2)
        results, profile = planner.execute(
            TemporalOperator.CONTAIN_SEMIJOIN, x, y
        )
        expected = sorted(
            a.value
            for a in x
            if any(contain_predicate(a, b) for b in y)
        )
        assert sorted(t.value for t in results) == expected

    def test_before_semijoin_never_needs_sort(self, planner):
        x = make_relation(400, name="X")
        y = make_relation(400, name="Y", seed=2)
        choice = planner.choose(TemporalOperator.BEFORE_SEMIJOIN, x, y)
        assert choice.kind == "stream"
        assert not choice.sort_x and not choice.sort_y

    def test_before_join_falls_back_to_nested_loop(self, planner):
        x = make_relation(100, name="X")
        y = make_relation(100, name="Y", seed=2)
        choice = planner.choose(TemporalOperator.BEFORE_JOIN, x, y)
        assert choice.kind == "nested-loop"


class TestHistogramPlanning:
    def bursty_relation(self, name, seed):
        """A dense burst inside a sparse tail — the workload where the
        stationary workspace model misleads."""
        from repro.model import TemporalRelation, TemporalSchema
        from repro.model.tuples import TemporalTuple

        burst = [
            TemporalTuple(f"{name}b{i}", i, 5000 + i, 5000 + i + 60)
            for i in range(200)
        ]
        tail = [
            TemporalTuple(f"{name}t{i}", 1000 + i, 50 * i, 50 * i + 5)
            for i in range(200)
        ]
        return TemporalRelation(
            TemporalSchema(name, "Id", "Seq"), burst + tail
        )

    def test_histogram_workspace_estimate_is_larger_on_bursts(self):
        x = self.bursty_relation("X", 1)
        y = self.bursty_relation("Y", 2)
        stationary = TemporalJoinPlanner()
        histogram = TemporalJoinPlanner(use_histograms=True)
        op = TemporalOperator.OVERLAP_JOIN
        flat_ws = stationary.choose(op, x, y).cost_breakdown[
            "expected_workspace"
        ]
        hist_ws = histogram.choose(op, x, y).cost_breakdown[
            "expected_workspace"
        ]
        assert hist_ws > flat_ws * 3

    def test_histogram_estimate_matches_measurement(self):
        from repro.model import TS_ASC

        x = self.bursty_relation("X", 1)
        y = self.bursty_relation("Y", 2)
        planner = TemporalJoinPlanner(use_histograms=True)
        results, profile = planner.execute(
            TemporalOperator.OVERLAP_JOIN,
            x.sorted_by(TS_ASC),
            y.sorted_by(TS_ASC),
        )
        assert results
        predicted = profile.chosen.cost_breakdown["expected_workspace"]
        measured = profile.metrics.workspace_high_water
        assert predicted * 0.4 <= measured <= predicted * 2.5

    def test_histogram_choice_still_correct(self):
        x = self.bursty_relation("X", 1)
        y = self.bursty_relation("Y", 2)
        plain_results, _ = TemporalJoinPlanner().execute(
            TemporalOperator.OVERLAP_JOIN, x, y
        )
        hist_results, _ = TemporalJoinPlanner(use_histograms=True).execute(
            TemporalOperator.OVERLAP_JOIN, x, y
        )
        canonical = lambda rs: sorted(
            (a.value, b.value) for a, b in rs
        )
        assert canonical(plain_results) == canonical(hist_results)


class TestWorkspaceBudgetFallback:
    """The trade-off triangle, operationally: when the chosen stream
    plan overflows a finite workspace, execution falls back to the
    nested loop and still answers correctly."""

    def inputs(self):
        x = make_relation(300, duration=40, name="X")
        y = make_relation(300, duration=8, name="Y", seed=2)
        return x, y

    def test_generous_budget_streams(self):
        x, y = self.inputs()
        planner = TemporalJoinPlanner()
        results, profile = planner.execute(
            TemporalOperator.CONTAIN_JOIN, x, y, workspace_budget=10_000
        )
        assert "workspace_overflow" not in profile.details
        assert profile.chosen.kind == "stream"
        assert results

    def test_tiny_budget_falls_back(self):
        x, y = self.inputs()
        planner = TemporalJoinPlanner()
        results, profile = planner.execute(
            TemporalOperator.CONTAIN_JOIN, x, y, workspace_budget=2
        )
        assert profile.details.get("workspace_overflow")
        assert profile.details.get("fallback") == "nested-loop"
        # Correctness is preserved through the fallback.
        expected = sorted(
            (a.value, b.value)
            for a in x
            for b in y
            if contain_predicate(a, b)
        )
        assert sorted((a.value, b.value) for a, b in results) == expected

    def test_zero_state_plan_ignores_budget(self):
        x, y = self.inputs()
        planner = TemporalJoinPlanner()
        results, profile = planner.execute(
            TemporalOperator.CONTAIN_SEMIJOIN, x, y, workspace_budget=0
        )
        assert "workspace_overflow" not in profile.details
        assert profile.chosen.entry.state_class in ("c", "d")
        if profile.chosen.entry.state_class == "d":
            assert profile.metrics.workspace_high_water == 0
