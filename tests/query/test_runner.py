"""Tests for the run_query convenience façade."""

import pytest

from repro.errors import ParseError, TranslationError
from repro.query import run_query
from repro.superstar import SUPERSTAR_QUEL
from repro.workload import FacultyWorkload, figure1_relation

CATALOG = {"Faculty": figure1_relation()}


class TestRunQuery:
    def test_simple_selection(self):
        result = run_query(
            'range of f is Faculty retrieve (N = f.Name) '
            'where f.Rank = "Full"',
            CATALOG,
        )
        assert sorted(result.rows) == [("Jones",), ("Smith",)]
        assert result.schema.attributes == ("N",)
        assert len(result) == 2

    def test_iteration(self):
        result = run_query(
            "range of f is Faculty retrieve (N = f.Name)", CATALOG
        )
        assert len(list(result)) == len(figure1_relation())

    def test_rewrite_flag_preserves_semantics(self):
        raw = run_query(SUPERSTAR_QUEL, CATALOG, rewrite=False)
        rewritten = run_query(SUPERSTAR_QUEL, CATALOG, rewrite=True)
        assert sorted(raw.rows) == sorted(rewritten.rows)
        assert rewritten.stats.comparisons < raw.stats.comparisons

    def test_semantic_flag_attaches_report(self):
        result = run_query(SUPERSTAR_QUEL, CATALOG, semantic=True)
        assert result.semantic_report is not None
        assert result.semantic_report.removed_count == 2
        assert result.rows == [("Smith", 0, 30)]

    def test_semantic_off_by_default(self):
        result = run_query(SUPERSTAR_QUEL, CATALOG)
        assert result.semantic_report is None

    def test_parse_errors_propagate(self):
        with pytest.raises(ParseError):
            run_query("retrieve (N = f.Name)", CATALOG)

    def test_unknown_relation(self):
        with pytest.raises(TranslationError):
            run_query(
                "range of f is Nowhere retrieve (N = f.Name)", CATALOG
            )

    def test_stats_capture_scans(self):
        result = run_query(SUPERSTAR_QUEL, CATALOG)
        assert result.stats.scans_started == 3

    def test_semantic_equivalence_on_generated_data(self):
        catalog = {
            "Faculty": FacultyWorkload(
                faculty_count=40, continuous=True, full_fraction=1.0
            ).generate(13)
        }
        plain = run_query(SUPERSTAR_QUEL, catalog)
        semantic = run_query(SUPERSTAR_QUEL, catalog, semantic=True)
        assert set(plain.rows) == set(semantic.rows)
