"""Tests for the query parser."""

import pytest

from repro.errors import ParseError
from repro.query import (
    AndCond,
    AttributeRef,
    ComparisonCond,
    Constant,
    NotCond,
    OrCond,
    TemporalCond,
    parse_query,
)

SUPERSTAR = """
range of f1 is Faculty
range of f2 is Faculty
range of f3 is Faculty
retrieve into Stars (Name = f1.Name, ValidFrom = f1.ValidFrom, ValidTo = f2.ValidTo)
where f3.Rank = "Associate" and f1.Name = f2.Name and f1.Rank = "Assistant"
  and f2.Rank = "Full" and (f1 overlap f3) and (f2 overlap f3)
"""


class TestParseSuperstar:
    def test_ranges_in_order(self):
        query = parse_query(SUPERSTAR)
        assert query.range_variables() == ("f1", "f2", "f3")
        assert query.ranges["f1"] == "Faculty"

    def test_target_and_projections(self):
        query = parse_query(SUPERSTAR)
        assert query.target == "Stars"
        assert query.projections[0] == ("Name", AttributeRef("f1", "Name"))
        assert query.projections[2] == (
            "ValidTo",
            AttributeRef("f2", "ValidTo"),
        )

    def test_where_structure(self):
        query = parse_query(SUPERSTAR)
        assert isinstance(query.where, AndCond)
        parts = query.where.parts
        assert len(parts) == 6
        assert parts[0] == ComparisonCond(
            AttributeRef("f3", "Rank"), "=", Constant("Associate")
        )
        assert parts[4] == TemporalCond("f1", "overlap", "f3")


class TestParserFeatures:
    def test_minimal_query(self):
        query = parse_query(
            "range of f is Faculty retrieve (Name = f.Name)"
        )
        assert query.target is None
        assert query.where is None

    def test_or_and_not_precedence(self):
        query = parse_query(
            "range of f is R retrieve (N = f.Name) "
            "where f.V = 1 and f.V = 2 or not f.V = 3"
        )
        assert isinstance(query.where, OrCond)
        first, second = query.where.parts
        assert isinstance(first, AndCond)
        assert isinstance(second, NotCond)

    def test_parenthesised_conditions(self):
        query = parse_query(
            "range of f is R retrieve (N = f.Name) "
            "where f.V = 1 and (f.V = 2 or f.V = 3)"
        )
        assert isinstance(query.where, AndCond)
        assert isinstance(query.where.parts[1], OrCond)

    def test_numeric_comparison(self):
        query = parse_query(
            "range of f is R retrieve (N = f.Name) where f.ValidFrom < 100"
        )
        cond = query.where
        assert cond == ComparisonCond(
            AttributeRef("f", "ValidFrom"), "<", Constant(100)
        )

    def test_all_temporal_operators_parse(self):
        for op in (
            "overlap", "equal", "meets", "starts", "finishes",
            "during", "contains", "overlaps", "before", "after",
            "metby", "startedby", "finishedby", "overlappedby",
        ):
            query = parse_query(
                "range of a is R range of b is R "
                f"retrieve (N = a.Name) where a {op} b"
            )
            assert query.where == TemporalCond("a", op, "b")


class TestParseErrors:
    def test_missing_range(self):
        with pytest.raises(ParseError):
            parse_query("retrieve (N = f.Name)")

    def test_duplicate_range_variable(self):
        with pytest.raises(ParseError):
            parse_query(
                "range of f is R range of f is S retrieve (N = f.Name)"
            )

    def test_unknown_variable_in_projection(self):
        with pytest.raises(ParseError):
            parse_query("range of f is R retrieve (N = g.Name)")

    def test_unknown_variable_in_temporal(self):
        with pytest.raises(ParseError):
            parse_query(
                "range of f is R retrieve (N = f.Name) where f overlap g"
            )

    def test_trailing_garbage(self):
        with pytest.raises(ParseError):
            parse_query("range of f is R retrieve (N = f.Name) extra")

    def test_malformed_target_list(self):
        with pytest.raises(ParseError):
            parse_query("range of f is R retrieve (f.Name)")
