"""Tests for AST -> logical algebra translation (desugaring)."""

from itertools import combinations

import pytest

from repro.allen import ALL_RELATIONS
from repro.errors import TranslationError
from repro.model import Interval
from repro.query import parse_query, temporal_predicate, translate
from repro.algebra import LProduct, LProject, LSelect, Rel, compile_plan
from repro.relational import RowSchema
from repro.workload import figure1_relation

CATALOG = {"Faculty": figure1_relation()}

SMALL_INTERVALS = [Interval(a, b) for a, b in combinations(range(6), 2)]


class TestTranslateStructure:
    def test_single_range(self):
        plan = translate(
            parse_query("range of f is Faculty retrieve (Name = f.Name)"),
            CATALOG,
        )
        assert isinstance(plan, LProject)
        assert isinstance(plan.child, Rel)
        assert plan.schema() == RowSchema.of("Name")

    def test_products_left_deep(self):
        plan = translate(
            parse_query(
                "range of a is Faculty range of b is Faculty "
                "range of c is Faculty retrieve (N = a.Name)"
            ),
            CATALOG,
        )
        product = plan.child
        assert isinstance(product, LProduct)
        assert isinstance(product.left, LProduct)
        assert isinstance(product.right, Rel)
        assert product.right.variable == "c"

    def test_where_becomes_selection(self):
        plan = translate(
            parse_query(
                "range of f is Faculty retrieve (N = f.Name) "
                'where f.Rank = "Full"'
            ),
            CATALOG,
        )
        assert isinstance(plan.child, LSelect)

    def test_unknown_relation(self):
        with pytest.raises(TranslationError):
            translate(
                parse_query("range of f is Nowhere retrieve (N = f.Name)"),
                CATALOG,
            )


class TestTemporalDesugaring:
    def test_overlap_is_tquel_general_overlap(self):
        predicate = temporal_predicate("overlap", "f1", "f3")
        assert str(predicate) == (
            "f1.ValidFrom < f3.ValidTo AND f3.ValidFrom < f1.ValidTo"
        )

    def test_during_strict_inequalities(self):
        predicate = temporal_predicate("during", "a", "b")
        assert str(predicate) == (
            "b.ValidFrom < a.ValidFrom AND a.ValidTo < b.ValidTo"
        )

    def test_unknown_operator(self):
        with pytest.raises(TranslationError):
            temporal_predicate("sideways", "a", "b")

    @pytest.mark.parametrize("relation", ALL_RELATIONS)
    def test_desugaring_is_faithful(self, relation):
        """Evaluating the desugared predicate over rows equals the Allen
        relation over the corresponding intervals — exhaustively."""
        name = relation.value.replace("-", "")
        predicate = temporal_predicate(name, "a", "b")
        schema = RowSchema.of(
            "a.ValidFrom", "a.ValidTo", "b.ValidFrom", "b.ValidTo"
        )
        compiled = predicate.compile_against(schema)
        for x in SMALL_INTERVALS:
            for y in SMALL_INTERVALS:
                row = (x.start, x.end, y.start, y.end)
                assert compiled(row) == relation.holds(x, y)


class TestEndToEnd:
    def test_projection_with_rename(self):
        plan = translate(
            parse_query(
                "range of f is Faculty "
                "retrieve (Who = f.Name, Start = f.ValidFrom) "
                'where f.Rank = "Assistant"'
            ),
            CATALOG,
        )
        rows = compile_plan(plan, CATALOG).run()
        assert ("Smith", 0) in rows
        assert ("Jones", 0) in rows
        assert ("Kim", 30) in rows

    def test_temporal_join_query(self):
        plan = translate(
            parse_query(
                "range of a is Faculty range of b is Faculty "
                "retrieve (X = a.Name, Y = b.Name) where a before b"
            ),
            CATALOG,
        )
        rows = compile_plan(plan, CATALOG).run()
        # Kim's tuples start at 30; several earlier tuples precede them
        # with a gap.
        assert ("Smith", "Kim") in rows
        assert all(x != y or True for x, y in rows)
