"""Tests for the query-language lexer."""

import pytest

from repro.errors import LexerError
from repro.query import TokenKind, tokenize


def kinds(source):
    return [t.kind for t in tokenize(source)]


def texts(source):
    return [t.text for t in tokenize(source)[:-1]]


class TestTokenize:
    def test_keywords_case_insensitive(self):
        tokens = tokenize("RANGE of F1 is Faculty")
        assert tokens[0].kind is TokenKind.KEYWORD
        assert tokens[0].text == "range"
        assert tokens[2].kind is TokenKind.IDENT
        assert tokens[2].text == "F1"

    def test_qualified_attribute(self):
        (token, _eof) = tokenize("f1.ValidFrom")
        assert token.kind is TokenKind.QUALIFIED
        assert token.text == "f1.ValidFrom"

    def test_temporal_operator_keywords(self):
        tokens = tokenize("f1 overlap f3 and f1 during f2")
        assert tokens[1].kind is TokenKind.TEMPORAL
        assert tokens[5].kind is TokenKind.TEMPORAL

    def test_string_literals_both_quotes(self):
        assert texts('"Assistant"') == ["Assistant"]
        assert texts("'Full'") == ["Full"]

    def test_numbers_including_negative(self):
        tokens = tokenize("12 -5")
        assert [t.text for t in tokens[:-1]] == ["12", "-5"]
        assert all(t.kind is TokenKind.NUMBER for t in tokens[:-1])

    def test_comparison_operators_longest_match(self):
        assert texts("a <= b >= c != d < e > f = g") == [
            "a", "<=", "b", ">=", "c", "!=", "d", "<", "e", ">", "f", "=", "g",
        ]

    def test_punctuation(self):
        assert kinds("( , )")[:3] == [
            TokenKind.LPAREN,
            TokenKind.COMMA,
            TokenKind.RPAREN,
        ]

    def test_eof_always_present(self):
        assert tokenize("")[-1].kind is TokenKind.EOF

    def test_unterminated_string(self):
        with pytest.raises(LexerError):
            tokenize('"oops')

    def test_dangling_qualifier(self):
        with pytest.raises(LexerError):
            tokenize("f1.")

    def test_unexpected_character(self):
        with pytest.raises(LexerError) as excinfo:
            tokenize("a @ b")
        assert excinfo.value.position == 2
