"""Tests for the TQuel-style ``valid from ... to ...`` clause
(footnote 5: the original Superstar returns ``valid from begin of f1
to begin of f2``)."""

import pytest

from repro.errors import ParseError
from repro.query import AttributeRef, ValidClause, parse_query, run_query
from repro.workload import FacultyWorkload, figure1_relation

CATALOG = {"Faculty": figure1_relation()}

TQUEL_SUPERSTAR = """
range of f1 is Faculty
range of f2 is Faculty
range of f3 is Faculty
retrieve unique into Stars (Name = f1.Name)
valid from f1.ValidFrom to f2.ValidFrom
where f3.Rank = "Associate" and f1.Name = f2.Name
  and f1.Rank = "Assistant" and f2.Rank = "Full"
  and (f1 overlap f3) and (f2 overlap f3)
"""


class TestParsing:
    def test_clause_parsed(self):
        query = parse_query(TQUEL_SUPERSTAR)
        assert query.valid == ValidClause(
            AttributeRef("f1", "ValidFrom"), AttributeRef("f2", "ValidFrom")
        )
        assert query.unique

    def test_clause_optional(self):
        query = parse_query(
            "range of f is Faculty retrieve (N = f.Name)"
        )
        assert query.valid is None

    def test_malformed_clause(self):
        with pytest.raises(ParseError):
            parse_query(
                "range of f is Faculty retrieve (N = f.Name) "
                "valid from f.ValidFrom"
            )
        with pytest.raises(ParseError):
            parse_query(
                "range of f is Faculty retrieve (N = f.Name) "
                "valid f.ValidFrom to f.ValidTo"
            )

    def test_unknown_variable_in_clause(self):
        with pytest.raises(ParseError):
            parse_query(
                "range of f is Faculty retrieve (N = f.Name) "
                "valid from g.ValidFrom to f.ValidTo"
            )


class TestExecution:
    def test_tquel_superstar_result(self):
        result = run_query(TQUEL_SUPERSTAR, CATALOG)
        assert result.schema.attributes == ("Name", "ValidFrom", "ValidTo")
        # Smith's validity runs from becoming assistant (0) to
        # becoming full (12) — 'valid from begin of f1 to begin of f2'.
        assert result.rows == [("Smith", 0, 12)]

    def test_result_forms_valid_lifespans(self):
        catalog = {
            "Faculty": FacultyWorkload(
                faculty_count=60, continuous=True, full_fraction=1.0
            ).generate(21)
        }
        result = run_query(TQUEL_SUPERSTAR, catalog)
        assert result.rows
        for _name, valid_from, valid_to in result.rows:
            assert valid_from < valid_to

    def test_clause_composes_with_projection(self):
        result = run_query(
            "range of f is Faculty retrieve (Who = f.Name) "
            "valid from f.ValidFrom to f.ValidTo "
            'where f.Rank = "Assistant"',
            CATALOG,
        )
        assert result.schema.attributes == ("Who", "ValidFrom", "ValidTo")
        assert ("Smith", 0, 6) in result.rows
