"""Tests for the synthetic workload generators."""

import pytest

from repro.model import TS_ASC, ChronologicalOrdering, ContinuousLifespan
from repro.stats import collect_statistics
from repro.workload import (
    FacultyWorkload,
    PayrollWorkload,
    PoissonWorkload,
    expected_sums,
    figure1_relation,
    fixed_duration,
    geometric_duration,
    nested_relation,
    staircase_relation,
    uniform_duration,
)


class TestPoissonWorkload:
    def test_deterministic(self):
        w = PoissonWorkload(100, 0.5, fixed_duration(5))
        a = w.generate(seed=1)
        b = w.generate(seed=1)
        assert list(a.tuples) == list(b.tuples)
        c = w.generate(seed=2)
        assert list(a.tuples) != list(c.tuples)

    def test_cardinality(self):
        w = PoissonWorkload(57, 1.0, fixed_duration(3))
        assert len(w.generate(seed=0)) == 57

    def test_starts_are_nondecreasing(self):
        w = PoissonWorkload(200, 0.3, fixed_duration(4))
        rel = w.generate(seed=5)
        starts = [t.valid_from for t in rel]
        assert starts == sorted(starts)

    def test_rate_is_respected(self):
        w = PoissonWorkload(5000, 0.25, fixed_duration(2))
        stats = collect_statistics(w.generate(seed=9))
        assert stats.mean_inter_arrival == pytest.approx(4.0, rel=0.1)

    def test_duration_samplers(self):
        rng_probe = PoissonWorkload(300, 1.0, uniform_duration(3, 9))
        durations = {t.duration for t in rng_probe.generate(seed=4)}
        assert durations <= set(range(3, 10))
        assert len(durations) > 3

        geo = PoissonWorkload(2000, 1.0, geometric_duration(6.0))
        stats = collect_statistics(geo.generate(seed=4))
        assert stats.mean_duration == pytest.approx(6.0, rel=0.15)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            PoissonWorkload(10, 0.0, fixed_duration(1)).generate(0)
        with pytest.raises(ValueError):
            PoissonWorkload(-1, 1.0, fixed_duration(1)).generate(0)
        with pytest.raises(ValueError):
            fixed_duration(0)
        with pytest.raises(ValueError):
            uniform_duration(5, 2)
        with pytest.raises(ValueError):
            geometric_duration(0.5)


class TestShapeRelations:
    def test_staircase_has_bounded_overlap(self):
        rel = staircase_relation(50, step=10, duration=8)
        assert len(rel) == 50
        # At most one neighbour overlaps each tuple.
        spans = rel.project_intervals()
        for i, span in enumerate(spans):
            overlapping = sum(span.intersects(other) for other in spans) - 1
            assert overlapping <= 1

    def test_nested_relation_is_fully_nested(self):
        rel = nested_relation(10)
        spans = sorted(rel.project_intervals())
        for outer, inner in zip(spans, spans[1:]):
            assert outer.contains(inner)


class TestFacultyWorkload:
    def test_constraints_hold_continuous(self):
        rel = FacultyWorkload(faculty_count=100, continuous=True).generate(3)
        assert rel.validate() == []
        assert ContinuousLifespan().holds(rel)

    def test_constraints_hold_with_gaps(self):
        rel = FacultyWorkload(faculty_count=100, continuous=False).generate(3)
        assert rel.validate() == []
        ordering = ChronologicalOrdering(("Assistant", "Associate", "Full"))
        assert ordering.holds(rel)

    def test_full_fraction_controls_superstars_pool(self):
        none = FacultyWorkload(faculty_count=200, full_fraction=0.0).generate(1)
        assert "Full" not in none.attribute_values()
        everyone = FacultyWorkload(faculty_count=200, full_fraction=1.0).generate(1)
        full_count = len(everyone.where_value("Full"))
        assert full_count == 200

    def test_deterministic(self):
        w = FacultyWorkload(faculty_count=50)
        assert list(w.generate(7)) == list(w.generate(7))

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            FacultyWorkload(faculty_count=-1).generate(0)
        with pytest.raises(ValueError):
            FacultyWorkload(faculty_count=1, full_fraction=1.5).generate(0)
        with pytest.raises(ValueError):
            FacultyWorkload(faculty_count=1, min_period=0).generate(0)

    def test_figure1_relation_is_valid(self):
        rel = figure1_relation()
        assert rel.validate() == []
        assert rel.surrogates() == {"Smith", "Jones", "Kim"}


class TestPayrollWorkload:
    def test_grouped_by_department(self):
        records = PayrollWorkload(departments=5).generate(seed=2)
        seen = []
        for record in records:
            if not seen or seen[-1] != record.department:
                seen.append(record.department)
        assert len(seen) == len(set(seen)) == 5

    def test_shuffled_variant_same_multiset(self):
        w = PayrollWorkload(departments=4, employees_per_department=6)
        grouped = w.generate(seed=2)
        shuffled = w.generate_shuffled(seed=2)
        assert sorted(grouped) == sorted(shuffled)
        assert grouped != shuffled

    def test_expected_sums(self):
        records = PayrollWorkload(departments=3).generate(seed=2)
        sums = expected_sums(records)
        assert len(sums) == 3
        assert all(total > 0 for total in sums.values())

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            PayrollWorkload(departments=-1).generate(0)
        with pytest.raises(ValueError):
            PayrollWorkload(min_salary=100, max_salary=50).generate(0)
