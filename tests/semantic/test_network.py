"""Tests for qualitative interval constraint networks."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.allen import ALL_RELATIONS, AllenRelation as R, classify
from repro.allen.symbolic import Comparison, Endpoint, EndpointKind
from repro.errors import TemporalModelError
from repro.model import Interval
from repro.semantic import (
    ImplicationGraph,
    QualitativeNetwork,
    network_from_graph,
    possible_relations,
)


def ts(v):
    return Endpoint(v, EndpointKind.TS)


def te(v):
    return Endpoint(v, EndpointKind.TE)


def intra(*variables):
    g = ImplicationGraph()
    for v in variables:
        g.add_fact(Comparison.lt(ts(v), te(v)))
    return g


class TestNetworkBasics:
    def test_needs_two_variables(self):
        with pytest.raises(TemporalModelError):
            QualitativeNetwork(["a"])

    def test_default_edges_universal(self):
        net = QualitativeNetwork(["a", "b"])
        assert net.relation("a", "b") == frozenset(ALL_RELATIONS)

    def test_self_relation_is_equal(self):
        net = QualitativeNetwork(["a", "b"])
        assert net.relation("a", "a") == {R.EQUAL}

    def test_symmetric_storage(self):
        net = QualitativeNetwork(["a", "b"])
        net.constrain("a", "b", {R.BEFORE})
        assert net.relation("b", "a") == {R.AFTER}
        net.constrain("b", "a", {R.AFTER, R.MET_BY})
        assert net.relation("a", "b") == {R.BEFORE}

    def test_unknown_pair(self):
        net = QualitativeNetwork(["a", "b"])
        with pytest.raises(TemporalModelError):
            net.relation("a", "zzz")


class TestPropagation:
    def test_before_chain(self):
        net = QualitativeNetwork(["a", "b", "c"])
        net.constrain("a", "b", {R.BEFORE})
        net.constrain("b", "c", {R.BEFORE})
        assert net.propagate()
        assert net.relation("a", "c") == {R.BEFORE}
        assert net.entails("a", "c", {R.BEFORE})

    def test_during_chain(self):
        net = QualitativeNetwork(["x", "y", "z"])
        net.constrain("x", "y", {R.DURING})
        net.constrain("y", "z", {R.DURING})
        assert net.propagate()
        assert net.relation("x", "z") == {R.DURING}

    def test_meets_composition(self):
        net = QualitativeNetwork(["a", "b", "c"])
        net.constrain("a", "b", {R.MEETS})
        net.constrain("b", "c", {R.MEETS})
        assert net.propagate()
        assert net.relation("a", "c") == {R.BEFORE}

    def test_inconsistency_detected(self):
        net = QualitativeNetwork(["a", "b", "c"])
        net.constrain("a", "b", {R.BEFORE})
        net.constrain("b", "c", {R.BEFORE})
        net.constrain("a", "c", {R.AFTER})
        assert not net.propagate()
        assert not net.is_consistent

    def test_propagation_tightens_third_edges(self):
        # a during b, c before a => c cannot be after/met-by b, etc.
        net = QualitativeNetwork(["a", "b", "c"])
        net.constrain("a", "b", {R.DURING})
        net.constrain("c", "a", {R.BEFORE})
        assert net.propagate()
        assert R.AFTER not in net.relation("c", "b")

    @settings(max_examples=30, deadline=None)
    @given(
        st.tuples(
            st.integers(0, 12), st.integers(1, 6),
            st.integers(0, 12), st.integers(1, 6),
            st.integers(0, 12), st.integers(1, 6),
        )
    )
    def test_sound_on_concrete_intervals(self, params):
        """Constraining a network with the true pairwise relations of
        concrete intervals always stays consistent."""
        a = Interval(params[0], params[0] + params[1])
        b = Interval(params[2], params[2] + params[3])
        c = Interval(params[4], params[4] + params[5])
        net = QualitativeNetwork(["a", "b", "c"])
        net.constrain("a", "b", {classify(a, b)})
        net.constrain("b", "c", {classify(b, c)})
        net.constrain("a", "c", {classify(a, c)})
        assert net.propagate()


class TestPossibleRelations:
    def test_unconstrained_pair_allows_everything(self):
        g = intra("x", "y")
        assert possible_relations("x", "y", g) == frozenset(ALL_RELATIONS)

    def test_chronological_fact_restricts_to_before_meets(self):
        g = intra("f1", "f2")
        g.add_fact(Comparison.le(te("f1"), ts("f2")))
        assert possible_relations("f1", "f2", g) == {R.BEFORE, R.MEETS}

    def test_strict_fact_restricts_to_before(self):
        g = intra("f1", "f2")
        g.add_fact(Comparison.lt(te("f1"), ts("f2")))
        assert possible_relations("f1", "f2", g) == {R.BEFORE}

    def test_containment_facts(self):
        g = intra("x", "y")
        g.add_fact(Comparison.lt(ts("y"), ts("x")))
        g.add_fact(Comparison.lt(te("x"), te("y")))
        assert possible_relations("x", "y", g) == {R.DURING}


class TestNetworkFromGraph:
    def test_superstar_network(self):
        """The Section-5 knowledge, lifted to the qualitative level:
        f1 before f2 propagates against the overlap constraints."""
        g = intra("f1", "f2", "f3")
        g.add_fact(Comparison.lt(te("f1"), ts("f2")))
        # kept theta' constraints:
        g.add_fact(Comparison.lt(ts("f3"), te("f1")))
        g.add_fact(Comparison.lt(ts("f2"), te("f3")))
        net = network_from_graph(("f1", "f2", "f3"), g)
        assert net.propagate()
        assert net.relation("f1", "f2") == {R.BEFORE}
        # f3 must share a point with both f1 and f2's epoch: it cannot
        # be before f1 nor after f2.
        assert R.BEFORE not in net.relation("f3", "f1")
        assert R.AFTER not in net.relation("f3", "f2")
