"""Model-theoretic soundness of the semantic optimizer.

The optimizer's core contract: under any background knowledge B, the
simplified conjunction keep(C) is *equivalent* to C on every concrete
interval assignment satisfying B.  These tests verify that contract by
brute force — enumerate random conjunctions and backgrounds, then check
all small-domain interval assignments — rather than trusting the
implication graph's own logic to certify itself.
"""

from itertools import combinations, product

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.allen.symbolic import Comparison, CompOp, Conjunction, Endpoint, EndpointKind
from repro.model import Interval
from repro.semantic import (
    ImplicationGraph,
    eliminate_redundant,
    possible_relations,
)
from repro.allen import classify

VARIABLES = ("u", "v", "w")

#: Every endpoint term over the three variables.
ENDPOINTS = [
    Endpoint(var, kind)
    for var in VARIABLES
    for kind in (EndpointKind.TS, EndpointKind.TE)
]

#: All intervals over a 5-point domain — small enough to enumerate all
#: three-variable assignments (10^3 = 1000 per example).
DOMAIN_INTERVALS = [Interval(a, b) for a, b in combinations(range(5), 2)]

comparison_strategy = st.builds(
    Comparison,
    left=st.sampled_from(ENDPOINTS),
    op=st.sampled_from([CompOp.LT, CompOp.LE, CompOp.EQ]),
    right=st.sampled_from(ENDPOINTS),
)

conjunction_strategy = st.lists(
    comparison_strategy, min_size=1, max_size=4
).map(lambda cs: Conjunction(tuple(cs)))

background_strategy = st.lists(
    comparison_strategy, min_size=0, max_size=3
)


def assignments():
    """Every assignment of the three variables to domain intervals."""
    for triple in product(DOMAIN_INTERVALS, repeat=3):
        yield dict(zip(VARIABLES, triple))


def holds(comparisons, binding) -> bool:
    return all(c.evaluate(binding) for c in comparisons)


class TestEliminateRedundantSoundness:
    @settings(max_examples=60, deadline=None)
    @given(conjunction_strategy, background_strategy)
    def test_equivalence_on_all_models(self, conjunction, background_facts):
        """For every assignment satisfying the background, the original
        and simplified conjunctions agree."""
        background = ImplicationGraph()
        background.add_facts(background_facts)
        result = eliminate_redundant(conjunction, background)
        for binding in assignments():
            if not holds(background_facts, binding):
                continue
            assert conjunction.evaluate(binding) == result.kept.evaluate(
                binding
            )

    @settings(max_examples=60, deadline=None)
    @given(conjunction_strategy)
    def test_kept_is_subset(self, conjunction):
        result = eliminate_redundant(conjunction, ImplicationGraph())
        assert set(result.kept.comparisons) <= set(
            conjunction.comparisons
        )
        assert set(result.kept.comparisons) | set(result.removed) == set(
            conjunction.comparisons
        )


class TestImplicationSoundness:
    @settings(max_examples=60, deadline=None)
    @given(background_strategy, comparison_strategy)
    def test_implies_never_lies(self, facts, candidate):
        """If the graph claims facts => candidate, no concrete model of
        the facts may violate the candidate (completeness is not
        required — soundness is)."""
        graph = ImplicationGraph()
        graph.add_facts(facts)
        if not graph.implies(candidate):
            return
        for binding in assignments():
            if holds(facts, binding):
                assert candidate.evaluate(binding)


class TestPossibleRelationsSoundness:
    @settings(max_examples=40, deadline=None)
    @given(background_strategy)
    def test_true_relation_always_possible(self, facts):
        """For every model of the facts, the actually-holding Allen
        relation between u and v must be in possible_relations."""
        graph = ImplicationGraph()
        graph.add_facts(facts)
        allowed = possible_relations("u", "v", graph)
        for binding in assignments():
            if holds(facts, binding):
                assert classify(binding["u"], binding["v"]) in allowed
