"""Tests for the endpoint implication graph."""

from repro.allen.symbolic import Comparison, Conjunction, Endpoint, EndpointKind
from repro.semantic import ImplicationGraph


def ts(v):
    return Endpoint(v, EndpointKind.TS)


def te(v):
    return Endpoint(v, EndpointKind.TE)


class TestBasicImplication:
    def test_direct_fact(self):
        g = ImplicationGraph()
        g.add_fact(Comparison.lt(ts("a"), te("a")))
        assert g.implies(Comparison.lt(ts("a"), te("a")))
        assert g.implies(Comparison.le(ts("a"), te("a")))
        assert not g.implies(Comparison.lt(te("a"), ts("a")))

    def test_reflexive_le(self):
        g = ImplicationGraph()
        assert g.implies(Comparison.le(ts("a"), ts("a")))
        assert not g.implies(Comparison.lt(ts("a"), ts("a")))

    def test_transitive_strictness(self):
        g = ImplicationGraph()
        g.add_fact(Comparison.le(ts("a"), ts("b")))
        g.add_fact(Comparison.lt(ts("b"), ts("c")))
        g.add_fact(Comparison.le(ts("c"), ts("d")))
        assert g.implies(Comparison.lt(ts("a"), ts("d")))

    def test_nonstrict_chain_stays_nonstrict(self):
        g = ImplicationGraph()
        g.add_fact(Comparison.le(ts("a"), ts("b")))
        g.add_fact(Comparison.le(ts("b"), ts("c")))
        assert g.implies(Comparison.le(ts("a"), ts("c")))
        assert not g.implies(Comparison.lt(ts("a"), ts("c")))

    def test_equality_both_ways(self):
        g = ImplicationGraph()
        g.add_fact(Comparison.eq(te("a"), ts("b")))
        assert g.implies(Comparison.le(te("a"), ts("b")))
        assert g.implies(Comparison.le(ts("b"), te("a")))
        assert g.implies(Comparison.eq(ts("b"), te("a")))
        assert not g.implies(Comparison.lt(te("a"), ts("b")))

    def test_strict_found_via_longer_path(self):
        """A node first reached non-strictly must be revisited when a
        strict path appears."""
        g = ImplicationGraph()
        g.add_fact(Comparison.le(ts("a"), ts("b")))  # short, non-strict
        g.add_fact(Comparison.lt(ts("a"), ts("c")))
        g.add_fact(Comparison.le(ts("c"), ts("b")))  # longer, strict
        assert g.implies(Comparison.lt(ts("a"), ts("b")))


class TestConstants:
    def test_constant_ordering_implicit(self):
        g = ImplicationGraph()
        g.add_fact(Comparison.le(ts("a"), 5))
        g.add_fact(Comparison.le(10, ts("b")))
        # 5 < 10 is known arithmetic: a <= 5 < 10 <= b.
        assert g.implies(Comparison.lt(ts("a"), ts("b")))

    def test_direct_constant_comparison(self):
        g = ImplicationGraph()
        assert g.implies(Comparison.lt(3, 7))
        assert not g.implies(Comparison.lt(7, 3))
        assert g.implies(Comparison.le(3, 3))


class TestSuperstarInference:
    """The Section-5 derivation, literally."""

    def background(self):
        g = ImplicationGraph()
        for v in ("f1", "f2", "f3"):
            g.add_fact(Comparison.lt(ts(v), te(v)))
        # chronological ordering via same name + Assistant < Full:
        g.add_fact(Comparison.le(te("f1"), ts("f2")))
        return g

    def test_redundant_inequalities_follow(self):
        g = self.background()
        # kept: f3.TS < f1.TE and f2.TS < f3.TE
        g.add_fact(Comparison.lt(ts("f3"), te("f1")))
        g.add_fact(Comparison.lt(ts("f2"), te("f3")))
        # both removed conjuncts are implied:
        assert g.implies(Comparison.lt(ts("f1"), te("f3")))
        assert g.implies(Comparison.lt(ts("f3"), te("f2")))

    def test_kept_inequalities_do_not_follow(self):
        g = self.background()
        assert not g.implies(Comparison.lt(ts("f3"), te("f1")))
        assert not g.implies(Comparison.lt(ts("f2"), te("f3")))


class TestConsistency:
    def test_consistent_graph(self):
        g = ImplicationGraph()
        g.add_fact(Comparison.lt(ts("a"), te("a")))
        assert g.is_consistent()

    def test_strict_cycle_detected(self):
        g = ImplicationGraph()
        g.add_fact(Comparison.lt(ts("a"), ts("b")))
        g.add_fact(Comparison.le(ts("b"), ts("a")))
        assert not g.is_consistent()

    def test_nonstrict_cycle_is_fine(self):
        g = ImplicationGraph()
        g.add_fact(Comparison.eq(ts("a"), ts("b")))
        assert g.is_consistent()

    def test_copy_isolated(self):
        g = ImplicationGraph()
        g.add_fact(Comparison.lt(ts("a"), ts("b")))
        clone = g.copy()
        clone.add_fact(Comparison.lt(ts("b"), ts("c")))
        assert clone.implies(Comparison.lt(ts("a"), ts("c")))
        assert not g.implies(Comparison.lt(ts("a"), ts("c")))


class TestConjunction:
    def test_add_and_implies_all(self):
        g = ImplicationGraph()
        conj = Conjunction.of(
            Comparison.lt(ts("a"), ts("b")),
            Comparison.lt(ts("b"), ts("c")),
        )
        g.add_conjunction(conj)
        assert g.implies_all(conj)
        assert g.implies_all(
            Conjunction.of(Comparison.lt(ts("a"), ts("c")))
        )
