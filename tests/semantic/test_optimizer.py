"""Tests for the semantic optimizer driver on whole plans."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebra import compile_plan, optimize
from repro.allen.symbolic import Endpoint, EndpointKind
from repro.query import parse_query, translate
from repro.semantic import extract_context, semantically_optimize
from repro.superstar import SUPERSTAR_QUEL
from repro.workload import FacultyWorkload, figure1_relation


def superstar_plan(catalog):
    return optimize(translate(parse_query(SUPERSTAR_QUEL), catalog))


@pytest.fixture
def catalog():
    return {"Faculty": figure1_relation()}


class TestContextExtraction:
    def test_value_bindings(self, catalog):
        context = extract_context(superstar_plan(catalog), catalog)
        assert context.value_bindings == {
            "f1": "Assistant",
            "f2": "Full",
            "f3": "Associate",
        }

    def test_surrogate_equalities(self, catalog):
        context = extract_context(superstar_plan(catalog), catalog)
        assert frozenset(("f1", "f2")) in context.surrogate_equalities
        assert context.same_object("f1", "f2")
        assert not context.same_object("f1", "f3")

    def test_variable_relations(self, catalog):
        context = extract_context(superstar_plan(catalog), catalog)
        assert context.variable_relations == {
            "f1": "Faculty",
            "f2": "Faculty",
            "f3": "Faculty",
        }


class TestSuperstarOptimization:
    def test_two_redundant_conjuncts_removed(self, catalog):
        _plan, report = semantically_optimize(
            superstar_plan(catalog), catalog
        )
        assert report.removed_count == 2
        removed = {
            str(c) for f in report.findings for c in f.removed
        }
        assert removed == {"f1.TS < f3.TE", "f3.TS < f2.TE"}

    def test_derived_containment_found(self, catalog):
        _plan, report = semantically_optimize(
            superstar_plan(catalog), catalog
        )
        containments = report.containments()
        assert len(containments) == 1
        found = containments[0]
        assert found.container == "f3"
        assert found.start == Endpoint("f1", EndpointKind.TE)
        assert found.end == Endpoint("f2", EndpointKind.TS)
        assert found.strict  # continuity + intermediate rank

    def test_results_preserved(self, catalog):
        plan = superstar_plan(catalog)
        rewritten, _report = semantically_optimize(plan, catalog)
        assert sorted(compile_plan(plan, catalog).run()) == sorted(
            compile_plan(rewritten, catalog).run()
        )

    def test_fewer_comparisons_after_rewrite(self):
        catalog = {"Faculty": FacultyWorkload(faculty_count=40).generate(2)}
        plan = superstar_plan(catalog)
        rewritten, _report = semantically_optimize(plan, catalog)
        from repro.relational import EngineStats

        raw = EngineStats()
        new = EngineStats()
        a = sorted(compile_plan(plan, catalog, raw).run())
        b = sorted(compile_plan(rewritten, catalog, new).run())
        assert a == b
        assert new.comparisons <= raw.comparisons

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_equivalence_on_random_data(self, seed):
        catalog = {
            "Faculty": FacultyWorkload(faculty_count=15).generate(seed)
        }
        plan = superstar_plan(catalog)
        rewritten, _report = semantically_optimize(plan, catalog)
        assert sorted(compile_plan(plan, catalog).run()) == sorted(
            compile_plan(rewritten, catalog).run()
        )


class TestWithoutConstraints:
    def test_no_constraints_no_removal(self):
        """Without declared constraints the optimizer must not touch
        the predicate — the knowledge comes from the schema, not the
        data."""
        from repro.model import TemporalRelation

        bare = figure1_relation()
        stripped = TemporalRelation(bare.schema, bare.tuples)  # no constraints
        catalog = {"Faculty": stripped}
        _plan, report = semantically_optimize(
            superstar_plan(catalog), catalog
        )
        assert report.removed_count == 0
        assert report.containments() == []

    def test_gapped_careers_nonstrict(self):
        """Chronological ordering without continuity yields only the
        non-strict fact, so the containment is found but not strict."""
        rel = FacultyWorkload(faculty_count=20, continuous=False).generate(3)
        catalog = {"Faculty": rel}
        _plan, report = semantically_optimize(
            superstar_plan(catalog), catalog
        )
        assert report.removed_count == 2
        containments = report.containments()
        assert len(containments) == 1
        assert not containments[0].strict
