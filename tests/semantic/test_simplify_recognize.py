"""Tests for redundancy elimination and operator recognition."""

from repro.allen import AllenRelation, constraint_for, general_overlap_constraint
from repro.allen.symbolic import Comparison, Conjunction, Endpoint, EndpointKind
from repro.semantic import (
    GENERAL_OVERLAP,
    ImplicationGraph,
    eliminate_redundant,
    equivalent_under,
    is_redundant,
    recognize_allen,
    recognize_derived_containment,
)


def ts(v):
    return Endpoint(v, EndpointKind.TS)


def te(v):
    return Endpoint(v, EndpointKind.TE)


def intra(*variables):
    g = ImplicationGraph()
    for v in variables:
        g.add_fact(Comparison.lt(ts(v), te(v)))
    return g


class TestEliminateRedundant:
    def superstar_theta(self):
        """The four-inequality theta' of the Superstar less-than join."""
        return Conjunction.of(
            Comparison.lt(ts("f1"), te("f3")),
            Comparison.lt(ts("f3"), te("f1")),
            Comparison.lt(ts("f2"), te("f3")),
            Comparison.lt(ts("f3"), te("f2")),
        )

    def test_superstar_reduction(self):
        background = intra("f1", "f2", "f3")
        background.add_fact(Comparison.le(te("f1"), ts("f2")))
        result = eliminate_redundant(self.superstar_theta(), background)
        assert len(result.removed) == 2
        assert set(result.kept.comparisons) == {
            Comparison.lt(ts("f3"), te("f1")),
            Comparison.lt(ts("f2"), te("f3")),
        }

    def test_no_reduction_without_chronological_fact(self):
        background = intra("f1", "f2", "f3")
        result = eliminate_redundant(self.superstar_theta(), background)
        assert not result.any_removed

    def test_duplicate_conjunct_removed(self):
        conj = Conjunction.of(
            Comparison.lt(ts("a"), ts("b")),
            Comparison.lt(ts("a"), ts("b")),
        )
        result = eliminate_redundant(conj, ImplicationGraph())
        assert len(result.kept) == 1

    def test_intra_tuple_conjunct_removed(self):
        conj = Conjunction.of(
            Comparison.lt(ts("a"), te("a")),
            Comparison.lt(te("a"), ts("b")),
        )
        result = eliminate_redundant(conj, intra("a", "b"))
        assert result.kept.comparisons == (
            Comparison.lt(te("a"), ts("b")),
        )

    def test_is_redundant_direct(self):
        others = Conjunction.of(Comparison.lt(ts("a"), ts("b")))
        weaker = Comparison.le(ts("a"), ts("b"))
        assert is_redundant(weaker, others, ImplicationGraph())
        assert not is_redundant(
            Comparison.lt(ts("b"), ts("a")), others, ImplicationGraph()
        )


class TestEquivalentUnder:
    def test_reflexive(self):
        conj = constraint_for(AllenRelation.DURING, "x", "y")
        assert equivalent_under(conj, conj, intra("x", "y"))

    def test_rephrased_equivalence(self):
        """x during y stated with an extra redundant conjunct."""
        during = constraint_for(AllenRelation.DURING, "x", "y")
        padded = during.conjoin(
            Conjunction.of(Comparison.lt(ts("y"), te("x")))
        )
        assert equivalent_under(during, padded, intra("x", "y"))

    def test_non_equivalence(self):
        during = constraint_for(AllenRelation.DURING, "x", "y")
        before = constraint_for(AllenRelation.BEFORE, "x", "y")
        assert not equivalent_under(during, before, intra("x", "y"))


class TestRecognizeAllen:
    def test_during_recognized(self):
        conj = constraint_for(AllenRelation.DURING, "x", "y")
        assert (
            recognize_allen(conj, "x", "y", intra("x", "y"))
            is AllenRelation.DURING
        )

    def test_general_overlap_recognized(self):
        conj = general_overlap_constraint("x", "y")
        assert (
            recognize_allen(conj, "x", "y", intra("x", "y"))
            == GENERAL_OVERLAP
        )

    def test_padded_condition_still_recognized(self):
        conj = constraint_for(AllenRelation.BEFORE, "x", "y").conjoin(
            Conjunction.of(Comparison.lt(ts("x"), te("y")))
        )
        assert (
            recognize_allen(conj, "x", "y", intra("x", "y"))
            is AllenRelation.BEFORE
        )

    def test_unrelated_condition_not_recognized(self):
        conj = Conjunction.of(Comparison.lt(ts("x"), ts("y")))
        assert recognize_allen(conj, "x", "y", intra("x", "y")) is None


class TestRecognizeDerivedContainment:
    def superstar_kept(self):
        return Conjunction.of(
            Comparison.lt(ts("f3"), te("f1")),
            Comparison.lt(ts("f2"), te("f3")),
        )

    def background(self, strict: bool):
        g = intra("f1", "f2", "f3")
        fact = (
            Comparison.lt(te("f1"), ts("f2"))
            if strict
            else Comparison.le(te("f1"), ts("f2"))
        )
        g.add_fact(fact)
        return g

    def test_superstar_pattern_strict(self):
        found = recognize_derived_containment(
            self.superstar_kept(), "f3", self.background(strict=True)
        )
        assert found is not None
        assert found.start == te("f1")
        assert found.end == ts("f2")
        assert found.strict

    def test_superstar_pattern_nonstrict(self):
        found = recognize_derived_containment(
            self.superstar_kept(), "f3", self.background(strict=False)
        )
        assert found is not None
        assert not found.strict

    def test_requires_interval_order(self):
        # Without te(f1) <= ts(f2), [f1.TE, f2.TS) may be inverted.
        found = recognize_derived_containment(
            self.superstar_kept(), "f3", intra("f1", "f2", "f3")
        )
        assert found is None

    def test_wrong_container(self):
        found = recognize_derived_containment(
            self.superstar_kept(), "f1", self.background(strict=True)
        )
        assert found is None

    def test_wrong_shape(self):
        conj = Conjunction.of(
            Comparison.lt(ts("f3"), te("f1")),
            Comparison.lt(ts("f3"), te("f2")),
        )
        assert (
            recognize_derived_containment(
                conj, "f3", self.background(strict=True)
            )
            is None
        )

    def test_as_conjunction_roundtrip(self):
        found = recognize_derived_containment(
            self.superstar_kept(), "f3", self.background(strict=True)
        )
        rebuilt = found.as_conjunction()
        assert equivalent_under(
            rebuilt, self.superstar_kept(), self.background(strict=True)
        )
