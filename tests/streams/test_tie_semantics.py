"""Tie and boundary semantics, audited in one place (closed-open
lifespans, Section 2's conventions).

Every temporal predicate in the repo is *strict* at the boundary:
an interval ending exactly where another starts (``a.TE == b.TS``) does
not overlap it, does not contain it, and is not "before" it unless the
inequality is strict.  This module pins those conventions down for
every processor — registry cells on **both** execution backends, plus
the non-registry processors — against the nested-loop oracle, on
workloads built almost entirely out of ties: zero-gap adjacency, shared
endpoints, duplicate rows, and equal sweep keys.
"""

import pytest

from repro.model import TE_ASC, TS_ASC, TS_DESC, TemporalTuple, sort_tuples
from repro.model.sortorder import SortOrder
from repro.streams import (
    BeforeJoinSortedInner,
    BeforeJoinSweep,
    EqualJoin,
    FinishesJoin,
    MeetsJoin,
    NestedLoopJoin,
    NestedLoopSelfSemijoin,
    NestedLoopSemijoin,
    StartsJoin,
    TemporalOperator,
    TupleStream,
    UnboundedStateJoin,
    before_predicate,
    contain_predicate,
    contained_predicate,
    overlap_predicate,
    supported_entries,
)

from .conftest import make_stream, pair_values, values


def T(value, ts, te):
    return TemporalTuple(f"s{value}", value, ts, te)


#: Workloads made of boundary cases.  Every pair of intervals in each
#: list shares an endpoint with, duplicates, or abuts another.
TIE_WORKLOADS = [
    # zero-gap chains: TE == next TS everywhere
    [T(0, 0, 5), T(1, 5, 9), T(2, 9, 12), T(3, 12, 15)],
    # duplicates plus shared starts and shared ends
    [T(0, 1, 9), T(1, 1, 9), T(2, 1, 5), T(3, 4, 9), T(4, 1, 9)],
    # minimal-width intervals at equal points
    [T(0, 3, 4), T(1, 3, 4), T(2, 4, 5), T(3, 2, 5), T(4, 3, 5)],
    # nesting with every boundary shared somewhere
    [T(0, 0, 10), T(1, 0, 5), T(2, 5, 10), T(3, 2, 8), T(4, 2, 8)],
    # all identical
    [T(0, 2, 6), T(1, 2, 6), T(2, 2, 6)],
    # empty and singleton edges
    [],
    [T(0, 7, 8)],
]

BINARY_OPERATORS = {
    TemporalOperator.CONTAIN_JOIN: (contain_predicate, "join"),
    TemporalOperator.CONTAIN_SEMIJOIN: (contain_predicate, "semi"),
    TemporalOperator.CONTAINED_SEMIJOIN: (contained_predicate, "semi"),
    TemporalOperator.OVERLAP_JOIN: (overlap_predicate, "join"),
    TemporalOperator.OVERLAP_SEMIJOIN: (overlap_predicate, "semi"),
    TemporalOperator.BEFORE_SEMIJOIN: (before_predicate, "semi"),
}

SELF_OPERATORS = {
    TemporalOperator.SELF_CONTAINED_SEMIJOIN: contained_predicate,
    TemporalOperator.SELF_CONTAIN_SEMIJOIN: contain_predicate,
}


def workload_pairs():
    for i, xs in enumerate(TIE_WORKLOADS):
        for j, ys in enumerate(TIE_WORKLOADS):
            yield pytest.param(xs, ys, id=f"x{i}-y{j}")


def registry_cases():
    for operator, (predicate, kind) in BINARY_OPERATORS.items():
        for entry in supported_entries(operator):
            for backend in entry.backends:
                yield pytest.param(
                    entry,
                    predicate,
                    kind,
                    backend,
                    id=(
                        f"{operator.value}[{entry.x_order}/{entry.y_order}]"
                        f"-{backend}"
                    ),
                )


@pytest.mark.parametrize("entry, predicate, kind, backend", registry_cases())
def test_registry_cell_tie_semantics(entry, predicate, kind, backend):
    """Every supported table cell, on every backend, agrees with the
    strict-predicate oracle on tie-saturated inputs."""
    for xs in TIE_WORKLOADS:
        for ys in TIE_WORKLOADS:
            processor = entry.build(
                make_stream(xs, entry.x_order, "X"),
                make_stream(ys, entry.y_order, "Y"),
                backend=backend,
            )
            result = processor.run()
            if kind == "join":
                oracle = NestedLoopJoin(
                    make_stream(xs, TS_ASC, "X"),
                    make_stream(ys, TS_ASC, "Y"),
                    predicate,
                ).run()
                assert pair_values(result) == pair_values(oracle)
            else:
                oracle = NestedLoopSemijoin(
                    make_stream(xs, TS_ASC, "X"),
                    make_stream(ys, TS_ASC, "Y"),
                    predicate,
                ).run()
                assert values(result) == values(oracle)


def self_registry_cases():
    for operator, predicate in SELF_OPERATORS.items():
        for entry in supported_entries(operator):
            for backend in entry.backends:
                yield pytest.param(
                    entry,
                    predicate,
                    backend,
                    id=f"{operator.value}[{entry.x_order}]-{backend}",
                )


@pytest.mark.parametrize("entry, predicate, backend", self_registry_cases())
def test_self_cell_tie_semantics(entry, predicate, backend):
    for xs in TIE_WORKLOADS:
        processor = entry.build(
            make_stream(xs, entry.x_order, "X"), backend=backend
        )
        result = processor.run()
        oracle = NestedLoopSelfSemijoin(
            make_stream(xs, TS_ASC, "X"), predicate
        ).run()
        assert values(result) == values(oracle)


# ----------------------------------------------------------------------
# Non-registry processors: the Allen equality joins, the Before joins,
# and the deliberately unbounded sweep.
# ----------------------------------------------------------------------
def equal_order():
    return SortOrder.by_ts(secondary_te=True)


EXTRA_PROCESSORS = [
    pytest.param(
        lambda x, y: BeforeJoinSweep(x, y),
        TS_ASC,
        TS_ASC,
        before_predicate,
        "join",
        id="before-join-sweep",
    ),
    pytest.param(
        lambda x, y: BeforeJoinSortedInner(x, y),
        TS_ASC,
        TS_DESC,
        before_predicate,
        "join",
        id="before-join-sorted-inner",
    ),
    pytest.param(
        lambda x, y: UnboundedStateJoin(x, y, overlap_predicate),
        TS_ASC,
        TS_ASC,
        overlap_predicate,
        "join",
        id="unbounded-overlap-join",
    ),
    pytest.param(
        lambda x, y: EqualJoin(x, y),
        equal_order(),
        equal_order(),
        lambda a, b: a.valid_from == b.valid_from
        and a.valid_to == b.valid_to,
        "join",
        id="equal-join",
    ),
    pytest.param(
        lambda x, y: MeetsJoin(x, y),
        TE_ASC,
        TS_ASC,
        lambda a, b: a.valid_to == b.valid_from,
        "join",
        id="meets-join",
    ),
    pytest.param(
        lambda x, y: StartsJoin(x, y),
        TS_ASC,
        TS_ASC,
        lambda a, b: a.valid_from == b.valid_from
        and a.valid_to < b.valid_to,
        "join",
        id="starts-join",
    ),
    pytest.param(
        lambda x, y: FinishesJoin(x, y),
        TE_ASC,
        TE_ASC,
        lambda a, b: a.valid_to == b.valid_to
        and a.valid_from > b.valid_from,
        "join",
        id="finishes-join",
    ),
]


@pytest.mark.parametrize(
    "factory, x_order, y_order, predicate, kind", EXTRA_PROCESSORS
)
def test_non_registry_processor_tie_semantics(
    factory, x_order, y_order, predicate, kind
):
    for xs in TIE_WORKLOADS:
        for ys in TIE_WORKLOADS:
            processor = factory(
                make_stream(xs, x_order, "X"), make_stream(ys, y_order, "Y")
            )
            result = processor.run()
            oracle = NestedLoopJoin(
                make_stream(xs, TS_ASC, "X"),
                make_stream(ys, TS_ASC, "Y"),
                predicate,
            ).run()
            assert pair_values(result) == pair_values(oracle)


def test_zero_width_boundary_is_exclusive():
    """The defining boundary case: ``[0, 5)`` and ``[5, 9)`` share the
    timepoint 5 *on paper* but not under closed-open semantics — they
    must not overlap, and `before` must also be false (no gap)."""
    a, b = T(0, 0, 5), T(1, 5, 9)
    assert not overlap_predicate(a, b)
    assert not overlap_predicate(b, a)
    assert not before_predicate(a, b)  # strict: needs TE < TS
    assert before_predicate(T(2, 0, 4), b)
    assert not contain_predicate(T(3, 0, 9), T(4, 0, 5))  # shared start
    assert not contain_predicate(T(5, 0, 9), T(6, 5, 9))  # shared end
    assert contain_predicate(T(7, 0, 9), T(8, 1, 8))
