"""Per-pass read counters across restarts.

``restart()`` resets order verification but deliberately never the
cumulative counters; before :attr:`TupleStream.pass_reads` a multi-pass
run (a nested-loop inner, or a DEGRADE re-sort) reported one aggregated
``tuples_read`` total with no way to see what each pass cost.  These
tests pin the per-pass breakdown — including through the columnar batch
drain and a traced DEGRADE recovery.
"""

from repro.model import TS_ASC, TemporalTuple, sort_tuples
from repro.obs.trace import Tracer, set_tracer
from repro.resilience import RecoveryPolicy
from repro.resilience.executor import execute_entry
from repro.streams import TemporalOperator, TupleStream, lookup


def tuples(n, start=0):
    return [
        TemporalTuple(f"s{i}", i, start + i, start + i + 5) for i in range(n)
    ]


def drain(stream):
    return list(stream.drain())


class TestPassReads:
    def test_single_pass(self):
        stream = TupleStream.from_tuples(tuples(7), order=TS_ASC)
        drain(stream)
        assert stream.passes == 1
        assert stream.tuples_read == 7
        assert stream.pass_reads == [7]

    def test_restart_reports_each_pass_separately(self):
        stream = TupleStream.from_tuples(tuples(5), order=TS_ASC)
        drain(stream)
        stream.restart()
        drain(stream)
        # The cumulative counters aggregate; the breakdown does not.
        assert stream.passes == 2
        assert stream.tuples_read == 10
        assert stream.pass_reads == [5, 5]

    def test_partial_final_pass(self):
        stream = TupleStream.from_tuples(tuples(5), order=TS_ASC)
        drain(stream)
        stream.restart()
        stream.advance()
        stream.advance()
        assert stream.pass_reads == [5, 2]

    def test_batch_pass_accounting_matches_cursor_passes(self):
        stream = TupleStream.from_tuples(tuples(5), order=TS_ASC)
        stream.note_batch_pass(5)
        assert stream.passes == 1
        assert stream.tuples_read == 5
        assert stream.pass_reads == [5]

    def test_nested_loop_inner_shows_one_entry_per_outer_tuple(self):
        from repro.streams import NestedLoopJoin, overlap_predicate

        xs, ys = tuples(3), tuples(4)
        inner = TupleStream.from_tuples(ys, order=TS_ASC, name="Y")
        NestedLoopJoin(
            TupleStream.from_tuples(xs, order=TS_ASC, name="X"),
            inner,
            overlap_predicate,
        ).run()
        assert inner.passes == len(inner.pass_reads) == len(xs)
        assert sum(inner.pass_reads) == inner.tuples_read
        assert all(n == len(ys) for n in inner.pass_reads)


class TestPassEvents:
    def test_stream_pass_event_carries_per_pass_read_count(self):
        tracer = Tracer("t")
        previous = set_tracer(tracer)
        try:
            with tracer.span("q"):
                stream = TupleStream.from_tuples(tuples(4), order=TS_ASC)
                drain(stream)
                stream.restart()
                stream.advance()
                drain(stream)
        finally:
            set_tracer(previous)
        (span,) = tracer.find("q")
        events = [e for e in span.events if e["name"] == "stream.pass"]
        assert [e["attributes"]["read"] for e in events] == [4, 4]
        assert [e["attributes"]["number"] for e in events] == [1, 2]

    def test_degrade_resort_reports_passes_per_attempt(self):
        entry = lookup(TemporalOperator.OVERLAP_JOIN, TS_ASC, TS_ASC)
        xs = sort_tuples(tuples(12), TS_ASC)
        shuffled = [xs[3], xs[0]] + xs[4:] + [xs[1], xs[2]]
        ys = sort_tuples(tuples(12, start=2), TS_ASC)
        tracer = Tracer("t")
        previous = set_tracer(tracer)
        try:
            with tracer.span("q"):
                outcome = execute_entry(
                    entry,
                    shuffled,
                    ys,
                    policy=RecoveryPolicy.DEGRADE,
                )
        finally:
            set_tracer(previous)
        assert outcome.report.fallbacks
        attempts = tracer.find("attempt")
        assert [a.attributes["number"] for a in attempts] == [1, 2]
        # The failed attempt and the re-sorted retry each report their
        # own single pass — not one aggregated two-pass total.
        (span,) = tracer.find("q")
        resorts = [
            e
            for a in attempts
            for e in a.events
            if e["name"] == "recovery.re-sort"
        ] + [e for e in span.events if e["name"] == "recovery.re-sort"]
        assert resorts
        assert outcome.metrics.passes_x == 1
        assert outcome.metrics.pass_reads_x == [
            outcome.metrics.tuples_read_x
        ]
