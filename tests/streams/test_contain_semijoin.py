"""Tests for Contain-/Contained-semijoin processors (Section 4.2.2)."""

import pytest
from hypothesis import given, settings

from repro.errors import UnsupportedSortOrderError
from repro.model import TE_ASC, TS_ASC, TemporalTuple
from repro.streams import (
    ContainedSemijoinTeTs,
    ContainedSemijoinTsTs,
    ContainSemijoinTsTe,
    ContainSemijoinTsTs,
    NestedLoopSemijoin,
    contain_predicate,
    contained_predicate,
)

from .conftest import make_stream, tuple_lists, values


def contain_oracle(xs, ys):
    return values(
        NestedLoopSemijoin(
            make_stream(xs, TS_ASC), make_stream(ys, TS_ASC), contain_predicate
        ).run()
    )


def contained_oracle(xs, ys):
    return values(
        NestedLoopSemijoin(
            make_stream(xs, TS_ASC),
            make_stream(ys, TS_ASC),
            contained_predicate,
        ).run()
    )


class TestContainSemijoinTsTe:
    """The Figure-6 one-buffer algorithm."""

    def test_figure6_flavoured_example(self):
        xs = [
            TemporalTuple("x1", "x1", 0, 10),
            TemporalTuple("x2", "x2", 4, 20),
        ]
        ys = [
            TemporalTuple("y1", "y1", 1, 3),
            TemporalTuple("y2", "y2", 2, 8),
            TemporalTuple("y3", "y3", 6, 15),
        ]
        semi = ContainSemijoinTsTe(
            make_stream(xs, TS_ASC), make_stream(ys, TE_ASC)
        )
        assert values(semi.run()) == ["x1", "x2"]

    def test_zero_state_tuples(self, random_tuples):
        """Table 1, entry (d): the local workspace is only the two
        input buffers — no state tuple is ever kept."""
        xs, ys = random_tuples(200, seed=1), random_tuples(200, seed=2)
        semi = ContainSemijoinTsTe(
            make_stream(xs, TS_ASC), make_stream(ys, TE_ASC)
        )
        semi.run()
        assert semi.metrics.workspace_high_water == 0
        assert semi.metrics.buffers == 2
        assert semi.metrics.total_footprint == 2

    def test_single_pass_each(self, random_tuples):
        xs, ys = random_tuples(100, seed=3), random_tuples(100, seed=4)
        semi = ContainSemijoinTsTe(
            make_stream(xs, TS_ASC), make_stream(ys, TE_ASC)
        )
        semi.run()
        assert semi.metrics.passes_x == 1
        assert semi.metrics.passes_y == 1

    def test_each_x_emitted_at_most_once(self, random_tuples):
        xs = random_tuples(60, seed=5)
        # Many tiny Y tuples inside everything.
        ys = [TemporalTuple(f"y{i}", i, 150 + i, 151 + i) for i in range(5)]
        xs = [TemporalTuple("big", "big", 0, 400)] + xs
        semi = ContainSemijoinTsTe(
            make_stream(xs, TS_ASC), make_stream(ys, TE_ASC)
        )
        out = semi.run()
        assert len(out) == len(set((t.surrogate, t.value) for t in out))

    def test_rejects_wrong_orders(self, random_tuples):
        xs = random_tuples(5)
        with pytest.raises(UnsupportedSortOrderError):
            ContainSemijoinTsTe(
                make_stream(xs, TS_ASC), make_stream(xs, TS_ASC)
            )

    def test_output_preserves_x_order(self, random_tuples):
        xs, ys = random_tuples(80, seed=6), random_tuples(80, seed=7)
        semi = ContainSemijoinTsTe(
            make_stream(xs, TS_ASC), make_stream(ys, TE_ASC)
        )
        out = semi.run()
        assert TS_ASC.is_sorted(out)

    @settings(max_examples=60, deadline=None)
    @given(tuple_lists, tuple_lists)
    def test_matches_nested_loop(self, xs, ys):
        semi = ContainSemijoinTsTe(
            make_stream(xs, TS_ASC), make_stream(ys, TE_ASC)
        )
        assert values(semi.run()) == contain_oracle(xs, ys)


class TestContainedSemijoinTeTs:
    """Figure 6 with roles swapped: output the contained side."""

    def test_zero_state_tuples(self, random_tuples):
        xs, ys = random_tuples(200, seed=8), random_tuples(200, seed=9)
        semi = ContainedSemijoinTeTs(
            make_stream(xs, TE_ASC), make_stream(ys, TS_ASC)
        )
        semi.run()
        assert semi.metrics.workspace_high_water == 0

    def test_output_preserves_x_te_order(self, random_tuples):
        xs, ys = random_tuples(80, seed=10), random_tuples(80, seed=11)
        semi = ContainedSemijoinTeTs(
            make_stream(xs, TE_ASC), make_stream(ys, TS_ASC)
        )
        assert TE_ASC.is_sorted(semi.run())

    def test_rejects_wrong_orders(self, random_tuples):
        xs = random_tuples(5)
        with pytest.raises(UnsupportedSortOrderError):
            ContainedSemijoinTeTs(
                make_stream(xs, TS_ASC), make_stream(xs, TS_ASC)
            )

    @settings(max_examples=60, deadline=None)
    @given(tuple_lists, tuple_lists)
    def test_matches_nested_loop(self, xs, ys):
        semi = ContainedSemijoinTeTs(
            make_stream(xs, TE_ASC), make_stream(ys, TS_ASC)
        )
        assert values(semi.run()) == contained_oracle(xs, ys)


class TestContainSemijoinTsTs:
    def test_bounded_state(self):
        xs = [TemporalTuple(f"x{i}", i, 10 * i, 10 * i + 8) for i in range(100)]
        ys = [TemporalTuple(f"y{i}", i, 10 * i + 2, 10 * i + 6) for i in range(100)]
        semi = ContainSemijoinTsTs(
            make_stream(xs, TS_ASC), make_stream(ys, TS_ASC)
        )
        out = semi.run()
        assert len(out) == 100
        assert semi.metrics.workspace_high_water <= 3

    def test_matched_tuples_retire_early(self):
        """The (c) entry: the state is a *subset* of the join's state
        because matched X tuples leave immediately."""
        # One long X containing an early Y; without early retirement it
        # would sit in the state for the whole run.
        xs = [TemporalTuple("big", "big", 0, 1000)] + [
            TemporalTuple(f"x{i}", i, i + 1, i + 3) for i in range(1, 50)
        ]
        ys = [TemporalTuple("y", "y", 1, 2)] + [
            TemporalTuple(f"y{i}", i, 500 + i, 502 + i) for i in range(1, 10)
        ]
        semi = ContainSemijoinTsTs(
            make_stream(xs, TS_ASC), make_stream(ys, TS_ASC)
        )
        out = semi.run()
        assert "big" in {t.value for t in out}

    @settings(max_examples=60, deadline=None)
    @given(tuple_lists, tuple_lists)
    def test_matches_nested_loop(self, xs, ys):
        semi = ContainSemijoinTsTs(
            make_stream(xs, TS_ASC), make_stream(ys, TS_ASC)
        )
        assert values(semi.run()) == contain_oracle(xs, ys)

    @settings(max_examples=40, deadline=None)
    @given(tuple_lists, tuple_lists)
    def test_agrees_with_figure6_variant(self, xs, ys):
        a = ContainSemijoinTsTs(
            make_stream(xs, TS_ASC), make_stream(ys, TS_ASC)
        )
        b = ContainSemijoinTsTe(
            make_stream(xs, TS_ASC), make_stream(ys, TE_ASC)
        )
        assert values(a.run()) == values(b.run())


class TestContainedSemijoinTsTs:
    def test_emits_immediately_never_stores_x(self, random_tuples):
        xs, ys = random_tuples(100, seed=12), random_tuples(100, seed=13)
        semi = ContainedSemijoinTsTs(
            make_stream(xs, TS_ASC), make_stream(ys, TS_ASC)
        )
        semi.run()
        assert semi.metrics.state_high_water.get("y-state", 0) >= 0
        assert "x-state" not in semi.metrics.state_high_water

    def test_bounded_state(self):
        xs = [TemporalTuple(f"x{i}", i, 10 * i + 2, 10 * i + 6) for i in range(100)]
        ys = [TemporalTuple(f"y{i}", i, 10 * i, 10 * i + 8) for i in range(100)]
        semi = ContainedSemijoinTsTs(
            make_stream(xs, TS_ASC), make_stream(ys, TS_ASC)
        )
        assert len(semi.run()) == 100
        assert semi.metrics.workspace_high_water <= 3

    @settings(max_examples=60, deadline=None)
    @given(tuple_lists, tuple_lists)
    def test_matches_nested_loop(self, xs, ys):
        semi = ContainedSemijoinTsTs(
            make_stream(xs, TS_ASC), make_stream(ys, TS_ASC)
        )
        assert values(semi.run()) == contained_oracle(xs, ys)

    @settings(max_examples=40, deadline=None)
    @given(tuple_lists, tuple_lists)
    def test_agrees_with_figure6_variant(self, xs, ys):
        a = ContainedSemijoinTsTs(
            make_stream(xs, TS_ASC), make_stream(ys, TS_ASC)
        )
        b = ContainedSemijoinTeTs(
            make_stream(xs, TE_ASC), make_stream(ys, TS_ASC)
        )
        assert values(a.run()) == values(b.run())
