"""Tests for the footnote-8 equality-merge joins (equal/meets/starts/
finishes — the non-inequality Figure-2 operators as stream
processors)."""

import pytest
from hypothesis import given, settings

from repro.allen import AllenRelation
from repro.errors import UnsupportedSortOrderError
from repro.model import TE_ASC, TS_ASC, TS_TE_ASC, TemporalTuple
from repro.streams import (
    EqualJoin,
    FinishesJoin,
    MeetsJoin,
    NestedLoopJoin,
    StartsJoin,
)

from .conftest import make_stream, pair_values, tuple_lists


def oracle(xs, ys, relation):
    return pair_values(
        NestedLoopJoin(
            make_stream(xs, TS_ASC),
            make_stream(ys, TS_ASC),
            lambda a, b: relation.holds(a.interval, b.interval),
        ).run()
    )


class TestEqualJoin:
    def test_basic(self):
        xs = [TemporalTuple("a", 1, 0, 5), TemporalTuple("b", 2, 3, 9)]
        ys = [TemporalTuple("c", 3, 0, 5), TemporalTuple("d", 4, 3, 8)]
        join = EqualJoin(make_stream(xs, TS_TE_ASC), make_stream(ys, TS_TE_ASC))
        assert pair_values(join.run()) == [(1, 3)]

    def test_duplicate_lifespans_cross_product(self):
        xs = [TemporalTuple(f"x{i}", i, 2, 7) for i in range(3)]
        ys = [TemporalTuple(f"y{i}", 10 + i, 2, 7) for i in range(2)]
        join = EqualJoin(make_stream(xs, TS_TE_ASC), make_stream(ys, TS_TE_ASC))
        assert len(join.run()) == 6

    def test_rejects_wrong_orders(self):
        xs = [TemporalTuple("a", 1, 0, 5)]
        with pytest.raises(UnsupportedSortOrderError):
            EqualJoin(make_stream(xs, TS_ASC), make_stream(xs, TS_TE_ASC))

    def test_single_pass(self, random_tuples):
        xs, ys = random_tuples(60, seed=1), random_tuples(60, seed=2)
        join = EqualJoin(make_stream(xs, TS_TE_ASC), make_stream(ys, TS_TE_ASC))
        join.run()
        assert join.metrics.passes_x == 1
        assert join.metrics.passes_y == 1

    @settings(max_examples=50, deadline=None)
    @given(tuple_lists, tuple_lists)
    def test_matches_nested_loop(self, xs, ys):
        join = EqualJoin(make_stream(xs, TS_TE_ASC), make_stream(ys, TS_TE_ASC))
        assert pair_values(join.run()) == oracle(xs, ys, AllenRelation.EQUAL)


class TestMeetsJoin:
    def test_basic(self):
        xs = [TemporalTuple("shift1", 1, 0, 8)]
        ys = [
            TemporalTuple("shift2", 2, 8, 16),  # meets
            TemporalTuple("late", 3, 9, 16),    # gap
        ]
        join = MeetsJoin(make_stream(xs, TE_ASC), make_stream(ys, TS_ASC))
        assert pair_values(join.run()) == [(1, 2)]

    def test_met_by_via_swap(self, random_tuples):
        xs, ys = random_tuples(50, seed=3), random_tuples(50, seed=4)
        meets = MeetsJoin(make_stream(ys, TE_ASC), make_stream(xs, TS_ASC))
        met_by = sorted((x.value, y.value) for y, x in meets.run())
        assert met_by == oracle(xs, ys, AllenRelation.MET_BY)

    @settings(max_examples=50, deadline=None)
    @given(tuple_lists, tuple_lists)
    def test_matches_nested_loop(self, xs, ys):
        join = MeetsJoin(make_stream(xs, TE_ASC), make_stream(ys, TS_ASC))
        assert pair_values(join.run()) == oracle(xs, ys, AllenRelation.MEETS)


class TestStartsJoin:
    def test_strictness(self):
        xs = [TemporalTuple("a", 1, 0, 5)]
        ys = [
            TemporalTuple("longer", 2, 0, 9),
            TemporalTuple("same", 3, 0, 5),     # equal, not starts
            TemporalTuple("shifted", 4, 1, 9),  # different start
        ]
        join = StartsJoin(make_stream(xs, TS_ASC), make_stream(ys, TS_ASC))
        assert pair_values(join.run()) == [(1, 2)]

    @settings(max_examples=50, deadline=None)
    @given(tuple_lists, tuple_lists)
    def test_matches_nested_loop(self, xs, ys):
        join = StartsJoin(make_stream(xs, TS_ASC), make_stream(ys, TS_ASC))
        assert pair_values(join.run()) == oracle(xs, ys, AllenRelation.STARTS)


class TestFinishesJoin:
    def test_strictness(self):
        xs = [TemporalTuple("a", 1, 4, 9)]
        ys = [
            TemporalTuple("earlier-start", 2, 0, 9),
            TemporalTuple("same", 3, 4, 9),
            TemporalTuple("later-start", 4, 5, 9),
        ]
        join = FinishesJoin(make_stream(xs, TE_ASC), make_stream(ys, TE_ASC))
        assert pair_values(join.run()) == [(1, 2)]

    @settings(max_examples=50, deadline=None)
    @given(tuple_lists, tuple_lists)
    def test_matches_nested_loop(self, xs, ys):
        join = FinishesJoin(make_stream(xs, TE_ASC), make_stream(ys, TE_ASC))
        assert pair_values(join.run()) == oracle(
            xs, ys, AllenRelation.FINISHES
        )


class TestWorkspaceShape:
    def test_group_sized_state(self, random_tuples):
        """The merge join's workspace is one pair of same-key groups,
        not the whole input."""
        xs = random_tuples(200, span=2000, seed=5)
        ys = random_tuples(200, span=2000, seed=6)
        join = MeetsJoin(make_stream(xs, TE_ASC), make_stream(ys, TS_ASC))
        join.run()
        assert join.metrics.workspace_high_water < 20
