"""Unit tests for workspace accounting."""

import pytest

from repro.errors import WorkspaceStateError
from repro.model import TemporalTuple
from repro.streams import Workspace, WorkspaceMeter, WorkspaceReport


class TestWorkspace:
    def test_insert_and_len(self):
        ws = Workspace()
        ws.insert("a")
        ws.insert("b")
        assert len(ws) == 2
        assert list(ws) == ["a", "b"]
        assert bool(ws)

    def test_high_water_tracks_peak(self):
        ws = Workspace()
        for item in "abc":
            ws.insert(item)
        ws.evict_where(lambda i: i != "c")
        ws.insert("d")
        assert len(ws) == 2
        assert ws.high_water == 3

    def test_evict_where_counts(self):
        ws = Workspace()
        for i in range(5):
            ws.insert(i)
        assert ws.evict_where(lambda i: i % 2 == 0) == 3
        assert list(ws) == [1, 3]
        assert ws.total_discarded == 3

    def test_remove_specific(self):
        ws = Workspace()
        ws.insert("a")
        ws.insert("b")
        ws.remove("a")
        assert list(ws) == ["b"]

    def test_clear(self):
        ws = Workspace()
        ws.insert("a")
        assert ws.clear() == 1
        assert not ws

    def test_replace_keeps_one(self):
        ws = Workspace()
        ws.replace("a")
        ws.replace("b")
        assert list(ws) == ["b"]
        assert ws.high_water == 1
        assert ws.peek() == "b"

    def test_peek_empty(self):
        assert Workspace().peek() is None


class TestRemoveIdentity:
    """Regression: ``remove`` used ``list.remove``, which (a) raised a
    bare ``ValueError`` for absent items and (b) removed the *first
    equal* item — so with duplicate rows (equal ``TemporalTuple``
    objects are common in real relations) the wrong state tuple could be
    retired and the accounting corrupted."""

    def test_remove_absent_raises_descriptive_error(self):
        ws = Workspace("x-state")
        ws.insert("a")
        with pytest.raises(WorkspaceStateError, match="x-state"):
            ws.remove("zzz")
        # The failed removal must not touch the accounting.
        assert ws.total_discarded == 0
        assert len(ws) == 1

    def test_duplicates_removed_by_identity(self):
        first = TemporalTuple("s", "v", 0, 10)
        second = TemporalTuple("s", "v", 0, 10)
        assert first == second and first is not second
        ws = Workspace()
        ws.insert(first)
        ws.insert(second)
        ws.remove(second)
        assert len(ws) == 1
        assert next(iter(ws)) is first  # not merely equal: the same one

    def test_each_duplicate_retires_exactly_once(self):
        dup = [TemporalTuple("s", "v", 0, 10) for _ in range(3)]
        meter = WorkspaceMeter()
        ws = Workspace(meter=meter)
        for t in dup:
            ws.insert(t)
        for t in dup:
            ws.remove(t)
        assert len(ws) == 0
        assert meter.total_discarded == 3
        assert meter.current == 0
        # Removing one of them again is now a state error.
        ws.insert(dup[0])
        ws.remove(dup[0])
        with pytest.raises(WorkspaceStateError):
            ws.remove(dup[0])


class TestWorkspaceMeter:
    def test_joint_high_water(self):
        meter = WorkspaceMeter()
        a = Workspace("a", meter=meter)
        b = Workspace("b", meter=meter)
        a.insert(1)
        b.insert(2)
        b.insert(3)
        a.evict_where(lambda _x: True)
        b.insert(4)
        # Peak was 3 (1 in a, 2 in b); after evicting a and adding to b
        # the current is 3 again but never exceeded 3.
        assert meter.high_water == 3
        assert meter.current == 3
        assert meter.total_inserted == 4
        assert meter.total_discarded == 1

    def test_report_snapshot(self):
        meter = WorkspaceMeter()
        ws = Workspace(meter=meter)
        ws.insert(1)
        ws.insert(2)
        ws.remove(1)
        report = WorkspaceReport.from_meter(meter)
        assert report.high_water == 2
        assert report.residual == 1
        assert report.total_inserted == 2
        assert report.total_discarded == 1
