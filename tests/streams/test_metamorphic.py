"""Metamorphic tests: transformations of the time axis that must leave
operator semantics unchanged.

The paper's model treats time as isomorphic to the naturals with no
fixed unit, so:

* translating every lifespan by a constant shifts outputs identically;
* scaling every endpoint by a positive integer preserves all thirteen
  relationships except *meets* boundaries — actually scaling preserves
  order and equality of endpoints, hence every relation;
* the operators depend only on endpoint order, never absolute values.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.allen import classify
from repro.model import TE_ASC, TS_ASC, TemporalTuple
from repro.streams import (
    ContainJoinTsTs,
    ContainSemijoinTsTe,
    OverlapJoin,
    SelfContainedSemijoin,
)
from repro.model import TS_TE_ASC

from .conftest import make_stream, pair_values, tuple_lists, values

shifts = st.integers(min_value=-1000, max_value=1000)
scales = st.integers(min_value=1, max_value=7)


def shift_tuples(tuples, delta):
    return [
        TemporalTuple(t.surrogate, t.value, t.valid_from + delta, t.valid_to + delta)
        for t in tuples
    ]


def scale_tuples(tuples, factor):
    return [
        TemporalTuple(
            t.surrogate, t.value, t.valid_from * factor, t.valid_to * factor
        )
        for t in tuples
    ]


class TestShiftInvariance:
    @settings(max_examples=40, deadline=None)
    @given(tuple_lists, tuple_lists, shifts)
    def test_contain_join(self, xs, ys, delta):
        base = ContainJoinTsTs(
            make_stream(xs, TS_ASC), make_stream(ys, TS_ASC)
        )
        shifted = ContainJoinTsTs(
            make_stream(shift_tuples(xs, delta), TS_ASC),
            make_stream(shift_tuples(ys, delta), TS_ASC),
        )
        assert pair_values(base.run()) == pair_values(shifted.run())

    @settings(max_examples=40, deadline=None)
    @given(tuple_lists, tuple_lists, shifts)
    def test_overlap_join(self, xs, ys, delta):
        base = OverlapJoin(make_stream(xs, TS_ASC), make_stream(ys, TS_ASC))
        shifted = OverlapJoin(
            make_stream(shift_tuples(xs, delta), TS_ASC),
            make_stream(shift_tuples(ys, delta), TS_ASC),
        )
        assert pair_values(base.run()) == pair_values(shifted.run())

    @settings(max_examples=40, deadline=None)
    @given(tuple_lists, shifts)
    def test_self_semijoin_workspace_too(self, xs, delta):
        """Shifting changes neither results nor the workspace
        trajectory's peak (the algorithm sees the same order
        structure)."""
        base = SelfContainedSemijoin(make_stream(xs, TS_TE_ASC))
        base_out = values(base.run())
        shifted = SelfContainedSemijoin(
            make_stream(shift_tuples(xs, delta), TS_TE_ASC)
        )
        assert values(shifted.run()) == base_out
        assert (
            shifted.metrics.workspace_high_water
            == base.metrics.workspace_high_water
        )


class TestScaleInvariance:
    @settings(max_examples=40, deadline=None)
    @given(tuple_lists, tuple_lists, scales)
    def test_semijoin(self, xs, ys, factor):
        base = ContainSemijoinTsTe(
            make_stream(xs, TS_ASC), make_stream(ys, TE_ASC)
        )
        scaled = ContainSemijoinTsTe(
            make_stream(scale_tuples(xs, factor), TS_ASC),
            make_stream(scale_tuples(ys, factor), TE_ASC),
        )
        assert values(base.run()) == values(scaled.run())

    @settings(max_examples=40, deadline=None)
    @given(tuple_lists, scales, shifts)
    def test_classification_invariant(self, xs, factor, delta):
        transformed = shift_tuples(scale_tuples(xs, factor), delta)
        for a, b in zip(xs, xs[1:]):
            index = xs.index(a)
            ta = transformed[index]
            tb = transformed[index + 1]
            assert classify(a.interval, b.interval) is classify(
                ta.interval, tb.interval
            )
