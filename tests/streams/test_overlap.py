"""Tests for Overlap-join and Overlap-semijoin (Section 4.2.4, Table 2)."""

import pytest
from hypothesis import given, settings

from repro.errors import UnsupportedSortOrderError
from repro.model import TE_ASC, TS_ASC, TemporalTuple
from repro.streams import (
    NestedLoopJoin,
    NestedLoopSemijoin,
    OverlapJoin,
    OverlapSemijoin,
    overlap_predicate,
)

from .conftest import make_stream, pair_values, tuple_lists, values


def join_oracle(xs, ys):
    return pair_values(
        NestedLoopJoin(
            make_stream(xs, TS_ASC), make_stream(ys, TS_ASC), overlap_predicate
        ).run()
    )


def semi_oracle(xs, ys):
    return values(
        NestedLoopSemijoin(
            make_stream(xs, TS_ASC), make_stream(ys, TS_ASC), overlap_predicate
        ).run()
    )


class TestOverlapJoin:
    def test_superstar_style_overlap(self):
        """General (TQuel) overlap: any shared timepoint counts,
        including containment and equality."""
        xs = [TemporalTuple("x", "x", 0, 10)]
        ys = [
            TemporalTuple("inside", 1, 3, 5),
            TemporalTuple("equal", 2, 0, 10),
            TemporalTuple("left", 3, 0, 1),
            TemporalTuple("meets", 4, 10, 12),  # no shared point
            TemporalTuple("before", 5, 15, 20),
        ]
        join = OverlapJoin(make_stream(xs, TS_ASC), make_stream(ys, TS_ASC))
        matched = {y.surrogate for _x, y in join.run()}
        assert matched == {"inside", "equal", "left"}

    def test_state_is_open_intervals(self):
        """The state holds only tuples whose lifespans span the sweep
        point: disjoint staircases keep it constant-size."""
        xs = [TemporalTuple(f"x{i}", i, 10 * i, 10 * i + 5) for i in range(150)]
        ys = [TemporalTuple(f"y{i}", i, 10 * i + 2, 10 * i + 7) for i in range(150)]
        join = OverlapJoin(make_stream(xs, TS_ASC), make_stream(ys, TS_ASC))
        out = join.run()
        assert len(out) == 150
        assert join.metrics.workspace_high_water <= 4

    def test_rejects_other_orders(self, random_tuples):
        """Table 2: TS^/TS^ (or its mirror) is the only appropriate
        combination."""
        xs = random_tuples(5)
        with pytest.raises(UnsupportedSortOrderError):
            OverlapJoin(make_stream(xs, TS_ASC), make_stream(xs, TE_ASC))
        with pytest.raises(UnsupportedSortOrderError):
            OverlapJoin(make_stream(xs, TE_ASC), make_stream(xs, TS_ASC))

    def test_single_pass(self, random_tuples):
        xs, ys = random_tuples(80, seed=30), random_tuples(80, seed=31)
        join = OverlapJoin(make_stream(xs, TS_ASC), make_stream(ys, TS_ASC))
        join.run()
        assert join.metrics.passes_x == 1
        assert join.metrics.passes_y == 1

    @settings(max_examples=60, deadline=None)
    @given(tuple_lists, tuple_lists)
    def test_matches_nested_loop(self, xs, ys):
        join = OverlapJoin(make_stream(xs, TS_ASC), make_stream(ys, TS_ASC))
        assert pair_values(join.run()) == join_oracle(xs, ys)

    @settings(max_examples=40, deadline=None)
    @given(tuple_lists, tuple_lists)
    def test_symmetry(self, xs, ys):
        """Overlap is symmetric: join(X,Y) = transpose(join(Y,X))."""
        a = OverlapJoin(make_stream(xs, TS_ASC), make_stream(ys, TS_ASC))
        b = OverlapJoin(make_stream(ys, TS_ASC), make_stream(xs, TS_ASC))
        assert pair_values(a.run()) == sorted(
            (x, y) for y, x in pair_values(b.run())
        )


class TestOverlapSemijoin:
    def test_buffers_only(self, random_tuples):
        """Table 2 (b): no state tuples at all."""
        xs, ys = random_tuples(200, seed=32), random_tuples(200, seed=33)
        semi = OverlapSemijoin(make_stream(xs, TS_ASC), make_stream(ys, TS_ASC))
        semi.run()
        assert semi.metrics.workspace_high_water == 0
        assert semi.metrics.total_footprint == 2

    def test_single_pass_each(self, random_tuples):
        xs, ys = random_tuples(100, seed=34), random_tuples(100, seed=35)
        semi = OverlapSemijoin(make_stream(xs, TS_ASC), make_stream(ys, TS_ASC))
        semi.run()
        assert semi.metrics.passes_x == 1
        assert semi.metrics.passes_y == 1

    def test_long_y_serves_many_x(self):
        xs = [TemporalTuple(f"x{i}", i, 10 * i, 10 * i + 5) for i in range(20)]
        ys = [TemporalTuple("era", "era", 0, 1000)]
        semi = OverlapSemijoin(make_stream(xs, TS_ASC), make_stream(ys, TS_ASC))
        assert len(semi.run()) == 20

    def test_output_preserves_order(self, random_tuples):
        xs, ys = random_tuples(60, seed=36), random_tuples(60, seed=37)
        semi = OverlapSemijoin(make_stream(xs, TS_ASC), make_stream(ys, TS_ASC))
        assert TS_ASC.is_sorted(semi.run())

    @settings(max_examples=80, deadline=None)
    @given(tuple_lists, tuple_lists)
    def test_matches_nested_loop(self, xs, ys):
        semi = OverlapSemijoin(make_stream(xs, TS_ASC), make_stream(ys, TS_ASC))
        assert values(semi.run()) == semi_oracle(xs, ys)
