"""Tests for the self semijoins (Section 4.2.3, Figure 7, Table 3)."""

import pytest
from hypothesis import given, settings

from repro.errors import UnsupportedSortOrderError
from repro.model import (
    TS_ASC,
    TS_TE_ASC,
    Direction,
    SortOrder,
    TemporalTuple,
)
from repro.streams import (
    NestedLoopSelfSemijoin,
    SelfContainedSemijoin,
    SelfContainSemijoin,
    SelfContainSemijoinDesc,
    contain_predicate,
    contained_predicate,
)

from .conftest import make_stream, tuple_lists, values

TS_TE_DESC_ORDER = SortOrder.by_ts(Direction.DESC, secondary_te=True)


def contained_oracle(xs):
    return values(
        NestedLoopSelfSemijoin(
            make_stream(xs, TS_ASC), contained_predicate
        ).run()
    )


def contain_oracle(xs):
    return values(
        NestedLoopSelfSemijoin(make_stream(xs, TS_ASC), contain_predicate).run()
    )


class TestSelfContainedSemijoin:
    def test_figure7_trace(self):
        """The paper's worked example: x1..x4 with x4 inside x3."""
        xs = [
            TemporalTuple("x1", "x1", 0, 4),
            TemporalTuple("x2", "x2", 2, 8),
            TemporalTuple("x3", "x3", 5, 20),
            TemporalTuple("x4", "x4", 7, 12),
        ]
        semi = SelfContainedSemijoin(make_stream(xs, TS_TE_ASC))
        out = semi.run()
        assert values(out) == ["x4"]

    def test_one_state_tuple_and_single_scan(self, random_tuples):
        """Table 3 (a): the workspace is one state tuple plus the input
        buffer, and the operand is scanned once."""
        xs = random_tuples(300, seed=20)
        semi = SelfContainedSemijoin(make_stream(xs, TS_TE_ASC))
        semi.run()
        assert semi.metrics.workspace_high_water == 1
        assert semi.metrics.passes_x == 1
        assert semi.metrics.buffers == 1

    def test_requires_secondary_sort(self, random_tuples):
        xs = random_tuples(5)
        with pytest.raises(UnsupportedSortOrderError):
            SelfContainedSemijoin(make_stream(xs, TS_ASC))

    def test_equal_start_tuples(self):
        """Tuples sharing ValidFrom cannot contain one another; the
        TS-equality branch must replace the state, not emit."""
        xs = [
            TemporalTuple("a", "a", 0, 5),
            TemporalTuple("b", "b", 0, 9),
            TemporalTuple("c", "c", 0, 12),
        ]
        semi = SelfContainedSemijoin(make_stream(xs, TS_TE_ASC))
        assert semi.run() == []

    def test_identical_intervals_do_not_match(self):
        xs = [
            TemporalTuple("a", "a", 3, 7),
            TemporalTuple("b", "b", 3, 7),
        ]
        semi = SelfContainedSemijoin(make_stream(xs, TS_TE_ASC))
        assert semi.run() == []

    def test_nested_chain(self):
        """Strictly nested intervals: all inner ones are emitted."""
        xs = [TemporalTuple(f"x{i}", i, i, 100 - i) for i in range(10)]
        semi = SelfContainedSemijoin(make_stream(xs, TS_TE_ASC))
        assert values(semi.run()) == list(range(1, 10))

    def test_empty_and_singleton(self):
        assert SelfContainedSemijoin(make_stream([], TS_TE_ASC)).run() == []
        one = [TemporalTuple("a", "a", 0, 5)]
        assert SelfContainedSemijoin(make_stream(one, TS_TE_ASC)).run() == []

    @settings(max_examples=80, deadline=None)
    @given(tuple_lists)
    def test_matches_nested_loop(self, xs):
        semi = SelfContainedSemijoin(make_stream(xs, TS_TE_ASC))
        assert values(semi.run()) == contained_oracle(xs)

    @settings(max_examples=40, deadline=None)
    @given(tuple_lists)
    def test_state_never_exceeds_one(self, xs):
        semi = SelfContainedSemijoin(make_stream(xs, TS_TE_ASC))
        semi.run()
        assert semi.metrics.workspace_high_water <= 1


class TestSelfContainSemijoin:
    def test_containers_emitted_once(self):
        xs = [
            TemporalTuple("big", "big", 0, 100),
            TemporalTuple("a", "a", 10, 20),
            TemporalTuple("b", "b", 30, 40),
        ]
        semi = SelfContainSemijoin(make_stream(xs, TS_ASC))
        assert values(semi.run()) == ["big"]

    def test_state_bounded_by_overlap_depth(self):
        """Table 3 (b): candidates are open overlapping successors."""
        xs = [TemporalTuple(f"x{i}", i, 10 * i, 10 * i + 15) for i in range(100)]
        semi = SelfContainSemijoin(make_stream(xs, TS_ASC))
        semi.run()
        assert semi.metrics.workspace_high_water <= 4

    @settings(max_examples=80, deadline=None)
    @given(tuple_lists)
    def test_matches_nested_loop(self, xs):
        semi = SelfContainSemijoin(make_stream(xs, TS_ASC))
        assert values(semi.run()) == contain_oracle(xs)


class TestSelfContainSemijoinDesc:
    def test_one_state_tuple(self, random_tuples):
        xs = random_tuples(300, seed=21)
        semi = SelfContainSemijoinDesc(make_stream(xs, TS_TE_DESC_ORDER))
        semi.run()
        assert semi.metrics.workspace_high_water == 1
        assert semi.metrics.passes_x == 1

    def test_requires_descending_orders(self, random_tuples):
        xs = random_tuples(5)
        with pytest.raises(UnsupportedSortOrderError):
            SelfContainSemijoinDesc(make_stream(xs, TS_TE_ASC))

    @settings(max_examples=80, deadline=None)
    @given(tuple_lists)
    def test_matches_nested_loop(self, xs):
        semi = SelfContainSemijoinDesc(make_stream(xs, TS_TE_DESC_ORDER))
        assert values(semi.run()) == contain_oracle(xs)

    @settings(max_examples=40, deadline=None)
    @given(tuple_lists)
    def test_agrees_with_ascending_variant(self, xs):
        asc = SelfContainSemijoin(make_stream(xs, TS_ASC))
        desc = SelfContainSemijoinDesc(make_stream(xs, TS_TE_DESC_ORDER))
        assert values(asc.run()) == values(desc.run())
