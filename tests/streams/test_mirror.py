"""Tests for time-reversal mirroring (the Table-1 symmetry argument)."""

from hypothesis import given, settings

from repro.model import (
    TE_DESC,
    TS_ASC,
    TS_DESC,
    TemporalTuple,
)
from repro.streams import (
    ContainJoinTsTs,
    MirroredProcessor,
    NestedLoopJoin,
    SelfContainedSemijoin,
    contain_predicate,
    mirror_stream,
    mirror_tuple,
)

from .conftest import make_stream, pair_values, tuple_lists, values


class TestMirrorTuple:
    def test_reverses_lifespan(self):
        t = TemporalTuple("a", 1, 3, 9)
        m = mirror_tuple(t)
        assert (m.valid_from, m.valid_to) == (-9, -3)
        assert m.surrogate == "a"

    def test_involution(self):
        t = TemporalTuple("a", 1, 3, 9)
        assert mirror_tuple(mirror_tuple(t)) == t

    @settings(max_examples=40, deadline=None)
    @given(tuple_lists)
    def test_preserves_containment(self, xs):
        for a in xs:
            for b in xs:
                assert contain_predicate(a, b) == contain_predicate(
                    mirror_tuple(a), mirror_tuple(b)
                )


class TestMirrorStream:
    def test_order_is_mirrored(self, random_tuples):
        s = make_stream(random_tuples(20), TE_DESC)
        m = mirror_stream(s)
        assert m.order == TS_ASC
        drained = list(m.drain())
        assert TS_ASC.is_sorted(drained)

    def test_name_is_tagged(self, random_tuples):
        s = make_stream(random_tuples(5), TE_DESC, name="faculty")
        assert mirror_stream(s).name == "mirror(faculty)"


class TestMirroredProcessor:
    @settings(max_examples=40, deadline=None)
    @given(tuple_lists, tuple_lists)
    def test_contain_join_on_te_desc(self, xs, ys):
        """Contain-join on (TEv, TEv) via the mirrored (TS^, TS^)
        algorithm equals the nested-loop result on the originals."""
        oracle = pair_values(
            NestedLoopJoin(
                make_stream(xs, TS_ASC),
                make_stream(ys, TS_ASC),
                contain_predicate,
            ).run()
        )
        mirrored = MirroredProcessor(
            ContainJoinTsTs,
            make_stream(xs, TE_DESC),
            make_stream(ys, TE_DESC),
        )
        assert pair_values(mirrored.run()) == oracle

    def test_metrics_proxy(self, random_tuples):
        xs, ys = random_tuples(50, seed=50), random_tuples(50, seed=51)
        mirrored = MirroredProcessor(
            ContainJoinTsTs,
            make_stream(xs, TE_DESC),
            make_stream(ys, TE_DESC),
        )
        mirrored.run()
        assert mirrored.metrics.passes_x == 1
        assert mirrored.metrics.workspace_high_water >= 0
        assert mirrored.operator.startswith("mirror(")

    def test_unary_mirror(self, random_tuples):
        """Self Contained-semijoin on (TEv, TSv) via the mirrored
        (TS^, TE^) algorithm."""
        from repro.model import Direction, SortOrder

        xs = random_tuples(100, seed=52)
        te_desc_ts_desc = SortOrder.by_te(Direction.DESC, secondary_ts=True)
        mirrored = MirroredProcessor(
            SelfContainedSemijoin,
            make_stream(xs, te_desc_ts_desc),
        )
        from repro.streams import NestedLoopSelfSemijoin, contained_predicate

        oracle = values(
            NestedLoopSelfSemijoin(
                make_stream(xs, TS_ASC), contained_predicate
            ).run()
        )
        assert values(mirrored.run()) == oracle
        assert mirrored.metrics.workspace_high_water == 1
