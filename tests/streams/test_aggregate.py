"""Tests for the Figure-4 grouped aggregation processor."""

import pytest

from repro.errors import StreamOrderError
from repro.streams import (
    GroupedAggregate,
    finalize_average,
    grouped_average,
    grouped_count,
    grouped_sum,
)

# (dept, emp, salary) records, grouped by department as in Figure 4.
PAYROLL = [
    ("toys", "ann", 100),
    ("toys", "bob", 150),
    ("tools", "cat", 200),
    ("tools", "dan", 50),
    ("tools", "eve", 50),
    ("books", "fay", 300),
]


class TestGroupedSum:
    def test_figure4_sums(self):
        sums = grouped_sum(PAYROLL, key=lambda r: r[0], value=lambda r: r[2])
        assert sums.run() == [("toys", 250), ("tools", 300), ("books", 300)]

    def test_state_is_one_group(self):
        """Figure 4's point: on grouped input the workspace is the
        partial sum and the buffered record — one group at a time."""
        agg = grouped_sum(PAYROLL, key=lambda r: r[0], value=lambda r: r[2])
        agg.run()
        assert agg.metrics.state_high_water == 1
        assert agg.metrics.records_read == len(PAYROLL)
        assert agg.metrics.groups_emitted == 3

    def test_ungrouped_input_rejected(self):
        shuffled = [PAYROLL[0], PAYROLL[2], PAYROLL[1]]
        agg = grouped_sum(shuffled, key=lambda r: r[0], value=lambda r: r[2])
        with pytest.raises(StreamOrderError):
            agg.run()

    def test_empty_input(self):
        agg = grouped_sum([], key=lambda r: r[0], value=lambda r: r[2])
        assert agg.run() == []

    def test_single_group(self):
        rows = [("d", "a", 1), ("d", "b", 2)]
        agg = grouped_sum(rows, key=lambda r: r[0], value=lambda r: r[2])
        assert agg.run() == [("d", 3)]


class TestOtherAggregates:
    def test_grouped_count(self):
        counts = grouped_count(PAYROLL, key=lambda r: r[0])
        assert counts.run() == [("toys", 2), ("tools", 3), ("books", 1)]

    def test_grouped_average(self):
        avgs = grouped_average(
            PAYROLL, key=lambda r: r[0], value=lambda r: r[2]
        )
        assert list(finalize_average(avgs)) == [
            ("toys", 125.0),
            ("tools", 100.0),
            ("books", 300.0),
        ]

    def test_custom_fold(self):
        maxima = GroupedAggregate(
            PAYROLL,
            key=lambda r: r[0],
            fold=lambda acc, r: max(acc, r[2]),
            initial=lambda: 0,
        )
        assert maxima.run() == [("toys", 150), ("tools", 200), ("books", 300)]

    def test_streaming_iteration(self):
        """Results are emitted as groups close, not all at the end."""
        agg = grouped_sum(PAYROLL, key=lambda r: r[0], value=lambda r: r[2])
        iterator = iter(agg)
        assert next(iterator) == ("toys", 250)
        assert agg.metrics.groups_emitted == 1
