"""Tests for Before-join and Before-semijoin (Section 4.2.4)."""

import pytest
from hypothesis import given, settings

from repro.errors import UnsupportedSortOrderError
from repro.model import TE_ASC, TS_ASC, TS_DESC, TemporalTuple
from repro.streams import (
    BeforeJoinSortedInner,
    BeforeJoinSweep,
    BeforeSemijoin,
    NestedLoopJoin,
    NestedLoopSemijoin,
    before_predicate,
)

from .conftest import make_stream, pair_values, tuple_lists, values


def join_oracle(xs, ys):
    return pair_values(
        NestedLoopJoin(
            make_stream(xs, TS_ASC), make_stream(ys, TS_ASC), before_predicate
        ).run()
    )


def semi_oracle(xs, ys):
    return values(
        NestedLoopSemijoin(
            make_stream(xs, TS_ASC), make_stream(ys, TS_ASC), before_predicate
        ).run()
    )


class TestBeforeJoinSweep:
    def test_gap_required(self):
        xs = [TemporalTuple("x", "x", 0, 5)]
        ys = [
            TemporalTuple("meets", 1, 5, 9),   # no gap: not before
            TemporalTuple("after", 2, 6, 9),   # gap: before
        ]
        join = BeforeJoinSweep(make_stream(xs, TS_ASC), make_stream(ys, TS_ASC))
        assert [(x.value, y.surrogate) for x, y in join.run()] == [
            ("x", "after")
        ]

    def test_state_grows_linearly(self):
        """The paper's negative result: no sort order bounds the
        Before-join state — every ended X tuple stays until Y drains."""
        xs = [TemporalTuple(f"x{i}", i, i, i + 1) for i in range(100)]
        ys = [TemporalTuple(f"y{i}", i, 200 + i, 201 + i) for i in range(5)]
        join = BeforeJoinSweep(make_stream(xs, TS_ASC), make_stream(ys, TS_ASC))
        out = join.run()
        assert len(out) == 500
        assert join.metrics.workspace_high_water >= len(xs)

    @settings(max_examples=50, deadline=None)
    @given(tuple_lists, tuple_lists)
    def test_matches_nested_loop(self, xs, ys):
        join = BeforeJoinSweep(make_stream(xs, TS_ASC), make_stream(ys, TS_ASC))
        assert pair_values(join.run()) == join_oracle(xs, ys)


class TestBeforeJoinSortedInner:
    def test_early_termination_saves_reads(self):
        """With the inner stream ValidFrom-descending, each outer probe
        stops at the first non-match instead of scanning everything."""
        xs = [TemporalTuple(f"x{i}", i, 1000 + i, 1001 + i) for i in range(20)]
        ys = [TemporalTuple(f"y{i}", i, i, i + 1) for i in range(500)]
        join = BeforeJoinSortedInner(
            make_stream(xs, TS_ASC), make_stream(ys, TS_DESC)
        )
        assert join.run() == []
        # Each probe reads exactly one inner tuple before stopping.
        assert join.metrics.tuples_read_y == len(xs)

    def test_requires_descending_inner(self, random_tuples):
        xs = random_tuples(5)
        with pytest.raises(UnsupportedSortOrderError):
            BeforeJoinSortedInner(
                make_stream(xs, TS_ASC), make_stream(xs, TS_ASC)
            )

    @settings(max_examples=50, deadline=None)
    @given(tuple_lists, tuple_lists)
    def test_matches_nested_loop(self, xs, ys):
        join = BeforeJoinSortedInner(
            make_stream(xs, TS_ASC), make_stream(ys, TS_DESC)
        )
        assert pair_values(join.run()) == join_oracle(xs, ys)


class TestBeforeSemijoin:
    def test_constant_state(self, random_tuples):
        xs, ys = random_tuples(200, seed=40), random_tuples(200, seed=41)
        semi = BeforeSemijoin(make_stream(xs, TS_ASC), make_stream(ys, TS_ASC))
        semi.run()
        assert semi.metrics.workspace_high_water == 0
        assert semi.metrics.passes_x == 1
        assert semi.metrics.passes_y == 1

    def test_sort_order_independent(self, random_tuples):
        """Section 4.2.4: the semijoin algorithm is independent of any
        sort orderings."""
        xs, ys = random_tuples(80, seed=42), random_tuples(80, seed=43)
        results = []
        for x_order in (TS_ASC, TE_ASC, TS_DESC):
            for y_order in (TS_ASC, TE_ASC):
                semi = BeforeSemijoin(
                    make_stream(xs, x_order), make_stream(ys, y_order)
                )
                results.append(values(semi.run()))
        assert all(r == results[0] for r in results)

    def test_empty_y_yields_nothing(self, random_tuples):
        xs = random_tuples(10)
        semi = BeforeSemijoin(make_stream(xs, TS_ASC), make_stream([], TS_ASC))
        assert semi.run() == []

    @settings(max_examples=60, deadline=None)
    @given(tuple_lists, tuple_lists)
    def test_matches_nested_loop(self, xs, ys):
        semi = BeforeSemijoin(make_stream(xs, TS_ASC), make_stream(ys, TS_ASC))
        assert values(semi.run()) == semi_oracle(xs, ys)
