"""Tests for the executable Tables 1-3 (repro.streams.registry)."""

import pytest

from repro.errors import UnsupportedSortOrderError
from repro.model import (
    TE_ASC,
    TE_DESC,
    TS_ASC,
    TS_DESC,
    Direction,
    SortOrder,
)
from repro.streams import (
    RegistryEntry,
    TemporalOperator,
    entries_for,
    lookup,
    supported_entries,
)

from .conftest import make_stream

T = TemporalOperator


class TestTable1Shape:
    """The support pattern of Table 1, row by row."""

    @pytest.mark.parametrize(
        "x_order, y_order, join_cls, csj_cls, cdsj_cls",
        [
            (TS_ASC, TS_ASC, "a", "c", "c"),
            (TS_ASC, TE_ASC, "b", "d", "-"),
            (TE_ASC, TS_ASC, "-", "-", "d"),
            (TE_ASC, TE_ASC, "-", "-", "-"),
            # Mirrors (the lower half of Table 1):
            (TE_DESC, TE_DESC, "a", "c", "c"),
            (TE_DESC, TS_DESC, "b", "d", "-"),
            (TS_DESC, TE_DESC, "-", "-", "d"),
            (TS_DESC, TS_DESC, "-", "-", "-"),
        ],
    )
    def test_state_classes(self, x_order, y_order, join_cls, csj_cls, cdsj_cls):
        assert lookup(T.CONTAIN_JOIN, x_order, y_order).state_class == join_cls
        assert (
            lookup(T.CONTAIN_SEMIJOIN, x_order, y_order).state_class == csj_cls
        )
        assert (
            lookup(T.CONTAINED_SEMIJOIN, x_order, y_order).state_class
            == cdsj_cls
        )

    def test_mixed_directions_inappropriate(self):
        """Section 4.2.1: "it is generally inappropriate to have one
        relation sorted in ascending order and the other in descending
        order"."""
        for op in (T.CONTAIN_JOIN, T.CONTAIN_SEMIJOIN, T.CONTAINED_SEMIJOIN):
            assert not lookup(op, TS_ASC, TS_DESC).supported
            assert not lookup(op, TS_DESC, TS_ASC).supported
            assert not lookup(op, TE_DESC, TE_ASC).supported

    def test_unsupported_build_raises(self):
        entry = lookup(T.CONTAIN_JOIN, TE_ASC, TE_ASC)
        with pytest.raises(UnsupportedSortOrderError):
            entry.build(None, None)

    def test_mirror_flag(self):
        assert not lookup(T.CONTAIN_JOIN, TS_ASC, TS_ASC).mirrored
        assert lookup(T.CONTAIN_JOIN, TE_DESC, TE_DESC).mirrored


class TestTable2Shape:
    def test_overlap_only_ts_asc_or_mirror(self):
        assert lookup(T.OVERLAP_JOIN, TS_ASC, TS_ASC).state_class == "a"
        assert lookup(T.OVERLAP_SEMIJOIN, TS_ASC, TS_ASC).state_class == "b"
        assert lookup(T.OVERLAP_JOIN, TE_DESC, TE_DESC).supported
        for x_order, y_order in [
            (TS_ASC, TE_ASC),
            (TE_ASC, TS_ASC),
            (TE_ASC, TE_ASC),
            (TS_DESC, TS_DESC),
        ]:
            assert not lookup(T.OVERLAP_JOIN, x_order, y_order).supported
            assert not lookup(T.OVERLAP_SEMIJOIN, x_order, y_order).supported


class TestTable3Shape:
    def test_self_contained_rows(self):
        asc = lookup(T.SELF_CONTAINED_SEMIJOIN, TS_ASC)
        assert asc.state_class == "a1"
        assert asc.supported
        desc = lookup(T.SELF_CONTAINED_SEMIJOIN, TS_DESC)
        assert not desc.supported

    def test_self_contain_rows(self):
        asc = lookup(T.SELF_CONTAIN_SEMIJOIN, TS_ASC)
        assert asc.state_class == "b1"
        desc = lookup(T.SELF_CONTAIN_SEMIJOIN, TS_DESC)
        assert desc.state_class == "a1"

    def test_mirrored_self_rows(self):
        te_desc = SortOrder.by_te(Direction.DESC, secondary_ts=True)
        assert lookup(T.SELF_CONTAINED_SEMIJOIN, te_desc).supported
        assert lookup(T.SELF_CONTAINED_SEMIJOIN, te_desc).mirrored


class TestBeforeEntries:
    def test_join_has_no_bounded_entry(self):
        for x_order in (TS_ASC, TE_ASC, TS_DESC, TE_DESC):
            for y_order in (TS_ASC, TE_ASC, TS_DESC, TE_DESC):
                assert not lookup(T.BEFORE_JOIN, x_order, y_order).supported

    def test_semijoin_supported_everywhere(self):
        for x_order in (TS_ASC, TE_ASC, TS_DESC, TE_DESC):
            for y_order in (TS_ASC, TE_ASC, TS_DESC, TE_DESC):
                entry = lookup(T.BEFORE_SEMIJOIN, x_order, y_order)
                assert entry.supported
                assert entry.state_class == "d"


class TestRegistryApi:
    def test_entries_for_covers_all_combinations(self):
        entries = entries_for(T.CONTAIN_JOIN)
        assert len(entries) == 16  # 4 x 4 primary-key combinations

    def test_supported_entries_subset(self):
        supported = supported_entries(T.CONTAIN_JOIN)
        assert {e.state_class for e in supported} == {"a", "b"}
        assert all(isinstance(e, RegistryEntry) for e in supported)

    def test_build_and_run_via_entry(self, random_tuples):
        xs, ys = random_tuples(40, seed=60), random_tuples(40, seed=61)
        entry = lookup(T.CONTAIN_JOIN, TS_ASC, TS_ASC)
        processor = entry.build(
            make_stream(xs, TS_ASC), make_stream(ys, TS_ASC)
        )
        out = processor.run()
        assert all(x.interval.contains(y.interval) for x, y in out)

    def test_state_descriptions_exist(self):
        for op in T:
            for entry in entries_for(op):
                assert entry.state_description
