"""Tests for bounded workspaces — the Section-4.1 trade-off triangle:
local workspace vs sort order vs passes."""

import pytest

from repro.errors import WorkspaceOverflowError
from repro.model import TE_ASC, TS_ASC, TemporalTuple
from repro.streams import (
    ContainJoinTsTs,
    ContainSemijoinTsTe,
    UnboundedStateJoin,
    Workspace,
    WorkspaceMeter,
    contain_predicate,
)

from .conftest import make_stream


def staircase(n, step=10, duration=8, tag="x", offset=0):
    return [
        TemporalTuple(
            f"{tag}{i}", i, step * i + offset, step * i + offset + duration
        )
        for i in range(n)
    ]


class TestWorkspaceLimit:
    def test_limit_enforced(self):
        meter = WorkspaceMeter(limit=3)
        ws = Workspace(meter=meter)
        for i in range(3):
            ws.insert(i)
        with pytest.raises(WorkspaceOverflowError):
            ws.insert(99)

    def test_eviction_frees_budget(self):
        meter = WorkspaceMeter(limit=2)
        ws = Workspace(meter=meter)
        ws.insert(1)
        ws.insert(2)
        ws.evict_where(lambda i: i == 1)
        ws.insert(3)  # fits again
        assert len(ws) == 2

    def test_no_limit_by_default(self):
        ws = Workspace()
        for i in range(10_000):
            ws.insert(i)
        assert len(ws) == 10_000


class TestBudgetedOperators:
    """The paper's point, made executable: under a fixed memory budget
    the appropriate sort order succeeds where the GC-free approach
    cannot."""

    def budgeted(self, processor, budget):
        processor.meter.limit = budget
        return processor

    def test_bounded_algorithm_fits_small_budget(self):
        xs = staircase(300, tag="x")
        ys = staircase(300, duration=4, tag="y", offset=2)
        join = self.budgeted(
            ContainJoinTsTs(
                make_stream(xs, TS_ASC, "X"), make_stream(ys, TS_ASC, "Y")
            ),
            budget=8,
        )
        out = join.run()  # no overflow
        assert len(out) > 0

    def test_unbounded_approach_overflows_same_budget(self):
        xs = staircase(300, tag="x")
        ys = staircase(300, duration=4, tag="y", offset=2)
        join = self.budgeted(
            UnboundedStateJoin(
                make_stream(xs, TS_ASC, "X"),
                make_stream(ys, TS_ASC, "Y"),
                contain_predicate,
            ),
            budget=8,
        )
        with pytest.raises(WorkspaceOverflowError):
            join.run()

    def test_zero_state_semijoin_fits_zero_budget(self):
        xs = staircase(100, duration=9, tag="x")
        ys = staircase(100, duration=4, tag="y", offset=2)
        semi = self.budgeted(
            ContainSemijoinTsTe(
                make_stream(xs, TS_ASC, "X"), make_stream(ys, TE_ASC, "Y")
            ),
            budget=0,
        )
        semi.run()  # buffers only — never touches the state budget
