"""Tests for the GC-free join used to demonstrate the '-' table cells."""

from hypothesis import given, settings

from repro.model import TS_ASC, TemporalTuple
from repro.streams import (
    ContainJoinTsTs,
    NestedLoopJoin,
    UnboundedStateJoin,
    contain_predicate,
    overlap_predicate,
)

from .conftest import make_stream, pair_values, tuple_lists


class TestUnboundedStateJoin:
    @settings(max_examples=40, deadline=None)
    @given(tuple_lists, tuple_lists)
    def test_correct_for_contain(self, xs, ys):
        oracle = pair_values(
            NestedLoopJoin(
                make_stream(xs, TS_ASC),
                make_stream(ys, TS_ASC),
                contain_predicate,
            ).run()
        )
        join = UnboundedStateJoin(
            make_stream(xs, TS_ASC), make_stream(ys, TS_ASC), contain_predicate
        )
        assert pair_values(join.run()) == oracle

    def test_state_grows_linearly(self, random_tuples):
        """Without GC criteria the workspace approaches |X| + |Y| — the
        quantitative meaning of a '-' cell."""
        xs, ys = random_tuples(100, seed=70), random_tuples(100, seed=71)
        join = UnboundedStateJoin(
            make_stream(xs, TS_ASC), make_stream(ys, TS_ASC), overlap_predicate
        )
        join.run()
        assert join.metrics.workspace_high_water >= 150

    def test_bounded_variant_is_strictly_better(self, random_tuples):
        """The GC criteria of the appropriate ordering shrink the state
        by an order of magnitude on sparse data."""
        xs, ys = (
            random_tuples(200, span=4000, max_duration=30, seed=72),
            random_tuples(200, span=4000, max_duration=30, seed=73),
        )
        bounded = ContainJoinTsTs(
            make_stream(xs, TS_ASC), make_stream(ys, TS_ASC)
        )
        unbounded = UnboundedStateJoin(
            make_stream(xs, TS_ASC), make_stream(ys, TS_ASC), contain_predicate
        )
        assert pair_values(bounded.run()) == pair_values(unbounded.run())
        assert (
            bounded.metrics.workspace_high_water * 5
            < unbounded.metrics.workspace_high_water
        )
