"""Unit tests for the instrumented TupleStream."""

import pytest

from repro.errors import StreamOrderError
from repro.model import TS_ASC, TemporalRelation, TemporalSchema, TemporalTuple
from repro.storage import HeapFile, IOStats
from repro.streams import TupleStream

TUPLES = [
    TemporalTuple("a", 1, 0, 5),
    TemporalTuple("b", 2, 3, 9),
    TemporalTuple("c", 3, 7, 8),
]


class TestCursor:
    def test_buffer_starts_empty(self):
        s = TupleStream.from_tuples(TUPLES, order=TS_ASC)
        assert s.buffer is None
        assert not s.exhausted

    def test_advance_loads_buffer(self):
        s = TupleStream.from_tuples(TUPLES, order=TS_ASC)
        first = s.advance()
        assert first == TUPLES[0]
        assert s.buffer == TUPLES[0]

    def test_advance_to_exhaustion(self):
        s = TupleStream.from_tuples(TUPLES, order=TS_ASC)
        seen = []
        while (t := s.advance()) is not None:
            seen.append(t)
        assert seen == TUPLES
        assert s.exhausted
        assert s.buffer is None
        assert s.advance() is None  # idempotent at EOF

    def test_tuples_read_counter(self):
        s = TupleStream.from_tuples(TUPLES, order=TS_ASC)
        s.advance()
        s.advance()
        assert s.tuples_read == 2

    def test_single_pass_counter(self):
        s = TupleStream.from_tuples(TUPLES, order=TS_ASC)
        list(s.drain())
        assert s.passes == 1

    def test_restart_counts_passes(self):
        s = TupleStream.from_tuples(TUPLES, order=TS_ASC)
        list(s.drain())
        s.restart()
        assert list(s.drain()) == TUPLES
        assert s.passes == 2
        assert s.tuples_read == 6

    def test_drain_includes_buffered_tuple(self):
        s = TupleStream.from_tuples(TUPLES, order=TS_ASC)
        s.advance()
        assert list(s.drain()) == TUPLES

    def test_empty_stream(self):
        s = TupleStream.from_tuples([], order=TS_ASC)
        assert s.advance() is None
        assert s.exhausted
        assert list(s.drain()) == []


class TestOrderVerification:
    def test_violation_raises(self):
        disordered = [TUPLES[1], TUPLES[0]]
        s = TupleStream.from_tuples(disordered, order=TS_ASC)
        s.advance()
        with pytest.raises(StreamOrderError):
            s.advance()

    def test_verification_can_be_disabled(self):
        disordered = [TUPLES[1], TUPLES[0]]
        s = TupleStream.from_tuples(
            disordered, order=TS_ASC, verify_order=False
        )
        assert list(s.drain()) == disordered

    def test_no_order_means_no_verification(self):
        disordered = [TUPLES[1], TUPLES[0]]
        s = TupleStream.from_tuples(disordered)
        assert list(s.drain()) == disordered


class TestSources:
    def test_from_relation_inherits_order(self):
        rel = TemporalRelation(
            TemporalSchema("R"), TUPLES
        ).sorted_by(TS_ASC)
        s = TupleStream.from_relation(rel)
        assert s.order == TS_ASC
        assert s.name == "R"
        assert list(s.drain()) == list(rel.tuples)

    def test_from_heap_file_charges_io_per_pass(self):
        f = HeapFile.from_records("F", TUPLES, page_capacity=2)
        stats = IOStats()
        s = TupleStream.from_heap_file(f, order=TS_ASC, stats=stats)
        list(s.drain())
        assert stats.scans_started == 1
        assert stats.page_reads == 2
        s.restart()
        list(s.drain())
        assert stats.scans_started == 2
        assert stats.page_reads == 4
