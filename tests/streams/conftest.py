"""Shared fixtures and strategies for stream-processor tests."""

import random

import pytest
from hypothesis import strategies as st

from repro.model import SortOrder, TemporalTuple, sort_tuples
from repro.streams import TupleStream

#: Hypothesis strategy: lists of temporal tuples with varied overlap
#: structure (dense starts, mixed durations).
tuple_lists = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=120),
        st.integers(min_value=1, max_value=40),
    ),
    max_size=60,
).map(
    lambda spans: [
        TemporalTuple(f"s{i}", i, a, a + d) for i, (a, d) in enumerate(spans)
    ]
)


def make_stream(tuples, order: SortOrder, name="stream") -> TupleStream:
    """Sort ``tuples`` by ``order`` and open a verifying stream."""
    return TupleStream.from_tuples(
        sort_tuples(tuples, order), order=order, name=name
    )


def values(tuples):
    """Canonical multiset of semijoin outputs."""
    return sorted(t.value for t in tuples)


def pair_values(pairs):
    """Canonical multiset of join outputs."""
    return sorted((a.value, b.value) for a, b in pairs)


@pytest.fixture
def random_tuples():
    """Deterministic random tuple generator factory."""

    def build(n, span=300, max_duration=40, seed=7):
        rng = random.Random(seed)
        out = []
        for i in range(n):
            start = rng.randrange(0, span)
            out.append(
                TemporalTuple(
                    f"s{i}", i, start, start + rng.randrange(1, max_duration)
                )
            )
        return out

    return build
