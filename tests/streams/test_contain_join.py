"""Tests for the Contain-join stream processors (Section 4.2.1)."""

import pytest
from hypothesis import given, settings

from repro.errors import UnsupportedSortOrderError
from repro.model import TE_ASC, TS_ASC, TS_DESC, TemporalTuple
from repro.streams import (
    ContainJoinTsTe,
    ContainJoinTsTs,
    NestedLoopJoin,
    contain_predicate,
)

from .conftest import make_stream, pair_values, tuple_lists


def oracle(xs, ys):
    return pair_values(
        NestedLoopJoin(
            make_stream(xs, TS_ASC),
            make_stream(ys, TS_ASC),
            contain_predicate,
        ).run()
    )


class TestContainJoinTsTs:
    def test_figure5_style_example(self):
        xs = [
            TemporalTuple("x1", "x1", 0, 20),
            TemporalTuple("x2", "x2", 5, 9),
            TemporalTuple("x3", "x3", 12, 30),
        ]
        ys = [
            TemporalTuple("y1", "y1", 2, 10),
            TemporalTuple("y2", "y2", 6, 8),
            TemporalTuple("y3", "y3", 14, 25),
        ]
        join = ContainJoinTsTs(make_stream(xs, TS_ASC), make_stream(ys, TS_ASC))
        assert pair_values(join.run()) == [
            ("x1", "y1"),
            ("x1", "y2"),
            ("x2", "y2"),
            ("x3", "y3"),
        ]

    def test_single_pass(self, random_tuples):
        xs, ys = random_tuples(80, seed=1), random_tuples(80, seed=2)
        join = ContainJoinTsTs(make_stream(xs, TS_ASC), make_stream(ys, TS_ASC))
        join.run()
        assert join.metrics.passes_x == 1
        assert join.metrics.passes_y == 1

    def test_rejects_wrong_orders(self, random_tuples):
        xs = random_tuples(5)
        with pytest.raises(UnsupportedSortOrderError):
            ContainJoinTsTs(make_stream(xs, TS_ASC), make_stream(xs, TE_ASC))
        with pytest.raises(UnsupportedSortOrderError):
            ContainJoinTsTs(make_stream(xs, TS_DESC), make_stream(xs, TS_DESC))

    def test_empty_inputs(self):
        some = [TemporalTuple("a", 1, 0, 5)]
        for xs, ys in (([], some), (some, []), ([], [])):
            join = ContainJoinTsTs(
                make_stream(xs, TS_ASC), make_stream(ys, TS_ASC)
            )
            assert join.run() == []

    def test_early_termination_when_y_exhausts(self):
        """Once Y is drained and Y's state is empty, remaining X tuples
        are not even read (Section 4.2.1, step 5)."""
        xs = [TemporalTuple(f"x{i}", i, 100 + i, 200 + i) for i in range(50)]
        ys = [TemporalTuple("y", "y", 0, 3)]
        join = ContainJoinTsTs(make_stream(xs, TS_ASC), make_stream(ys, TS_ASC))
        assert join.run() == []
        assert join.metrics.tuples_read_x < len(xs)

    def test_workspace_bounded_by_overlap_depth(self):
        """Disjoint staircase intervals keep the state tiny even for a
        long stream — the bounded-workspace claim of Table 1 (a)."""
        xs = [TemporalTuple(f"x{i}", i, 10 * i, 10 * i + 8) for i in range(200)]
        ys = [
            TemporalTuple(f"y{i}", i, 10 * i + 2, 10 * i + 6) for i in range(200)
        ]
        join = ContainJoinTsTs(make_stream(xs, TS_ASC), make_stream(ys, TS_ASC))
        result = join.run()
        assert len(result) == 200
        assert join.metrics.workspace_high_water <= 4

    def test_duplicate_intervals(self):
        xs = [TemporalTuple("x1", "x1", 0, 10), TemporalTuple("x2", "x2", 0, 10)]
        ys = [TemporalTuple("y1", "y1", 2, 5), TemporalTuple("y2", "y2", 2, 5)]
        join = ContainJoinTsTs(make_stream(xs, TS_ASC), make_stream(ys, TS_ASC))
        assert len(join.run()) == 4

    def test_boundary_touching_is_not_containment(self):
        # Shared endpoints violate the strict during relationship.
        xs = [TemporalTuple("x", "x", 0, 10)]
        ys = [
            TemporalTuple("y1", "y1", 0, 5),   # starts
            TemporalTuple("y2", "y2", 5, 10),  # finishes
            TemporalTuple("y3", "y3", 0, 10),  # equal
        ]
        join = ContainJoinTsTs(make_stream(xs, TS_ASC), make_stream(ys, TS_ASC))
        assert join.run() == []

    @settings(max_examples=60, deadline=None)
    @given(tuple_lists, tuple_lists)
    def test_matches_nested_loop(self, xs, ys):
        join = ContainJoinTsTs(make_stream(xs, TS_ASC), make_stream(ys, TS_ASC))
        assert pair_values(join.run()) == oracle(xs, ys)


class TestContainJoinTsTe:
    def test_rejects_wrong_orders(self, random_tuples):
        xs = random_tuples(5)
        with pytest.raises(UnsupportedSortOrderError):
            ContainJoinTsTe(make_stream(xs, TS_ASC), make_stream(xs, TS_ASC))

    def test_single_pass(self, random_tuples):
        xs, ys = random_tuples(80, seed=3), random_tuples(80, seed=4)
        join = ContainJoinTsTe(make_stream(xs, TS_ASC), make_stream(ys, TE_ASC))
        join.run()
        assert join.metrics.passes_x == 1
        assert join.metrics.passes_y == 1

    @settings(max_examples=60, deadline=None)
    @given(tuple_lists, tuple_lists)
    def test_matches_nested_loop(self, xs, ys):
        join = ContainJoinTsTe(make_stream(xs, TS_ASC), make_stream(ys, TE_ASC))
        assert pair_values(join.run()) == oracle(xs, ys)

    def test_agrees_with_ts_ts_variant(self, random_tuples):
        xs, ys = random_tuples(120, seed=5), random_tuples(120, seed=6)
        a = ContainJoinTsTs(make_stream(xs, TS_ASC), make_stream(ys, TS_ASC))
        b = ContainJoinTsTe(make_stream(xs, TS_ASC), make_stream(ys, TE_ASC))
        assert pair_values(a.run()) == pair_values(b.run())


class TestProcessorLifecycle:
    def test_single_use(self, random_tuples):
        xs = random_tuples(10)
        join = ContainJoinTsTs(make_stream(xs, TS_ASC), make_stream(xs, TS_ASC))
        join.run()
        from repro.errors import ExecutionError

        with pytest.raises(ExecutionError):
            join.run()

    def test_output_count_metric(self, random_tuples):
        xs, ys = random_tuples(50, seed=8), random_tuples(50, seed=9)
        join = ContainJoinTsTs(make_stream(xs, TS_ASC), make_stream(ys, TS_ASC))
        out = join.run()
        assert join.metrics.output_count == len(out)
