"""Tests for read-phase advancement policies (the 1/lambda heuristic)."""

from hypothesis import given, settings

from repro.model import TS_ASC, TemporalTuple
from repro.streams import (
    ContainJoinTsTs,
    LambdaPolicy,
    MinKeyPolicy,
    NestedLoopJoin,
    TupleStream,
    Workspace,
    contain_predicate,
)
from repro.streams.processors.base import ts_key

from .conftest import make_stream, pair_values, tuple_lists


class TestMinKeyPolicy:
    def test_advances_smaller_key(self):
        policy = MinKeyPolicy(ts_key, ts_key)
        early = TemporalTuple("a", 1, 0, 5)
        late = TemporalTuple("b", 2, 3, 9)
        assert policy.choose(early, late, Workspace(), Workspace()) == "x"
        assert policy.choose(late, early, Workspace(), Workspace()) == "y"

    def test_tie_goes_to_x(self):
        policy = MinKeyPolicy(ts_key, ts_key)
        a = TemporalTuple("a", 1, 3, 5)
        b = TemporalTuple("b", 2, 3, 9)
        assert policy.choose(a, b, Workspace(), Workspace()) == "x"


class TestLambdaPolicy:
    def make(self, inter_x=1.0, inter_y=1.0):
        return ContainJoinTsTs.lambda_policy(inter_x, inter_y)

    def test_prefers_side_with_more_disposals(self):
        policy = self.make(inter_x=10.0, inter_y=10.0)
        x_buf = TemporalTuple("x", 1, 50, 60)
        y_buf = TemporalTuple("y", 2, 50, 60)
        x_state = Workspace()
        y_state = Workspace()
        # Three Y state tuples become disposable if X advances
        # (ValidFrom <= 60); nothing in the X state is disposable.
        for i in range(3):
            y_state.insert(TemporalTuple(f"ys{i}", i, 52 + i, 100))
        x_state.insert(TemporalTuple("xs", 9, 0, 500))
        assert policy.choose(x_buf, y_buf, x_state, y_state) == "x"

    def test_falls_back_to_sweep_order_on_tie(self):
        policy = self.make()
        x_buf = TemporalTuple("x", 1, 10, 20)
        y_buf = TemporalTuple("y", 2, 5, 20)
        assert policy.choose(x_buf, y_buf, Workspace(), Workspace()) == "y"

    @settings(max_examples=40, deadline=None)
    @given(tuple_lists, tuple_lists)
    def test_policy_does_not_affect_correctness(self, xs, ys):
        """Any advancement policy yields the same join result; only the
        workspace profile differs (Section 4.2.1)."""
        oracle = pair_values(
            NestedLoopJoin(
                make_stream(xs, TS_ASC),
                make_stream(ys, TS_ASC),
                contain_predicate,
            ).run()
        )
        for policy in (None, self.make(2.0, 5.0), self.make(0.5, 0.5)):
            join = ContainJoinTsTs(
                make_stream(xs, TS_ASC),
                make_stream(ys, TS_ASC),
                policy=policy,
            )
            assert pair_values(join.run()) == oracle


class TestLambdaPolicyOnTsTe:
    @settings(max_examples=30, deadline=None)
    @given(tuple_lists, tuple_lists)
    def test_ts_te_variant_policy_independent(self, xs, ys):
        """The TS^/TE^ Contain-join is also policy-independent."""
        from repro.model import TE_ASC
        from repro.streams import ContainJoinTsTe

        oracle = pair_values(
            NestedLoopJoin(
                make_stream(xs, TS_ASC),
                make_stream(ys, TS_ASC),
                contain_predicate,
            ).run()
        )
        for policy in (None, ContainJoinTsTe.lambda_policy(3.0, 1.5)):
            join = ContainJoinTsTe(
                make_stream(xs, TS_ASC),
                make_stream(ys, TE_ASC),
                policy=policy,
            )
            assert pair_values(join.run()) == oracle
