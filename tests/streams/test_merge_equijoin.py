"""Tests for the surrogate merge equi-join (footnote 8)."""

import pytest

from repro.errors import UnsupportedSortOrderError
from repro.model import TS_ASC, SortOrder, TemporalTuple, sort_tuples
from repro.streams import SurrogateMergeJoin, TupleStream

SURR = SortOrder.by_surrogate()


def stream(tuples):
    return TupleStream.from_tuples(sort_tuples(tuples, SURR), order=SURR)


FACULTY_ASSISTANT = [
    TemporalTuple("jones", "Assistant", 0, 5),
    TemporalTuple("smith", "Assistant", 2, 6),
]
FACULTY_FULL = [
    TemporalTuple("smith", "Full", 10, 20),
    TemporalTuple("adams", "Full", 1, 9),
]


class TestSurrogateMergeJoin:
    def test_matches_on_equal_names(self):
        join = SurrogateMergeJoin(stream(FACULTY_ASSISTANT), stream(FACULTY_FULL))
        out = join.run()
        assert [(a.surrogate, b.surrogate) for a, b in out] == [
            ("smith", "smith")
        ]

    def test_residual_filter(self):
        """The footnote-8 pattern: merge on the equality, filter with
        the inequality constraints."""
        join = SurrogateMergeJoin(
            stream(FACULTY_ASSISTANT),
            stream(FACULTY_FULL),
            residual=lambda a, b: a.valid_to < b.valid_from,
        )
        assert len(join.run()) == 1
        blocked = SurrogateMergeJoin(
            stream(FACULTY_ASSISTANT),
            stream(FACULTY_FULL),
            residual=lambda a, b: a.valid_to > b.valid_from,
        )
        assert blocked.run() == []

    def test_group_cross_product(self):
        xs = [TemporalTuple("k", i, i, i + 1) for i in range(3)]
        ys = [TemporalTuple("k", 10 + i, i, i + 1) for i in range(4)]
        join = SurrogateMergeJoin(stream(xs), stream(ys))
        assert len(join.run()) == 12

    def test_workspace_is_group_sized(self):
        xs = [TemporalTuple(f"s{i}", i, 0, 1) for i in range(50)]
        ys = [TemporalTuple(f"s{i}", i, 0, 1) for i in range(50)]
        join = SurrogateMergeJoin(stream(xs), stream(ys))
        join.run()
        # Every group has one tuple per side: peak state is 2.
        assert join.metrics.workspace_high_water == 2

    def test_requires_surrogate_order(self):
        bad = TupleStream.from_tuples(FACULTY_ASSISTANT, order=TS_ASC)
        with pytest.raises(UnsupportedSortOrderError):
            SurrogateMergeJoin(bad, stream(FACULTY_FULL))

    def test_disjoint_key_sets(self):
        xs = [TemporalTuple("a", 1, 0, 1)]
        ys = [TemporalTuple("b", 2, 0, 1)]
        assert SurrogateMergeJoin(stream(xs), stream(ys)).run() == []

    def test_single_pass_each(self):
        join = SurrogateMergeJoin(stream(FACULTY_ASSISTANT), stream(FACULTY_FULL))
        join.run()
        assert join.metrics.passes_x == 1
        assert join.metrics.passes_y == 1
