"""Systematic cross-validation: every supported registry cell agrees
with its nested-loop oracle on randomized data.

This is the whole of Tables 1-3 exercised as one property: for every
(operator, sort-order) combination that claims an algorithm, build it
through the registry, run it on hypothesis-generated inputs, and
compare against the oracle predicate.
"""

import pytest
from hypothesis import given, settings

from repro.streams import (
    NestedLoopJoin,
    NestedLoopSelfSemijoin,
    NestedLoopSemijoin,
    TemporalOperator,
    TupleStream,
    before_predicate,
    contain_predicate,
    contained_predicate,
    overlap_predicate,
    supported_entries,
)
from repro.model import TS_ASC, TemporalRelation, TemporalSchema, sort_tuples

from .conftest import tuple_lists

SCHEMA = TemporalSchema("R", "Id", "Seq")

BINARY_OPERATORS = {
    TemporalOperator.CONTAIN_JOIN: (contain_predicate, "join"),
    TemporalOperator.CONTAIN_SEMIJOIN: (contain_predicate, "semi"),
    TemporalOperator.CONTAINED_SEMIJOIN: (contained_predicate, "semi"),
    TemporalOperator.OVERLAP_JOIN: (overlap_predicate, "join"),
    TemporalOperator.OVERLAP_SEMIJOIN: (overlap_predicate, "semi"),
    TemporalOperator.BEFORE_SEMIJOIN: (before_predicate, "semi"),
}

SELF_OPERATORS = {
    TemporalOperator.SELF_CONTAINED_SEMIJOIN: contained_predicate,
    TemporalOperator.SELF_CONTAIN_SEMIJOIN: contain_predicate,
}


def stream_for(tuples, order, name):
    return TupleStream.from_tuples(
        sort_tuples(tuples, order), order=order, name=name
    )


def binary_cases():
    for operator, (predicate, kind) in BINARY_OPERATORS.items():
        for entry in supported_entries(operator):
            yield pytest.param(
                entry,
                predicate,
                kind,
                id=f"{operator.value}[{entry.x_order}/{entry.y_order}]",
            )


@pytest.mark.parametrize("entry, predicate, kind", list(binary_cases()))
@settings(max_examples=25, deadline=None)
@given(xs=tuple_lists, ys=tuple_lists)
def test_binary_cell_matches_oracle(entry, predicate, kind, xs, ys):
    processor = entry.build(
        stream_for(xs, entry.x_order, "X"),
        stream_for(ys, entry.y_order, "Y"),
    )
    result = processor.run()
    if kind == "join":
        oracle = NestedLoopJoin(
            stream_for(xs, TS_ASC, "X"),
            stream_for(ys, TS_ASC, "Y"),
            predicate,
        ).run()
        assert sorted((a.value, b.value) for a, b in result) == sorted(
            (a.value, b.value) for a, b in oracle
        )
    else:
        oracle = NestedLoopSemijoin(
            stream_for(xs, TS_ASC, "X"),
            stream_for(ys, TS_ASC, "Y"),
            predicate,
        ).run()
        assert sorted(t.value for t in result) == sorted(
            t.value for t in oracle
        )


def self_cases():
    for operator, predicate in SELF_OPERATORS.items():
        for entry in supported_entries(operator):
            yield pytest.param(
                entry, predicate, id=f"{operator.value}[{entry.x_order}]"
            )


@pytest.mark.parametrize("entry, predicate", list(self_cases()))
@settings(max_examples=25, deadline=None)
@given(xs=tuple_lists)
def test_self_cell_matches_oracle(entry, predicate, xs):
    processor = entry.build(stream_for(xs, entry.x_order, "X"))
    result = processor.run()
    oracle = NestedLoopSelfSemijoin(
        stream_for(xs, TS_ASC, "X"), predicate
    ).run()
    assert sorted(t.value for t in result) == sorted(
        t.value for t in oracle
    )


def test_every_supported_cell_is_exercised():
    """Meta-check: the parametrization covers the whole registry."""
    binary_count = sum(1 for _ in binary_cases())
    self_count = sum(1 for _ in self_cases())
    expected_binary = sum(
        len(supported_entries(op)) for op in BINARY_OPERATORS
    )
    expected_self = sum(
        len(supported_entries(op)) for op in SELF_OPERATORS
    )
    assert binary_count == expected_binary > 0
    assert self_count == expected_self > 0
