"""Backend-differential property tests: every registry cell, on every
physical backend, against the nested-loop oracle — with the workspace
high-water mark checked against the cell's state class.

Workloads are seeded-random with deliberately nasty structure: heavy
endpoint ties, duplicate rows, zero-gap adjacency, and zero-width-gap
nesting.  For the bounded state classes the high-water mark is compared
against an interval-stabbing bound computed from the data itself:

* class ``d``  -> exactly 0 state tuples,
* class ``a1`` -> at most 1,
* classes ``a``/``b``/``c``/``b1`` -> bounded by the maximum overlap
  depth (plus, for class ``b``, the maximum number of Y tuples nested
  inside one X lifespan — the paper's own characterisation of that
  state).  The columnar backend's lazily evicted active lists may hold
  up to one extra probe-window of dead entries, hence the factor 2.
"""

import random

import pytest

from repro.model import TS_ASC, TemporalTuple, sort_tuples
from repro.streams import (
    NestedLoopJoin,
    NestedLoopSelfSemijoin,
    NestedLoopSemijoin,
    TemporalOperator,
    before_predicate,
    contain_predicate,
    contained_predicate,
    overlap_predicate,
    supported_entries,
)

from .conftest import make_stream, pair_values, values

BINARY_OPERATORS = {
    TemporalOperator.CONTAIN_JOIN: (contain_predicate, "join"),
    TemporalOperator.CONTAIN_SEMIJOIN: (contain_predicate, "semi"),
    TemporalOperator.CONTAINED_SEMIJOIN: (contained_predicate, "semi"),
    TemporalOperator.OVERLAP_JOIN: (overlap_predicate, "join"),
    TemporalOperator.OVERLAP_SEMIJOIN: (overlap_predicate, "semi"),
    TemporalOperator.BEFORE_SEMIJOIN: (before_predicate, "semi"),
}

SELF_OPERATORS = {
    TemporalOperator.SELF_CONTAINED_SEMIJOIN: contained_predicate,
    TemporalOperator.SELF_CONTAIN_SEMIJOIN: contain_predicate,
}

SEEDS = (3, 17, 42)


def tie_heavy_workload(rng, n, points=9):
    """Endpoints drawn from a tiny domain: ties, duplicates and
    zero-gap intervals are the norm, not the exception."""
    out = []
    for i in range(n):
        a = rng.randrange(points)
        b = rng.randrange(points)
        ts, te = (a, b + 1) if a <= b else (b, a + 1)
        out.append(TemporalTuple(f"s{i % 4}", i, ts, te))
    if n >= 4:  # exact duplicate rows (distinct objects, equal values)
        dup = out[0]
        out[1] = TemporalTuple(dup.surrogate, 1, dup.valid_from, dup.valid_to)
        out[2] = TemporalTuple(dup.surrogate, 2, dup.valid_from, dup.valid_to)
    return out


def overlap_depth(tuples):
    """Maximum number of lifespans covering any single timepoint."""
    events = []
    for t in tuples:
        events.append((t.valid_from, 1))
        events.append((t.valid_to, -1))
    depth = best = 0
    for _, delta in sorted(events):
        depth += delta
        best = max(best, depth)
    return best


def nested_load(xs, ys):
    """Max number of Y lifespans strictly inside one X lifespan — the
    Y-side of the paper's class-(b) state characterisation."""
    return max(
        (
            sum(1 for y in ys if contain_predicate(x, y))
            for x in xs
        ),
        default=0,
    )


def state_bound(state_class, xs, ys):
    depth = overlap_depth(list(xs) + list(ys or []))
    if state_class == "d":
        return 0
    if state_class == "a1":
        return 1
    bound = 2 * depth + 2
    if state_class == "b" and ys is not None:
        bound += nested_load(xs, ys)
    return bound


def binary_cases():
    for operator, (predicate, kind) in BINARY_OPERATORS.items():
        for entry in supported_entries(operator):
            for backend in entry.backends:
                for seed in SEEDS:
                    yield pytest.param(
                        entry,
                        predicate,
                        kind,
                        backend,
                        seed,
                        id=(
                            f"{operator.value}"
                            f"[{entry.x_order}/{entry.y_order}]"
                            f"-{backend}-seed{seed}"
                        ),
                    )


@pytest.mark.parametrize(
    "entry, predicate, kind, backend, seed", binary_cases()
)
def test_binary_cell_differential(entry, predicate, kind, backend, seed):
    rng = random.Random(seed)
    xs = tie_heavy_workload(rng, rng.randrange(5, 40))
    ys = tie_heavy_workload(rng, rng.randrange(5, 40))
    processor = entry.build(
        make_stream(xs, entry.x_order, "X"),
        make_stream(ys, entry.y_order, "Y"),
        backend=backend,
    )
    result = processor.run()
    if kind == "join":
        oracle = NestedLoopJoin(
            make_stream(xs, TS_ASC, "X"),
            make_stream(ys, TS_ASC, "Y"),
            predicate,
        ).run()
        assert pair_values(result) == pair_values(oracle)
    else:
        oracle = NestedLoopSemijoin(
            make_stream(xs, TS_ASC, "X"),
            make_stream(ys, TS_ASC, "Y"),
            predicate,
        ).run()
        assert values(result) == values(oracle)
    high_water = processor.metrics.workspace.high_water
    assert high_water <= state_bound(entry.state_class, xs, ys)
    # Single pass over each input on both backends (the tuple backend
    # may additionally stop early and leave a suffix unread).
    assert processor.metrics.passes_x <= 1
    assert processor.metrics.passes_y <= 1
    assert processor.metrics.tuples_read_x <= len(xs)
    assert processor.metrics.tuples_read_y <= len(ys)
    if backend == "columnar":
        assert processor.metrics.tuples_read_x == len(xs)
        assert processor.metrics.tuples_read_y == len(ys)


def self_cases():
    for operator, predicate in SELF_OPERATORS.items():
        for entry in supported_entries(operator):
            for backend in entry.backends:
                for seed in SEEDS:
                    yield pytest.param(
                        entry,
                        predicate,
                        backend,
                        seed,
                        id=(
                            f"{operator.value}[{entry.x_order}]"
                            f"-{backend}-seed{seed}"
                        ),
                    )


@pytest.mark.parametrize("entry, predicate, backend, seed", self_cases())
def test_self_cell_differential(entry, predicate, backend, seed):
    rng = random.Random(seed)
    xs = tie_heavy_workload(rng, rng.randrange(5, 40))
    processor = entry.build(
        make_stream(xs, entry.x_order, "X"), backend=backend
    )
    result = processor.run()
    oracle = NestedLoopSelfSemijoin(
        make_stream(xs, TS_ASC, "X"), predicate
    ).run()
    assert values(result) == values(oracle)
    high_water = processor.metrics.workspace.high_water
    assert high_water <= state_bound(entry.state_class, xs, None)
    assert processor.metrics.passes_x <= 1
    assert processor.metrics.tuples_read_x == len(xs)


def test_every_cell_runs_on_every_advertised_backend():
    """Meta-check: each supported cell advertises all three physical
    backends."""
    for operators in (BINARY_OPERATORS, SELF_OPERATORS):
        for operator in operators:
            for entry in supported_entries(operator):
                assert "tuple" in entry.backends
                assert "columnar" in entry.backends
                assert "fused" in entry.backends


def three_way_cases():
    for operators in (BINARY_OPERATORS, SELF_OPERATORS):
        for operator in operators:
            for entry in supported_entries(operator):
                for seed in SEEDS:
                    yield pytest.param(
                        entry,
                        seed,
                        id=(
                            f"{operator.value}"
                            f"[{entry.x_order}/{entry.y_order}]"
                            f"-seed{seed}"
                        ),
                    )


def _run_on(entry, backend, xs, ys):
    if ys is None:
        processor = entry.build(
            make_stream(xs, entry.x_order, "X"), backend=backend
        )
    else:
        processor = entry.build(
            make_stream(xs, entry.x_order, "X"),
            make_stream(ys, entry.y_order, "Y"),
            backend=backend,
        )
    return list(processor.run()), processor.metrics


@pytest.mark.parametrize("entry, seed", three_way_cases())
def test_three_way_backends_byte_identical(entry, seed):
    """tuple vs columnar vs fused on every registry cell: identical
    output *sequences* (values and emission order), equal slot-store
    high-water marks between the two batch backends, and comparison
    accounting within the stated drift bound.

    The comparison-parity law (the accounting-drift fix): the tuple
    backend GCs its state before probing, so its ``comparisons`` count
    only live-entry match tests; the batch backends additionally pay
    one merge-advance test per consumed input element, so

        0 <= columnar - tuple <= nx + ny,

    with dead-entry rediscovery split into ``eviction_checks``.  The
    one exception is the contained-semijoin class-(c) cells, where the
    tuple processor breaks at the first witness while the batch sweep
    probes a snapshot — there the law is one-sided (tuple <= columnar).
    The fused backend replaces probe scans by binary searches, charging
    ``bit_length(store)`` per search, so its count is bounded by the
    columnar count plus one extra unit per consumed element.
    """
    rng = random.Random(seed)
    xs = tie_heavy_workload(rng, rng.randrange(5, 40))
    ys = (
        tie_heavy_workload(rng, rng.randrange(5, 40))
        if entry.y_order is not None
        else None
    )
    nx, ny = len(xs), len(ys or [])
    t_out, t_m = _run_on(entry, "tuple", xs, ys)
    c_out, c_m = _run_on(entry, "columnar", xs, ys)
    f_out, f_m = _run_on(entry, "fused", xs, ys)
    assert c_out == t_out
    assert f_out == c_out
    # The two batch backends account state identically: lazy disposal
    # at the same sweep positions, so the same high-water mark.
    assert f_m.workspace.high_water == c_m.workspace.high_water
    # Comparison parity within the stated bound.
    if entry.operator is TemporalOperator.CONTAINED_SEMIJOIN:
        assert t_m.comparisons <= c_m.comparisons
    else:
        assert 0 <= c_m.comparisons - t_m.comparisons <= nx + ny
    assert f_m.comparisons <= c_m.comparisons + nx + ny
    # The eager backend never rediscovers dead entries.
    assert t_m.eviction_checks == 0
    # Audit-record provenance: each run names its backend and kernel.
    assert t_m.backend == "tuple" and t_m.kernel is None
    assert c_m.backend == "columnar" and c_m.kernel
    assert f_m.backend == "fused" and f_m.kernel
