"""Tests for the three end-to-end Superstar strategies."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.superstar import (
    all_strategies,
    conventional_superstar,
    semantic_assumptions_hold,
    semantic_superstar,
    semantic_transformation_applies,
    stream_superstar,
)
from repro.workload import FacultyWorkload, figure1_relation


@pytest.fixture
def strong_faculty():
    """Data satisfying the Section-5 assumptions: continuous careers,
    everyone reaching Full."""
    return FacultyWorkload(
        faculty_count=120, continuous=True, full_fraction=1.0
    ).generate(7)


class TestFigure1:
    def test_smith_is_the_star(self):
        rel = figure1_relation()
        result = conventional_superstar(rel)
        assert result.rows == {("Smith", 0, 30)}

    def test_stream_strategy_agrees(self):
        rel = figure1_relation()
        assert stream_superstar(rel).rows == {("Smith", 0, 30)}

    def test_semantic_assumptions_fail_for_kim(self):
        # Kim stops at Associate, so careers do not all reach Full.
        assert not semantic_assumptions_hold(figure1_relation())


class TestAgreement:
    def test_all_strategies_agree(self, strong_faculty):
        results = all_strategies(strong_faculty)
        assert len(results) == 3
        rows = {r.strategy: r.rows for r in results}
        assert len(set(map(frozenset, rows.values()))) == 1

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_agreement_on_random_seeds(self, seed):
        rel = FacultyWorkload(
            faculty_count=30, continuous=True, full_fraction=1.0
        ).generate(seed)
        all_strategies(rel)  # raises internally on disagreement

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_conventional_vs_stream_without_assumptions(self, seed):
        rel = FacultyWorkload(
            faculty_count=25, continuous=False, full_fraction=0.6
        ).generate(seed)
        assert (
            conventional_superstar(rel).rows == stream_superstar(rel).rows
        )


class TestProfiles:
    def test_scan_counts(self, strong_faculty):
        conventional = conventional_superstar(strong_faculty)
        semantic = semantic_superstar(strong_faculty)
        assert conventional.faculty_scans == 3
        assert semantic.faculty_scans == 1

    def test_semantic_workspace_is_one_tuple(self, strong_faculty):
        semantic = semantic_superstar(strong_faculty)
        assert semantic.workspace_high_water == 1

    def test_comparison_ordering(self, strong_faculty):
        """The paper's performance narrative: conventional >> stream >>
        semantic in join-condition evaluations."""
        conventional = conventional_superstar(strong_faculty)
        stream = stream_superstar(strong_faculty)
        semantic = semantic_superstar(strong_faculty)
        assert semantic.comparisons < stream.comparisons
        assert stream.comparisons < conventional.comparisons

    def test_unoptimized_conventional_is_worst(self, strong_faculty):
        raw = conventional_superstar(strong_faculty, use_rewrites=False)
        optimized = conventional_superstar(strong_faculty)
        assert raw.rows == optimized.rows
        assert raw.comparisons > optimized.comparisons


class TestSemanticApplicability:
    def test_transformation_applies_with_constraints(self, strong_faculty):
        assert semantic_transformation_applies(strong_faculty)

    def test_transformation_needs_constraints(self):
        from repro.model import TemporalRelation

        rel = FacultyWorkload(
            faculty_count=10, continuous=True, full_fraction=1.0
        ).generate(1)
        stripped = TemporalRelation(rel.schema, rel.tuples)
        assert not semantic_transformation_applies(stripped)

    def test_semantic_assumptions_hold(self, strong_faculty):
        assert semantic_assumptions_hold(strong_faculty)

    def test_assumptions_fail_without_continuity(self):
        rel = FacultyWorkload(
            faculty_count=10, continuous=False, full_fraction=1.0
        ).generate(1)
        assert not semantic_assumptions_hold(rel)


class TestEdgeCases:
    def test_empty_faculty(self):
        rel = FacultyWorkload(
            faculty_count=0, continuous=True, full_fraction=1.0
        ).generate(0)
        results = all_strategies(rel)
        assert all(r.rows == frozenset() for r in results)

    def test_single_member_no_witness(self):
        rel = FacultyWorkload(
            faculty_count=1, continuous=True, full_fraction=1.0
        ).generate(0)
        results = all_strategies(rel)
        assert all(r.rows == frozenset() for r in results)


class TestPlannedStrategy:
    def test_picks_semantic_when_constraints_allow(self, strong_faculty):
        from repro.superstar import planned_superstar

        result = planned_superstar(strong_faculty)
        assert result.strategy == "semantic-self-semijoin"
        assert result.details["planned"]
        assert result.rows == conventional_superstar(strong_faculty).rows

    def test_falls_back_without_constraints(self):
        from repro.model import TemporalRelation
        from repro.superstar import planned_superstar

        rel = FacultyWorkload(
            faculty_count=120, continuous=True, full_fraction=1.0
        ).generate(3)
        stripped = TemporalRelation(rel.schema, rel.tuples)
        result = planned_superstar(stripped)
        assert result.strategy == "stream-overlap"
        assert result.rows == conventional_superstar(stripped).rows

    def test_conventional_for_tiny_inputs(self):
        from repro.model import TemporalRelation
        from repro.superstar import planned_superstar

        rel = FacultyWorkload(
            faculty_count=3, continuous=True, full_fraction=1.0
        ).generate(5)
        stripped = TemporalRelation(rel.schema, rel.tuples)
        result = planned_superstar(stripped)
        assert result.strategy in ("conventional", "stream-overlap")
        assert result.rows == conventional_superstar(stripped).rows

    def test_gapped_careers_use_stream_plan(self):
        from repro.superstar import planned_superstar

        rel = FacultyWorkload(
            faculty_count=100, continuous=False, full_fraction=0.7
        ).generate(9)
        result = planned_superstar(rel)
        # Chronological ordering alone cannot prove the derived
        # interval non-empty, so the single-scan plan is unsafe.
        assert result.strategy != "semantic-self-semijoin"
        assert result.rows == conventional_superstar(rel).rows
