"""Unit tests for half-open intervals and their Allen predicates."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import InvalidIntervalError
from repro.model import Interval

intervals = st.tuples(
    st.integers(min_value=-500, max_value=500),
    st.integers(min_value=1, max_value=200),
).map(lambda t: Interval(t[0], t[0] + t[1]))


class TestConstruction:
    def test_valid_interval(self):
        iv = Interval(3, 7)
        assert iv.start == 3
        assert iv.end == 7
        assert iv.duration == 4

    def test_empty_interval_rejected(self):
        with pytest.raises(InvalidIntervalError):
            Interval(5, 5)

    def test_inverted_interval_rejected(self):
        with pytest.raises(InvalidIntervalError):
            Interval(7, 3)

    def test_non_integer_endpoints_rejected(self):
        with pytest.raises(TypeError):
            Interval(0.5, 2)
        with pytest.raises(TypeError):
            Interval(True, 2)

    def test_ordering_is_lexicographic(self):
        assert Interval(0, 10) < Interval(1, 2)
        assert Interval(2, 3) < Interval(2, 5)

    def test_equality_and_hash(self):
        assert Interval(1, 4) == Interval(1, 4)
        assert hash(Interval(1, 4)) == hash(Interval(1, 4))
        assert Interval(1, 4) != Interval(1, 5)


class TestMembership:
    def test_contains_start_point(self):
        assert 3 in Interval(3, 7)

    def test_excludes_end_point(self):
        assert 7 not in Interval(3, 7)

    def test_points_iteration(self):
        assert list(Interval(2, 5).points()) == [2, 3, 4]

    def test_shift(self):
        assert Interval(2, 5).shift(10) == Interval(12, 15)
        assert Interval(2, 5).shift(-2) == Interval(0, 3)


class TestAllenPredicates:
    """Spot checks of each Figure-2 row; exhaustive cross-validation
    against the classifier lives in tests/allen/."""

    def test_equal(self):
        assert Interval(1, 5).equal(Interval(1, 5))
        assert not Interval(1, 5).equal(Interval(1, 6))

    def test_meets(self):
        assert Interval(1, 5).meets(Interval(5, 9))
        assert not Interval(1, 5).meets(Interval(6, 9))
        assert Interval(5, 9).met_by(Interval(1, 5))

    def test_starts(self):
        assert Interval(1, 3).starts(Interval(1, 9))
        assert not Interval(1, 9).starts(Interval(1, 9))
        assert Interval(1, 9).started_by(Interval(1, 3))

    def test_finishes(self):
        assert Interval(7, 9).finishes(Interval(1, 9))
        assert not Interval(1, 9).finishes(Interval(1, 9))
        assert Interval(1, 9).finished_by(Interval(7, 9))

    def test_during_is_strict_on_both_ends(self):
        assert Interval(3, 5).during(Interval(1, 9))
        assert not Interval(1, 5).during(Interval(1, 9))  # shares start
        assert not Interval(3, 9).during(Interval(1, 9))  # shares end

    def test_contains_is_inverse_of_during(self):
        assert Interval(1, 9).contains(Interval(3, 5))
        assert not Interval(3, 5).contains(Interval(1, 9))

    def test_overlaps_requires_strict_partial_overlap(self):
        assert Interval(1, 5).overlaps(Interval(3, 9))
        assert not Interval(1, 9).overlaps(Interval(3, 5))  # contains
        assert not Interval(1, 3).overlaps(Interval(3, 9))  # meets
        assert not Interval(3, 9).overlaps(Interval(1, 5))  # inverse side

    def test_before_requires_gap(self):
        assert Interval(1, 3).before(Interval(5, 9))
        assert not Interval(1, 5).before(Interval(5, 9))  # meets, no gap
        assert Interval(5, 9).after(Interval(1, 3))


class TestGeneralOverlap:
    def test_intersects_when_sharing_a_point(self):
        assert Interval(1, 5).intersects(Interval(4, 9))
        assert Interval(4, 9).intersects(Interval(1, 5))

    def test_meeting_intervals_do_not_intersect(self):
        # Half-open semantics: [1,5) and [5,9) share no timepoint.
        assert not Interval(1, 5).intersects(Interval(5, 9))
        assert Interval(1, 5).is_adjacent(Interval(5, 9))

    def test_containment_implies_intersection(self):
        assert Interval(1, 9).intersects(Interval(3, 5))

    @given(intervals, intervals)
    def test_intersects_is_symmetric(self, x, y):
        assert x.intersects(y) == y.intersects(x)

    @given(intervals, intervals)
    def test_intersects_iff_common_point(self, x, y):
        common = set(x.points()) & set(y.points())
        assert x.intersects(y) == bool(common)


class TestSetConstructions:
    def test_intersection(self):
        assert Interval(1, 6).intersection(Interval(4, 9)) == Interval(4, 6)
        assert Interval(1, 4).intersection(Interval(4, 9)) is None

    def test_union_of_overlapping(self):
        assert Interval(1, 6).union(Interval(4, 9)) == Interval(1, 9)

    def test_union_of_adjacent(self):
        assert Interval(1, 4).union(Interval(4, 9)) == Interval(1, 9)

    def test_union_with_gap_is_none(self):
        assert Interval(1, 3).union(Interval(5, 9)) is None

    def test_span_covers_both(self):
        assert Interval(1, 3).span(Interval(5, 9)) == Interval(1, 9)

    def test_gap_between_disjoint(self):
        assert Interval(1, 3).gap(Interval(5, 9)) == Interval(3, 5)
        assert Interval(5, 9).gap(Interval(1, 3)) == Interval(3, 5)

    def test_gap_of_touching_is_none(self):
        assert Interval(1, 5).gap(Interval(5, 9)) is None
        assert Interval(1, 6).gap(Interval(5, 9)) is None

    @given(intervals, intervals)
    def test_intersection_commutes(self, x, y):
        assert x.intersection(y) == y.intersection(x)

    @given(intervals, intervals)
    def test_intersection_is_within_both(self, x, y):
        common = x.intersection(y)
        if common is not None:
            assert common.start >= x.start and common.end <= x.end
            assert common.start >= y.start and common.end <= y.end
            assert x.intersects(y)
        else:
            assert not x.intersects(y)

    @given(intervals, intervals)
    def test_span_contains_union_points(self, x, y):
        span = x.span(y)
        assert set(x.points()) | set(y.points()) <= set(span.points())
