"""Unit tests for sort orders over temporal tuples."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.model import (
    TE_ASC,
    TE_DESC,
    TS_ASC,
    TS_DESC,
    TS_TE_ASC,
    Direction,
    SortAttribute,
    SortKey,
    SortOrder,
    TemporalTuple,
    sort_tuples,
)


def make_tuples(*spans):
    return [TemporalTuple(f"s{i}", i, a, b) for i, (a, b) in enumerate(spans)]


tuple_lists = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=100),
        st.integers(min_value=1, max_value=50),
    ).map(lambda t: (t[0], t[0] + t[1])),
    max_size=30,
).map(lambda spans: make_tuples(*spans))


class TestSortKey:
    def test_extract(self):
        tup = TemporalTuple("a", 7, 3, 9)
        assert SortKey(SortAttribute.VALID_FROM).compare_value(tup) == 3
        assert SortKey(SortAttribute.VALID_TO).compare_value(tup) == 9
        assert SortKey(SortAttribute.SURROGATE).compare_value(tup) == "a"
        assert SortKey(SortAttribute.VALUE).compare_value(tup) == 7

    def test_mirror_swaps_attribute_and_direction(self):
        key = SortKey(SortAttribute.VALID_FROM, Direction.ASC)
        assert key.mirrored() == SortKey(
            SortAttribute.VALID_TO, Direction.DESC
        )
        assert key.mirrored().mirrored() == key

    def test_mirror_of_surrogate_flips_direction_only(self):
        key = SortKey(SortAttribute.SURROGATE, Direction.ASC)
        assert key.mirrored() == SortKey(
            SortAttribute.SURROGATE, Direction.DESC
        )


class TestSortOrder:
    def test_requires_a_key(self):
        with pytest.raises(ValueError):
            SortOrder(())

    def test_by_ts_ascending(self):
        tuples = make_tuples((5, 9), (1, 2), (3, 20))
        ordered = sort_tuples(tuples, TS_ASC)
        assert [t.valid_from for t in ordered] == [1, 3, 5]
        assert TS_ASC.is_sorted(ordered)

    def test_by_ts_descending(self):
        tuples = make_tuples((5, 9), (1, 2), (3, 20))
        ordered = sort_tuples(tuples, TS_DESC)
        assert [t.valid_from for t in ordered] == [5, 3, 1]
        assert TS_DESC.is_sorted(ordered)
        assert not TS_ASC.is_sorted(ordered)

    def test_by_te(self):
        tuples = make_tuples((5, 9), (1, 2), (3, 20))
        assert [
            t.valid_to for t in sort_tuples(tuples, TE_ASC)
        ] == [2, 9, 20]
        assert [
            t.valid_to for t in sort_tuples(tuples, TE_DESC)
        ] == [20, 9, 2]

    def test_secondary_key_breaks_ties(self):
        tuples = make_tuples((3, 20), (3, 5), (1, 2))
        ordered = sort_tuples(tuples, TS_TE_ASC)
        assert [(t.valid_from, t.valid_to) for t in ordered] == [
            (1, 2),
            (3, 5),
            (3, 20),
        ]

    def test_by_surrogate_groups_histories(self):
        tuples = [
            TemporalTuple("b", 1, 0, 5),
            TemporalTuple("a", 1, 9, 12),
            TemporalTuple("a", 2, 0, 9),
        ]
        ordered = sort_tuples(tuples, SortOrder.by_surrogate())
        assert [(t.surrogate, t.valid_from) for t in ordered] == [
            ("a", 0),
            ("a", 9),
            ("b", 0),
        ]

    def test_descending_surrogate_sort_via_sort_tuples(self):
        tuples = [TemporalTuple(s, 0, 0, 1) for s in ("a", "c", "b")]
        order = SortOrder.of(
            SortKey(SortAttribute.SURROGATE, Direction.DESC)
        )
        ordered = sort_tuples(tuples, order)
        assert [t.surrogate for t in ordered] == ["c", "b", "a"]
        # key_function cannot negate strings and must refuse.
        with pytest.raises(TypeError):
            sorted(tuples, key=order.key_function())

    def test_mirror_round_trip(self):
        assert TS_ASC.mirrored() == TE_DESC
        assert TE_DESC.mirrored() == TS_ASC
        assert TS_TE_ASC.mirrored().mirrored() == TS_TE_ASC

    @given(tuple_lists)
    def test_sort_tuples_result_is_sorted(self, tuples):
        for order in (TS_ASC, TS_DESC, TE_ASC, TE_DESC, TS_TE_ASC):
            assert order.is_sorted(sort_tuples(tuples, order))

    @given(tuple_lists)
    def test_mirror_symmetry_of_sorting(self, tuples):
        """Sorting by an order equals reverse-sorting by its mirror with
        lifespans time-reversed — the symmetry behind the lower half of
        Table 1."""
        ordered = sort_tuples(tuples, TS_ASC)
        reversed_tuples = [
            TemporalTuple(t.surrogate, t.value, -t.valid_to, -t.valid_from)
            for t in tuples
        ]
        mirrored = sort_tuples(reversed_tuples, TS_ASC.mirrored())
        # TE descending on reversed data visits tuples in the same
        # order as TS ascending on the originals.
        assert [t.surrogate for t in mirrored] == [
            t.surrogate for t in ordered
        ]

    @given(tuple_lists)
    def test_key_function_matches_sort_tuples(self, tuples):
        for order in (TS_ASC, TS_DESC, TE_ASC, TS_TE_ASC):
            via_key = sorted(tuples, key=order.key_function())
            assert order.is_sorted(via_key)
            spans = lambda ts: [(t.valid_from, t.valid_to) for t in ts]
            assert sorted(spans(via_key)) == sorted(
                spans(sort_tuples(tuples, order))
            )
