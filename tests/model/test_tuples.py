"""Unit tests for temporal 4-tuples and schemas."""

import pytest

from repro.errors import InvalidIntervalError, SchemaError
from repro.model import Interval, TemporalSchema, TemporalTuple


@pytest.fixture
def smith():
    return TemporalTuple("Smith", "Assistant", 10, 20)


@pytest.fixture
def faculty_schema():
    return TemporalSchema("Faculty", "Name", "Rank")


class TestTemporalTuple:
    def test_fields(self, smith):
        assert smith.surrogate == "Smith"
        assert smith.value == "Assistant"
        assert smith.valid_from == 10
        assert smith.valid_to == 20

    def test_intra_tuple_constraint_enforced(self):
        with pytest.raises(InvalidIntervalError):
            TemporalTuple("Smith", "Assistant", 20, 10)
        with pytest.raises(InvalidIntervalError):
            TemporalTuple("Smith", "Assistant", 20, 20)

    def test_interval_property(self, smith):
        assert smith.interval == Interval(10, 20)
        assert smith.lifespan == smith.interval
        assert smith.duration == 10

    def test_from_interval_roundtrip(self, smith):
        rebuilt = TemporalTuple.from_interval(
            smith.surrogate, smith.value, smith.interval
        )
        assert rebuilt == smith

    def test_holds_at(self, smith):
        assert smith.holds_at(10)
        assert smith.holds_at(19)
        assert not smith.holds_at(20)
        assert not smith.holds_at(9)

    def test_get_timestamp_aliases(self, smith):
        assert smith.get("ValidFrom") == 10
        assert smith.get("TS") == 10
        assert smith.get("ValidTo") == 20
        assert smith.get("TE") == 20

    def test_get_generic_names(self, smith):
        assert smith.get("surrogate") == "Smith"
        assert smith.get("S") == "Smith"
        assert smith.get("value") == "Assistant"
        assert smith.get("V") == "Assistant"

    def test_get_schema_names(self, smith, faculty_schema):
        assert smith.get("Name", faculty_schema) == "Smith"
        assert smith.get("Rank", faculty_schema) == "Assistant"

    def test_get_unknown_attribute(self, smith, faculty_schema):
        with pytest.raises(SchemaError):
            smith.get("Salary", faculty_schema)
        with pytest.raises(SchemaError):
            smith.get("Name")  # no schema supplied

    def test_tuples_are_hashable_values(self, smith):
        again = TemporalTuple("Smith", "Assistant", 10, 20)
        assert smith == again
        assert len({smith, again}) == 1


class TestTemporalSchema:
    def test_attribute_names(self, faculty_schema):
        assert faculty_schema.attribute_names == (
            "Name",
            "Rank",
            "ValidFrom",
            "ValidTo",
        )

    def test_has_attribute(self, faculty_schema):
        assert faculty_schema.has_attribute("Name")
        assert faculty_schema.has_attribute("Rank")
        assert faculty_schema.has_attribute("ValidFrom")
        assert faculty_schema.has_attribute("TE")
        assert not faculty_schema.has_attribute("Salary")

    def test_reserved_names_rejected(self):
        with pytest.raises(SchemaError):
            TemporalSchema("R", "ValidFrom", "Rank")
        with pytest.raises(SchemaError):
            TemporalSchema("R", "Name", "TS")

    def test_duplicate_names_rejected(self):
        with pytest.raises(SchemaError):
            TemporalSchema("R", "Name", "Name")
