"""Tests for the discrete time domain."""

import pytest

from repro.model import ORIGIN, TimeDomain, validate_timepoint


class TestTimeDomain:
    def test_defaults(self):
        domain = TimeDomain()
        assert domain.origin == ORIGIN == 0
        assert 0 in domain
        assert domain.now in domain

    def test_membership(self):
        domain = TimeDomain(origin=10, now=20)
        assert 10 in domain
        assert 20 in domain
        assert 9 not in domain
        assert 21 not in domain
        assert "15" not in domain
        assert True not in domain  # bools are not timepoints

    def test_len(self):
        assert len(TimeDomain(origin=0, now=9)) == 10

    def test_inverted_rejected(self):
        with pytest.raises(ValueError):
            TimeDomain(origin=5, now=4)

    def test_clamp(self):
        domain = TimeDomain(origin=0, now=100)
        assert domain.clamp(-5) == 0
        assert domain.clamp(50) == 50
        assert domain.clamp(500) == 100

    def test_points(self):
        assert list(TimeDomain(origin=3, now=6).points()) == [3, 4, 5, 6]


class TestValidateTimepoint:
    def test_accepts_ints(self):
        assert validate_timepoint(0) == 0
        assert validate_timepoint(-7) == -7

    def test_rejects_floats_and_bools(self):
        with pytest.raises(TypeError):
            validate_timepoint(1.5)
        with pytest.raises(TypeError):
            validate_timepoint(True)
        with pytest.raises(TypeError):
            validate_timepoint("now", name="end")
