"""Unit tests for TemporalRelation."""

import pytest

from repro.errors import SchemaError
from repro.model import (
    TE_ASC,
    TS_ASC,
    Interval,
    TemporalRelation,
    TemporalSchema,
    TemporalTuple,
    faculty_constraints,
)

FACULTY = TemporalSchema("Faculty", "Name", "Rank")


@pytest.fixture
def rel():
    return TemporalRelation.from_rows(
        FACULTY,
        [
            ("Smith", "Assistant", 0, 6),
            ("Smith", "Associate", 6, 12),
            ("Jones", "Assistant", 4, 9),
            ("Jones", "Associate", 9, 15),
        ],
        constraints=faculty_constraints(),
    )


class TestBasics:
    def test_len_and_iter(self, rel):
        assert len(rel) == 4
        assert all(isinstance(t, TemporalTuple) for t in rel)

    def test_contains(self, rel):
        assert TemporalTuple("Smith", "Assistant", 0, 6) in rel
        assert TemporalTuple("Smith", "Full", 0, 6) not in rel

    def test_equality_ignores_tuple_order(self, rel):
        shuffled = rel.replace_tuples(reversed(rel.tuples))
        assert rel == shuffled

    def test_relations_are_unhashable(self, rel):
        with pytest.raises(TypeError):
            hash(rel)


class TestDerivations:
    def test_where_value(self, rel):
        assistants = rel.where_value("Assistant")
        assert len(assistants) == 2
        assert assistants.attribute_values() == {"Assistant"}

    def test_where_surrogate(self, rel):
        smith = rel.where_surrogate("Smith")
        assert len(smith) == 2
        assert smith.surrogates() == {"Smith"}

    def test_sorted_by_records_order(self, rel):
        ordered = rel.sorted_by(TS_ASC)
        assert ordered.order == TS_ASC
        assert ordered.verify_order()
        assert [t.valid_from for t in ordered] == [0, 4, 6, 9]

    def test_where_preserves_order_metadata(self, rel):
        ordered = rel.sorted_by(TE_ASC)
        filtered = ordered.where_value("Associate")
        assert filtered.order == TE_ASC
        assert filtered.verify_order()

    def test_project_intervals(self, rel):
        spans = rel.sorted_by(TS_ASC).project_intervals()
        assert spans[0] == Interval(0, 6)

    def test_group_by_surrogate(self, rel):
        grouped = rel.group_by_surrogate()
        assert set(grouped) == {"Smith", "Jones"}
        assert [t.value for t in grouped["Smith"]] == [
            "Assistant",
            "Associate",
        ]

    def test_timespan(self, rel):
        assert rel.timespan() == (0, 15)
        assert rel.replace_tuples([]).timespan() is None

    def test_snapshot(self, rel):
        at5 = rel.snapshot(5)
        assert {(t.surrogate, t.value) for t in at5} == {
            ("Smith", "Assistant"),
            ("Jones", "Assistant"),
        }


class TestValidation:
    def test_validate_clean_relation(self, rel):
        assert rel.validate() == []

    def test_validate_reports_violations(self):
        dirty = TemporalRelation.from_rows(
            FACULTY,
            [
                ("Smith", "Full", 0, 6),
                ("Smith", "Assistant", 6, 12),
            ],
            constraints=faculty_constraints(),
        )
        assert dirty.validate()

    def test_verify_order_detects_lies(self, rel):
        lying = TemporalRelation(
            rel.schema, reversed(rel.sorted_by(TS_ASC).tuples), order=TS_ASC
        )
        assert not lying.verify_order()

    def test_resolve_attribute(self, rel):
        assert rel.resolve_attribute("Name") == "Name"
        assert rel.resolve_attribute("ValidFrom") == "ValidFrom"
        with pytest.raises(SchemaError):
            rel.resolve_attribute("Salary")
