"""Unit tests for temporal integrity constraints (Sections 2 and 5)."""

import pytest

from repro.errors import IntegrityViolationError
from repro.model import (
    ChronologicalOrdering,
    ConstraintSet,
    ContinuousLifespan,
    FirstValue,
    IntraTupleConstraint,
    SnapshotUniqueness,
    TemporalRelation,
    TemporalSchema,
    faculty_constraints,
)

FACULTY = TemporalSchema("Faculty", "Name", "Rank")


def faculty(*rows):
    return TemporalRelation.from_rows(FACULTY, rows)


@pytest.fixture
def smith_career():
    """The Figure-1 example: Smith rises through all three ranks with
    continuous employment."""
    return faculty(
        ("Smith", "Assistant", 0, 6),
        ("Smith", "Associate", 6, 12),
        ("Smith", "Full", 12, 20),
    )


class TestIntraTuple:
    def test_valid_relation_passes(self, smith_career):
        assert IntraTupleConstraint().holds(smith_career)

    def test_enforce_passes_silently(self, smith_career):
        IntraTupleConstraint().enforce(smith_career)


class TestSnapshotUniqueness:
    def test_disjoint_histories_pass(self, smith_career):
        assert SnapshotUniqueness().holds(smith_career)

    def test_overlapping_history_fails(self):
        rel = faculty(
            ("Smith", "Assistant", 0, 8),
            ("Smith", "Associate", 6, 12),
        )
        violations = SnapshotUniqueness().validate(rel)
        assert len(violations) == 1
        assert "overlap" in violations[0].message

    def test_different_surrogates_may_overlap(self):
        rel = faculty(
            ("Smith", "Assistant", 0, 8),
            ("Jones", "Assistant", 2, 6),
        )
        assert SnapshotUniqueness().holds(rel)


class TestChronologicalOrdering:
    RANKS = ("Assistant", "Associate", "Full")

    def test_career_in_order_passes(self, smith_career):
        assert ChronologicalOrdering(self.RANKS).holds(smith_career)

    def test_gap_between_ranks_allowed(self):
        # Re-hiring with a gap does not violate chronological ordering
        # (only ContinuousLifespan forbids it).
        rel = faculty(
            ("Smith", "Assistant", 0, 6),
            ("Smith", "Full", 15, 20),
        )
        assert ChronologicalOrdering(self.RANKS).holds(rel)

    def test_demotion_fails(self):
        rel = faculty(
            ("Smith", "Associate", 0, 6),
            ("Smith", "Assistant", 6, 12),
        )
        violations = ChronologicalOrdering(self.RANKS).validate(rel)
        assert any("against the declared order" in v.message for v in violations)

    def test_rank_held_twice_fails(self):
        rel = faculty(
            ("Smith", "Assistant", 0, 6),
            ("Smith", "Assistant", 8, 12),
        )
        violations = ChronologicalOrdering(self.RANKS).validate(rel)
        assert any("two distinct periods" in v.message for v in violations)

    def test_unknown_value_fails(self):
        rel = faculty(("Smith", "Emeritus", 0, 6))
        violations = ChronologicalOrdering(self.RANKS).validate(rel)
        assert any("not in" in v.message for v in violations)

    def test_overlapping_ordered_ranks_fail(self):
        rel = faculty(
            ("Smith", "Assistant", 0, 8),
            ("Smith", "Associate", 6, 12),
        )
        assert not ChronologicalOrdering(self.RANKS).holds(rel)

    def test_precedes(self):
        ordering = ChronologicalOrdering(self.RANKS)
        assert ordering.precedes("Assistant", "Full")
        assert not ordering.precedes("Full", "Assistant")
        assert not ordering.precedes("Full", "Full")

    def test_degenerate_orderings_rejected(self):
        with pytest.raises(ValueError):
            ChronologicalOrdering(("OnlyOne",))
        with pytest.raises(ValueError):
            ChronologicalOrdering(("A", "A"))


class TestContinuousLifespan:
    def test_meeting_periods_pass(self, smith_career):
        assert ContinuousLifespan().holds(smith_career)

    def test_gap_fails(self):
        rel = faculty(
            ("Smith", "Assistant", 0, 6),
            ("Smith", "Associate", 8, 12),
        )
        assert not ContinuousLifespan().holds(rel)


class TestFirstValue:
    def test_hired_as_assistant_passes(self, smith_career):
        assert FirstValue("Assistant").holds(smith_career)

    def test_hired_at_higher_rank_fails(self):
        rel = faculty(("Jones", "Full", 0, 6))
        violations = FirstValue("Assistant").validate(rel)
        assert len(violations) == 1


class TestConstraintSet:
    def test_validate_aggregates_all(self):
        rel = faculty(
            ("Smith", "Associate", 0, 8),
            ("Smith", "Assistant", 6, 12),
        )
        cs = faculty_constraints()
        violations = cs.validate(rel)
        assert len(violations) >= 2  # overlap + demotion

    def test_enforce_raises(self):
        rel = faculty(("Smith", "Emeritus", 0, 6))
        with pytest.raises(IntegrityViolationError):
            faculty_constraints().enforce(rel)

    def test_find_by_type(self):
        cs = faculty_constraints(continuous=True)
        assert len(cs.find(ChronologicalOrdering)) == 1
        assert len(cs.find(ContinuousLifespan)) == 1
        assert len(cs.find(FirstValue)) == 1

    def test_with_constraint_is_pure(self):
        base = ConstraintSet()
        extended = base.with_constraint(IntraTupleConstraint())
        assert len(base) == 0
        assert len(extended) == 1

    def test_faculty_constraints_accept_figure1(self, smith_career):
        assert not faculty_constraints(continuous=True).validate(
            smith_career
        )
