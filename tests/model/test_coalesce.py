"""Tests for coalescing and timeslicing."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.model import (
    Interval,
    TemporalRelation,
    TemporalSchema,
    TemporalTuple,
    coalesce,
    history_intervals,
    is_coalesced,
    timeslice,
    total_duration,
)

SCHEMA = TemporalSchema("R", "Id", "Val")


def rel(*rows):
    return TemporalRelation.from_rows(SCHEMA, rows)


class TestCoalesce:
    def test_adjacent_merged(self):
        out = coalesce(rel(("a", 1, 0, 5), ("a", 1, 5, 9)))
        assert list(out) == [TemporalTuple("a", 1, 0, 9)]

    def test_overlapping_merged(self):
        out = coalesce(rel(("a", 1, 0, 6), ("a", 1, 4, 9)))
        assert list(out) == [TemporalTuple("a", 1, 0, 9)]

    def test_gap_not_merged(self):
        out = coalesce(rel(("a", 1, 0, 4), ("a", 1, 6, 9)))
        assert len(out) == 2

    def test_different_values_not_merged(self):
        out = coalesce(rel(("a", 1, 0, 5), ("a", 2, 5, 9)))
        assert len(out) == 2

    def test_different_surrogates_not_merged(self):
        out = coalesce(rel(("a", 1, 0, 5), ("b", 1, 5, 9)))
        assert len(out) == 2

    def test_chain_of_three(self):
        out = coalesce(
            rel(("a", 1, 0, 4), ("a", 1, 3, 8), ("a", 1, 8, 12))
        )
        assert list(out) == [TemporalTuple("a", 1, 0, 12)]

    def test_idempotent(self):
        original = rel(("a", 1, 0, 5), ("a", 1, 5, 9), ("b", 2, 0, 3))
        once = coalesce(original)
        twice = coalesce(once)
        assert once == twice
        assert is_coalesced(once)

    def test_is_coalesced_detects_mergeable(self):
        assert not is_coalesced(rel(("a", 1, 0, 5), ("a", 1, 5, 9)))
        assert is_coalesced(rel(("a", 1, 0, 5), ("a", 1, 6, 9)))

    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=2),  # surrogate id
                st.integers(min_value=0, max_value=1),  # value
                st.integers(min_value=0, max_value=40),
                st.integers(min_value=1, max_value=15),
            ),
            max_size=25,
        )
    )
    def test_property_semantics_preserved(self, rows):
        """Coalescing never changes which (surrogate, value) holds at
        which timepoint."""
        relation = rel(
            *[(f"s{s}", v, a, a + d) for s, v, a, d in rows]
        )
        merged = coalesce(relation)
        assert is_coalesced(merged)

        def facts(r):
            out = set()
            for tup in r:
                for point in tup.interval.points():
                    out.add((tup.surrogate, tup.value, point))
            return out

        assert facts(relation) == facts(merged)
        assert len(merged) <= len(relation)


class TestTimeslice:
    def test_clipping(self):
        out = timeslice(rel(("a", 1, 0, 10)), Interval(4, 6))
        assert list(out) == [TemporalTuple("a", 1, 4, 6)]

    def test_disjoint_dropped(self):
        out = timeslice(rel(("a", 1, 0, 3)), Interval(5, 9))
        assert len(out) == 0

    def test_window_containing_tuple(self):
        out = timeslice(rel(("a", 1, 4, 6)), Interval(0, 10))
        assert list(out) == [TemporalTuple("a", 1, 4, 6)]

    def test_matches_pointwise_snapshots(self):
        relation = rel(
            ("a", 1, 0, 10), ("b", 2, 3, 5), ("c", 3, 8, 20)
        )
        window = Interval(4, 9)
        sliced = timeslice(relation, window)
        for point in window.points():
            assert {
                (t.surrogate, t.value) for t in sliced.snapshot(point)
            } == {
                (t.surrogate, t.value) for t in relation.snapshot(point)
            }


class TestHistoryIntervals:
    def test_merges_across_values(self):
        relation = rel(
            ("a", 1, 0, 5), ("a", 2, 5, 9), ("a", 3, 12, 15)
        )
        assert history_intervals(relation, "a") == [
            Interval(0, 9),
            Interval(12, 15),
        ]

    def test_unknown_surrogate(self):
        assert history_intervals(rel(("a", 1, 0, 5)), "zzz") == []

    def test_total_duration(self):
        assert (
            total_duration([Interval(0, 9), Interval(12, 15)]) == 12
        )
