"""Unit and property tests for external merge sort."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import StorageError
from repro.model import TE_ASC, TS_ASC, TS_DESC, TS_TE_ASC, TemporalTuple
from repro.storage import HeapFile, IOStats, external_sort


def random_tuples(n, seed=7):
    rng = random.Random(seed)
    out = []
    for i in range(n):
        start = rng.randrange(0, 1000)
        out.append(TemporalTuple(f"s{i}", i, start, start + rng.randrange(1, 50)))
    return out


def load(records, page_capacity=4):
    return HeapFile.from_records("data", records, page_capacity=page_capacity)


class TestExternalSort:
    def test_sorts_correctly(self):
        f = load(random_tuples(100))
        result = external_sort(f, TS_ASC, memory_pages=3)
        assert TS_ASC.is_sorted(result.output.records())
        assert result.output.num_records == 100

    def test_preserves_multiset(self):
        data = random_tuples(60)
        f = load(data)
        result = external_sort(f, TE_ASC, memory_pages=3)
        key = lambda t: (t.valid_from, t.valid_to, str(t.surrogate))
        assert sorted(result.output.records(), key=key) == sorted(data, key=key)

    def test_descending_order(self):
        f = load(random_tuples(50))
        result = external_sort(f, TS_DESC, memory_pages=3)
        assert TS_DESC.is_sorted(result.output.records())

    def test_secondary_key(self):
        data = [TemporalTuple(f"s{i}", i, i % 5, i % 5 + 1 + i % 7) for i in range(40)]
        f = load(data)
        result = external_sort(f, TS_TE_ASC, memory_pages=3)
        assert TS_TE_ASC.is_sorted(result.output.records())

    def test_run_count_matches_memory(self):
        # 100 tuples, 4/page, 3 memory pages -> 12 tuples per run -> 9 runs.
        f = load(random_tuples(100))
        result = external_sort(f, TS_ASC, memory_pages=3)
        assert result.runs_generated == 9

    def test_single_run_needs_no_merge(self):
        f = load(random_tuples(10))
        result = external_sort(f, TS_ASC, memory_pages=8)
        assert result.runs_generated == 1
        assert result.merge_passes == 0
        assert result.total_passes == 1

    def test_merge_pass_count(self):
        # 9 runs with fan-in 2 -> ceil(log2(9)) = 4 merge passes.
        f = load(random_tuples(100))
        result = external_sort(f, TS_ASC, memory_pages=3, fan_in=2)
        assert result.runs_generated == 9
        assert result.merge_passes == 4

    def test_io_accounted(self):
        f = load(random_tuples(100))
        stats = IOStats()
        external_sort(f, TS_ASC, memory_pages=3, stats=stats)
        # At minimum: read the input once and write it once as runs.
        assert stats.page_reads >= f.num_pages
        assert stats.page_writes >= f.num_pages
        assert stats.tuple_reads >= 100

    def test_empty_input(self):
        f = HeapFile("empty", page_capacity=4)
        result = external_sort(f, TS_ASC, memory_pages=3)
        assert result.output.num_records == 0
        assert result.runs_generated == 0

    def test_memory_too_small(self):
        f = load(random_tuples(10))
        with pytest.raises(StorageError):
            external_sort(f, TS_ASC, memory_pages=1)
        with pytest.raises(StorageError):
            external_sort(f, TS_ASC, memory_pages=4, fan_in=1)

    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=200),
                st.integers(min_value=1, max_value=40),
            ),
            max_size=80,
        ),
        st.integers(min_value=2, max_value=6),
    )
    def test_property_sorted_and_complete(self, spans, memory_pages):
        data = [
            TemporalTuple(f"s{i}", i, a, a + d) for i, (a, d) in enumerate(spans)
        ]
        f = load(data, page_capacity=3)
        result = external_sort(f, TS_TE_ASC, memory_pages=memory_pages)
        out = result.output.records()
        assert TS_TE_ASC.is_sorted(out)
        assert sorted(t.value for t in out) == sorted(t.value for t in data)


class TestPresortedSkip:
    def sorted_file(self, n=60):
        data = sorted(random_tuples(n), key=lambda t: (t.valid_from,))
        return load(data), data

    def test_sorted_input_skips_the_sort(self):
        f, data = self.sorted_file()
        result = external_sort(f, TS_ASC, memory_pages=3)
        assert result.skipped_presorted
        assert result.output is f
        assert result.runs_generated == 0
        assert result.merge_passes == 0
        # One pass total: the verification scan.
        assert result.total_passes == 1
        assert result.output.records() == data

    def test_skip_charges_only_the_verification_scan(self):
        f, _ = self.sorted_file()
        stats = IOStats()
        external_sort(f, TS_ASC, memory_pages=3, stats=stats)
        assert stats.page_reads == f.num_pages
        assert stats.page_writes == 0

    def test_unsorted_input_pays_partial_check_then_sorts(self):
        f = load(random_tuples(80))
        stats = IOStats()
        result = external_sort(f, TS_ASC, memory_pages=3, stats=stats)
        assert not result.skipped_presorted
        assert result.runs_generated > 0
        assert TS_ASC.is_sorted(result.output.records())
        # The early-exit check gave up before a full pass.
        assert stats.page_writes >= f.num_pages

    def test_presort_check_can_be_disabled(self):
        f, _ = self.sorted_file()
        result = external_sort(
            f, TS_ASC, memory_pages=3, presort_check=False
        )
        assert not result.skipped_presorted
        assert result.runs_generated > 0
        assert result.output is not f

    def test_skip_counter_bumped(self):
        from repro.obs.metrics import (
            MetricsRegistry,
            install_registry,
            uninstall_registry,
        )

        f, _ = self.sorted_file()
        install_registry(MetricsRegistry())
        try:
            external_sort(f, TS_ASC, memory_pages=3)
            from repro.obs.metrics import active_registry

            dump = active_registry().to_prometheus()
        finally:
            uninstall_registry()
        assert "repro_sort_presorted_skips_total 1" in dump


class TestParallelRunGeneration:
    def test_worker_output_identical_to_inline(self):
        data = random_tuples(200, seed=11)
        inline = external_sort(
            load(data), TS_TE_ASC, memory_pages=3
        )
        forked = external_sort(
            load(data), TS_TE_ASC, memory_pages=3, run_sort_workers=4
        )
        assert forked.output.records() == inline.output.records()
        assert forked.runs_generated == inline.runs_generated
        assert TS_TE_ASC.is_sorted(forked.output.records())

    def test_single_worker_is_default_path(self):
        data = random_tuples(50, seed=12)
        result = external_sort(
            load(data), TS_ASC, memory_pages=3, run_sort_workers=1
        )
        assert TS_ASC.is_sorted(result.output.records())
