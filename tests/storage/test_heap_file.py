"""Unit tests for pages and heap files."""

import pytest

from repro.errors import StorageError
from repro.model import TemporalTuple
from repro.storage import HeapFile, IOStats, Page


def tuples(n, start=0):
    return [TemporalTuple(f"s{i}", i, start + i, start + i + 5) for i in range(n)]


class TestPage:
    def test_capacity_enforced(self):
        page = Page(0, capacity=2)
        page.append("a")
        page.append("b")
        assert page.is_full
        with pytest.raises(StorageError):
            page.append("c")

    def test_bad_capacity(self):
        with pytest.raises(StorageError):
            Page(0, capacity=0)

    def test_iteration_order(self):
        page = Page(0, capacity=4)
        for item in "abc":
            page.append(item)
        assert list(page) == ["a", "b", "c"]
        assert len(page) == 3


class TestHeapFile:
    def test_append_allocates_pages(self):
        f = HeapFile("t", page_capacity=4)
        f.extend(tuples(10))
        assert f.num_pages == 3
        assert f.num_records == 10

    def test_from_records_resets_load_cost(self):
        f = HeapFile.from_records("t", tuples(10), page_capacity=4)
        assert f.stats.page_writes == 0
        assert f.stats.tuple_writes == 0

    def test_scan_returns_insertion_order(self):
        data = tuples(10)
        f = HeapFile.from_records("t", data, page_capacity=4)
        assert list(f.scan()) == data

    def test_scan_charges_io(self):
        f = HeapFile.from_records("t", tuples(10), page_capacity=4)
        list(f.scan())
        assert f.stats.page_reads == 3
        assert f.stats.tuple_reads == 10
        assert f.stats.scans_started == 1

    def test_scan_with_external_stats(self):
        f = HeapFile.from_records("t", tuples(8), page_capacity=4)
        external = IOStats()
        list(f.scan(stats=external))
        assert external.page_reads == 2
        assert f.stats.page_reads == 0

    def test_repeated_scans_accumulate(self):
        f = HeapFile.from_records("t", tuples(8), page_capacity=4)
        list(f.scan())
        list(f.scan())
        assert f.stats.scans_started == 2
        assert f.stats.page_reads == 4

    def test_records_is_free(self):
        f = HeapFile.from_records("t", tuples(8), page_capacity=4)
        assert f.records() == tuples(8)
        assert f.stats.page_reads == 0

    def test_empty_file(self):
        f = HeapFile("empty")
        assert f.num_pages == 0
        assert list(f.scan()) == []


class TestIOStats:
    def test_snapshot_and_delta(self):
        stats = IOStats()
        stats.record_page_read(3)
        before = stats.snapshot()
        stats.record_page_read(2)
        stats.record_tuple_read(7)
        delta = stats.delta_since(before)
        assert delta.page_reads == 2
        assert delta.tuple_reads == 7

    def test_total_page_io(self):
        stats = IOStats(page_reads=3, page_writes=4)
        assert stats.total_page_io == 7

    def test_reset(self):
        stats = IOStats(page_reads=3)
        stats.reset()
        assert stats.page_reads == 0
