"""Tests for endpoint indexes."""

import random

import pytest

from repro.errors import StorageError
from repro.model import TS_ASC, TemporalTuple, sort_tuples
from repro.storage import EndpointIndex, HeapFile, IOStats


def random_tuples(n, seed=3, span=1000):
    rng = random.Random(seed)
    out = []
    for i in range(n):
        start = rng.randrange(span)
        out.append(TemporalTuple(f"s{i}", i, start, start + rng.randrange(1, 40)))
    return out


def load(records, page_capacity=16, name="d"):
    return HeapFile.from_records(name, records, page_capacity=page_capacity)


class TestConstruction:
    def test_unknown_endpoint(self):
        with pytest.raises(StorageError):
            EndpointIndex(load([]), "Middle")

    def test_bad_capacity(self):
        with pytest.raises(StorageError):
            EndpointIndex(load([]), "ValidFrom", entry_capacity=0)

    def test_image_size(self):
        index = EndpointIndex(
            load(random_tuples(500)), "ValidFrom", entry_capacity=128
        )
        assert index.num_entries == 500
        assert index.num_index_pages == 4  # ceil(500 / 128)

    def test_empty_file(self):
        index = EndpointIndex(load([]), "ValidFrom")
        assert index.num_index_pages == 0
        assert index.min_key() is None
        assert list(index.range_scan(0, 100)) == []


class TestProbes:
    @pytest.fixture
    def setup(self):
        data = random_tuples(400)
        heap = load(data)
        return data, heap, EndpointIndex(heap, "ValidFrom")

    def test_range_scan_correct(self, setup):
        data, _heap, index = setup
        hits = list(index.range_scan(100, 300))
        expected = sorted(
            (t for t in data if 100 <= t.valid_from < 300),
            key=lambda t: t.valid_from,
        )
        assert [t.value for t in hits] == [t.value for t in expected]

    def test_open_bounds(self, setup):
        data, _heap, index = setup
        assert len(list(index.range_scan())) == len(data)
        assert len(list(index.probe_after(10_000))) == 0
        assert len(list(index.probe_before(-5))) == 0

    def test_probe_after_is_strict(self, setup):
        data, _heap, index = setup
        key = data[0].valid_from
        hits = list(index.probe_after(key))
        assert all(t.valid_from > key for t in hits)
        assert len(hits) == sum(1 for t in data if t.valid_from > key)

    def test_validto_endpoint(self):
        data = random_tuples(100, seed=9)
        index = EndpointIndex(load(data), "ValidTo")
        hits = list(index.range_scan(200, 400))
        assert len(hits) == sum(1 for t in data if 200 <= t.valid_to < 400)

    def test_min_max_keys(self, setup):
        data, _heap, index = setup
        assert index.min_key() == min(t.valid_from for t in data)
        assert index.max_key() == max(t.valid_from for t in data)


class TestIOAccounting:
    def test_selective_probe_beats_scan_on_clustered_file(self):
        """On a ValidFrom-clustered file, a narrow probe touches a few
        pages where a scan touches them all."""
        data = sort_tuples(random_tuples(600, seed=4), TS_ASC)
        heap = load(data, name="clustered")
        index = EndpointIndex(heap, "ValidFrom")
        stats = IOStats()
        hits = list(index.range_scan(100, 140, stats=stats))
        assert hits
        assert stats.page_reads < heap.num_pages / 3

    def test_unclustered_probe_can_exceed_scan(self):
        """The classic optimizer lesson: an unclustered index probe
        pays roughly one data page per hit; wide probes cost more than
        scanning."""
        data = random_tuples(600, seed=5)  # insertion order is random
        heap = load(data, name="unclustered")
        index = EndpointIndex(heap, "ValidFrom")
        stats = IOStats()
        hits = list(index.range_scan(0, 800, stats=stats))
        assert len(hits) > heap.num_pages
        assert stats.page_reads > heap.num_pages

    def test_empty_probe_reads_nothing(self):
        heap = load(random_tuples(100, seed=6))
        index = EndpointIndex(heap, "ValidFrom")
        stats = IOStats()
        assert list(index.range_scan(5000, 6000, stats=stats)) == []
        assert stats.page_reads == 0


class TestBeforeJoinViaIndex:
    def test_index_probe_matches_predicate(self):
        """The Before-join probe shape: for each x, the Y tuples with
        ValidFrom > x.ValidTo."""
        xs = random_tuples(30, seed=7)
        ys = random_tuples(200, seed=8)
        index = EndpointIndex(load(ys, name="y"), "ValidFrom")
        for x in xs:
            via_index = sorted(
                t.value for t in index.probe_after(x.valid_to)
            )
            brute = sorted(
                t.value for t in ys if x.valid_to < t.valid_from
            )
            assert via_index == brute
