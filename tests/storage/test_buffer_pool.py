"""Unit tests for the LRU buffer pool."""

import pytest

from repro.errors import BufferPoolError
from repro.model import TemporalTuple
from repro.storage import BufferPool, HeapFile


def make_file(name, n, page_capacity=4):
    data = [TemporalTuple(f"{name}{i}", i, i, i + 3) for i in range(n)]
    return HeapFile.from_records(name, data, page_capacity=page_capacity)


class TestBufferPool:
    def test_requires_a_frame(self):
        with pytest.raises(BufferPoolError):
            BufferPool(0)

    def test_miss_then_hit(self):
        f = make_file("t", 8)
        pool = BufferPool(4)
        pool.get_page(f, 0)
        pool.get_page(f, 0)
        assert pool.misses == 1
        assert pool.hits == 1
        assert f.stats.page_reads == 1

    def test_lru_eviction(self):
        f = make_file("t", 16)  # 4 pages
        pool = BufferPool(2)
        pool.get_page(f, 0)
        pool.get_page(f, 1)
        pool.get_page(f, 2)  # evicts page 0
        pool.get_page(f, 0)  # miss again
        assert pool.misses == 4
        assert pool.hits == 0

    def test_lru_recency_update(self):
        f = make_file("t", 16)
        pool = BufferPool(2)
        pool.get_page(f, 0)
        pool.get_page(f, 1)
        pool.get_page(f, 0)  # refresh page 0
        pool.get_page(f, 2)  # evicts page 1, not 0
        pool.get_page(f, 0)
        assert pool.hits == 2

    def test_cached_rescan_costs_no_page_reads(self):
        """An inner relation that fits in the pool is physically read
        once regardless of how many times it is scanned — the regime
        where nested-loop joins look cheap."""
        f = make_file("t", 8)  # 2 pages
        pool = BufferPool(8)
        list(pool.scan(f))
        first_cost = f.stats.page_reads
        list(pool.scan(f))
        list(pool.scan(f))
        assert f.stats.page_reads == first_cost == 2
        assert f.stats.scans_started == 3

    def test_uncached_rescan_pays_every_time(self):
        f = make_file("t", 32)  # 8 pages
        pool = BufferPool(2)
        list(pool.scan(f))
        list(pool.scan(f))
        assert f.stats.page_reads == 16

    def test_scan_yields_all_records(self):
        f = make_file("t", 10)
        pool = BufferPool(2)
        assert list(pool.scan(f)) == f.records()

    def test_distinct_files_do_not_collide(self):
        a = make_file("a", 8)
        b = make_file("b", 8)
        pool = BufferPool(8)
        pool.get_page(a, 0)
        pool.get_page(b, 0)
        assert pool.misses == 2

    def test_invalidate(self):
        f = make_file("t", 8)
        pool = BufferPool(8)
        pool.get_page(f, 0)
        pool.invalidate(f)
        pool.get_page(f, 0)
        assert pool.misses == 2
        assert len(pool) == 1

    def test_hit_ratio(self):
        f = make_file("t", 8)
        pool = BufferPool(8)
        assert pool.hit_ratio == 0.0
        pool.get_page(f, 0)
        pool.get_page(f, 0)
        assert pool.hit_ratio == 0.5


class TestSameNameFiles:
    """Regression: frames used to be keyed by ``heap_file.name``, so two
    distinct files sharing a name (re-created sort runs, identically
    named test relations) served each other's pages and evicted each
    other on invalidate."""

    def test_same_name_files_do_not_share_frames(self):
        a = make_file("run", 8)
        b = HeapFile.from_records(
            "run",
            [TemporalTuple(f"b{i}", -i, i, i + 1) for i in range(8)],
            page_capacity=4,
        )
        pool = BufferPool(8)
        page_a = pool.get_page(a, 0)
        page_b = pool.get_page(b, 0)
        assert pool.misses == 2  # b's request must not hit a's frame
        assert list(page_a) != list(page_b)
        # And the cached contents stay per-file on re-request.
        assert list(pool.get_page(b, 0)) == list(page_b)
        assert pool.hits == 1

    def test_invalidate_spares_same_name_files(self):
        a = make_file("run", 8)
        b = make_file("run", 8)
        pool = BufferPool(8)
        pool.get_page(a, 0)
        pool.get_page(b, 0)
        pool.invalidate(a)
        assert len(pool) == 1  # b's frame survives
        pool.get_page(b, 0)
        assert pool.hits == 1

    def test_file_ids_are_unique_and_stable(self):
        a = make_file("run", 4)
        b = make_file("run", 4)
        assert a.file_id != b.file_id
        assert a.file_id == a.file_id
