"""Tests for CSV I/O and the command-line interface."""

import io

import pytest

from repro.cli import main
from repro.errors import SchemaError
from repro.io import dump_temporal_csv, load_temporal_csv, loads_temporal_csv
from repro.model import TemporalTuple, faculty_constraints
from repro.workload import figure1_relation

FACULTY_CSV = """Name,Rank,ValidFrom,ValidTo
Smith,Assistant,0,6
Smith,Associate,6,12
Smith,Full,12,30
"""


class TestCsvIO:
    def test_loads_basic(self):
        rel = loads_temporal_csv(FACULTY_CSV, relation_name="Faculty")
        assert len(rel) == 3
        assert rel.schema.surrogate_name == "Name"
        assert rel.schema.value_name == "Rank"
        assert TemporalTuple("Smith", "Assistant", 0, 6) in rel

    def test_integer_values_parsed(self):
        rel = loads_temporal_csv(
            "Id,Level,ValidFrom,ValidTo\n7,3,0,5\n"
        )
        tup = rel.tuples[0]
        assert tup.surrogate == 7 and tup.value == 3

    def test_round_trip(self, tmp_path):
        original = figure1_relation()
        path = tmp_path / "faculty.csv"
        dump_temporal_csv(original, path)
        loaded = load_temporal_csv(path)
        assert loaded.schema.relation_name == "faculty"
        assert sorted(
            (t.surrogate, t.value, t.valid_from, t.valid_to)
            for t in loaded
        ) == sorted(
            (t.surrogate, t.value, t.valid_from, t.valid_to)
            for t in original
        )

    def test_constraints_attached(self):
        rel = loads_temporal_csv(
            FACULTY_CSV, constraints=faculty_constraints(continuous=True)
        )
        assert rel.validate() == []

    def test_bad_header(self):
        with pytest.raises(SchemaError):
            loads_temporal_csv("a,b,c\n1,2,3\n")
        with pytest.raises(SchemaError):
            loads_temporal_csv("Name,Rank,From,To\nSmith,Full,0,5\n")

    def test_empty_file(self):
        with pytest.raises(SchemaError):
            loads_temporal_csv("")

    def test_bad_arity_row(self):
        with pytest.raises(SchemaError):
            loads_temporal_csv(
                "Name,Rank,ValidFrom,ValidTo\nSmith,Full,0\n"
            )

    def test_dump_to_stream(self):
        buffer = io.StringIO()
        dump_temporal_csv(figure1_relation(), buffer)
        assert buffer.getvalue().startswith("Name,Rank,ValidFrom,ValidTo")


@pytest.fixture
def faculty_csv(tmp_path):
    path = tmp_path / "Faculty.csv"
    dump_temporal_csv(figure1_relation(), path)
    return path


class TestCli:
    def test_query_command(self, faculty_csv, capsys):
        code = main(
            [
                "query",
                "--relation",
                f"Faculty={faculty_csv}",
                'range of f is Faculty retrieve (N = f.Name) '
                'where f.Rank = "Full"',
            ]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "Smith" in captured.out
        assert "Jones" in captured.out
        assert "row(s)" in captured.err

    def test_query_with_explain(self, faculty_csv, capsys):
        code = main(
            [
                "query",
                "--explain",
                "--relation",
                f"Faculty={faculty_csv}",
                "range of f is Faculty retrieve (N = f.Name)",
            ]
        )
        assert code == 0
        assert "Project" in capsys.readouterr().out

    def test_query_semantic_report(self, faculty_csv, capsys):
        superstar = (
            "range of f1 is Faculty range of f2 is Faculty "
            "range of f3 is Faculty "
            "retrieve unique (Name = f1.Name) "
            'where f3.Rank = "Associate" and f1.Name = f2.Name '
            'and f1.Rank = "Assistant" and f2.Rank = "Full" '
            "and (f1 overlap f3) and (f2 overlap f3)"
        )
        code = main(
            [
                "query",
                "--semantic",
                "--relation",
                f"Faculty={faculty_csv}",
                superstar,
            ]
        )
        captured = capsys.readouterr()
        assert code == 0
        # The CSV catalog has no declared constraints, so the
        # optimizer must report zero removals — knowledge comes from
        # declarations, not data.
        assert "removed 0 conjunct(s)" in captured.out

    def test_bad_relation_binding(self, capsys):
        code = main(["query", "--relation", "nonsense", "range of f is F retrieve (N = f.Name)"])
        assert code == 2

    def test_parse_error_reported(self, faculty_csv, capsys):
        code = main(
            [
                "query",
                "--relation",
                f"Faculty={faculty_csv}",
                "retrieve (N = f.Name)",
            ]
        )
        assert code == 1
        assert "error:" in capsys.readouterr().err

    def test_demo_command(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "semantic-self-semijoin" in out
        assert "scans=1" in out
