"""Tests for statistical estimators and workspace prediction."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.model import TS_ASC, TemporalTuple
from repro.stats import (
    collect_statistics,
    estimate_contain_join_workspace,
    estimate_overlap_join_workspace,
    mean_inter_arrival,
)
from repro.streams import OverlapJoin, TupleStream
from repro.workload import PoissonWorkload, fixed_duration


class TestMeanInterArrival:
    def test_uniform_sequence(self):
        assert mean_inter_arrival([0, 10, 20, 30]) == 10.0

    def test_short_sequences(self):
        assert mean_inter_arrival([]) == 0.0
        assert mean_inter_arrival([5]) == 0.0

    def test_irregular_sequence(self):
        # Total gap 9 over 3 intervals.
        assert mean_inter_arrival([1, 2, 3, 10]) == 3.0


class TestCollectStatistics:
    def test_empty(self):
        stats = collect_statistics([])
        assert stats.cardinality == 0
        assert stats.expected_open_tuples() == 0.0

    def test_basic_counts(self):
        tuples = [
            TemporalTuple("a", 1, 0, 10),
            TemporalTuple("b", 2, 5, 7),
            TemporalTuple("c", 3, 10, 30),
        ]
        stats = collect_statistics(tuples)
        assert stats.cardinality == 3
        assert stats.mean_duration == pytest.approx((10 + 2 + 20) / 3)
        assert stats.max_duration == 20
        assert stats.span_start == 0
        assert stats.span_end == 30
        assert stats.mean_inter_arrival == 5.0
        assert stats.arrival_rate == pytest.approx(0.2)

    def test_expected_next_arrival(self):
        tuples = [TemporalTuple(str(i), i, 10 * i, 10 * i + 1) for i in range(5)]
        stats = collect_statistics(tuples)
        assert stats.expected_next_arrival(100) == pytest.approx(110.0)

    def test_recovers_generator_rate(self):
        """The estimator recovers the Poisson workload's lambda within
        sampling error."""
        workload = PoissonWorkload(
            cardinality=4000, arrival_rate=0.25, duration=fixed_duration(5)
        )
        stats = collect_statistics(workload.generate(seed=3))
        assert stats.arrival_rate == pytest.approx(0.25, rel=0.15)
        assert stats.mean_duration == 5.0

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=500),
                st.integers(min_value=1, max_value=50),
            ),
            min_size=2,
            max_size=50,
        )
    )
    def test_open_tuples_estimate_is_nonnegative(self, spans):
        tuples = [
            TemporalTuple(str(i), i, a, a + d) for i, (a, d) in enumerate(spans)
        ]
        stats = collect_statistics(tuples)
        assert stats.expected_open_tuples() >= 0.0
        assert stats.span_length >= 0


class TestWorkspacePrediction:
    """The headline claim: lambda * E[duration] predicts the measured
    state high-water mark of the bounded stream operators."""

    def make_relation(self, rate, duration, n=3000, seed=11):
        workload = PoissonWorkload(
            cardinality=n, arrival_rate=rate, duration=fixed_duration(duration)
        )
        return workload.generate(seed=seed).sorted_by(TS_ASC)

    def test_overlap_join_workspace_prediction(self):
        x_rel = self.make_relation(0.5, 20, seed=1)
        y_rel = self.make_relation(0.5, 20, seed=2)
        predicted = estimate_overlap_join_workspace(
            collect_statistics(x_rel), collect_statistics(y_rel)
        )
        join = OverlapJoin(
            TupleStream.from_relation(x_rel), TupleStream.from_relation(y_rel)
        )
        join.run()
        measured = join.metrics.workspace_high_water
        # The high-water mark is an extreme statistic; allow generous
        # but shape-preserving bounds around the mean-based estimate.
        assert predicted * 0.5 <= measured <= predicted * 4

    def test_prediction_scales_with_duration(self):
        """Doubling lifespans roughly doubles both the estimate and the
        measured workspace — the 'optimal sort order depends on data
        statistics' effect."""
        measured = {}
        predicted = {}
        for duration in (10, 40):
            x_rel = self.make_relation(0.5, duration, seed=3)
            y_rel = self.make_relation(0.5, duration, seed=4)
            predicted[duration] = estimate_overlap_join_workspace(
                collect_statistics(x_rel), collect_statistics(y_rel)
            )
            join = OverlapJoin(
                TupleStream.from_relation(x_rel),
                TupleStream.from_relation(y_rel),
            )
            join.run()
            measured[duration] = join.metrics.workspace_high_water
        assert predicted[40] > 2.5 * predicted[10]
        assert measured[40] > 2.0 * measured[10]

    def test_contain_join_estimate_positive(self):
        x_rel = self.make_relation(0.2, 30, n=500, seed=5)
        y_rel = self.make_relation(0.2, 5, n=500, seed=6)
        estimate = estimate_contain_join_workspace(
            collect_statistics(x_rel), collect_statistics(y_rel)
        )
        assert estimate > 0
