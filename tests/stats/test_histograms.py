"""Tests for histogram-based temporal statistics."""

import pytest

from repro.model import TS_ASC, TemporalTuple
from repro.stats import (
    build_histogram,
    estimate_overlap_pairs,
    estimate_peak_workspace,
)
from repro.streams import OverlapJoin, TupleStream, overlap_predicate
from repro.workload import PoissonWorkload, fixed_duration


def poisson(n, rate, duration, seed, name="R"):
    return PoissonWorkload(
        n, rate, fixed_duration(duration), name=name
    ).generate(seed)


class TestBuildHistogram:
    def test_empty(self):
        hist = build_histogram([], buckets=8)
        assert hist.buckets == 8
        assert hist.peak_open_tuples() == 0.0

    def test_invalid_buckets(self):
        with pytest.raises(ValueError):
            build_histogram([], buckets=0)

    def test_single_tuple_coverage(self):
        hist = build_histogram(
            [TemporalTuple("a", 1, 0, 100)], buckets=10
        )
        assert hist.lo == 0 and hist.hi == 100
        assert sum(hist.starts) == 1
        # The lifespan covers the whole range: every bucket holds
        # exactly its width in coverage.
        assert all(c == 10 for c in hist.coverage)
        assert hist.peak_open_tuples() == pytest.approx(1.0)

    def test_start_counts_partition(self):
        relation = poisson(500, 0.5, 10, seed=1)
        hist = build_histogram(relation, buckets=16)
        assert sum(hist.starts) == 500

    def test_coverage_totals_durations(self):
        relation = poisson(200, 0.5, 10, seed=2)
        hist = build_histogram(relation, buckets=16)
        total_duration = sum(t.duration for t in relation)
        assert sum(hist.coverage) == pytest.approx(
            total_duration, rel=0.02
        )

    def test_bucket_of_clamps(self):
        hist = build_histogram([TemporalTuple("a", 1, 10, 20)], buckets=4)
        assert hist.bucket_of(-100) == 0
        assert hist.bucket_of(10_000) == 3


class TestStationaryAgreement:
    """On stationary Poisson data the histogram agrees with the
    single-number model."""

    def test_peak_close_to_lambda_times_duration(self):
        relation = poisson(3000, 0.5, 30, seed=3)
        hist = build_histogram(relation, buckets=32)
        stationary = 0.5 * 30  # lambda * E[duration]
        assert hist.peak_open_tuples() == pytest.approx(
            stationary, rel=0.35
        )


class TestBurstyData:
    """Where histograms earn their keep: a dense burst inside a sparse
    tail.  The stationary model averages the burst away; the histogram
    localises it."""

    def build_bursty(self):
        burst = [
            TemporalTuple(f"b{i}", i, 1000 + i, 1000 + i + 40)
            for i in range(300)
        ]
        tail = [
            TemporalTuple(f"t{i}", 1000 + i, 40 * i, 40 * i + 10)
            for i in range(300)
        ]
        return burst + tail

    def test_histogram_sees_the_burst(self):
        from repro.stats import collect_statistics

        tuples = self.build_bursty()
        hist = build_histogram(tuples, buckets=64)
        stationary = collect_statistics(tuples).expected_open_tuples()
        measured = self.measured_peak(tuples)
        # Stationary estimate misses the peak badly; histogram is
        # within a factor of ~1.5.
        assert stationary < measured / 3
        assert hist.peak_open_tuples() > measured / 1.5

    def measured_peak(self, tuples):
        points = sorted({t.valid_from for t in tuples})
        return max(
            sum(1 for t in tuples if t.holds_at(p)) for p in points
        )

    def test_workspace_prediction_beats_stationary(self):
        from repro.stats import (
            collect_statistics,
            estimate_overlap_join_workspace,
        )

        tuples = self.build_bursty()
        from repro.model import TemporalRelation, TemporalSchema

        relation = TemporalRelation(
            TemporalSchema("B", "Id", "Seq"), tuples
        ).sorted_by(TS_ASC)
        join = OverlapJoin(
            TupleStream.from_relation(relation),
            TupleStream.from_relation(relation, name="copy"),
        )
        join.run()
        measured = join.metrics.workspace_high_water

        hist = build_histogram(relation, buckets=64)
        histogram_estimate = estimate_peak_workspace(hist, hist)
        stats = collect_statistics(relation)
        stationary_estimate = estimate_overlap_join_workspace(stats, stats)

        histogram_error = abs(histogram_estimate - measured) / measured
        stationary_error = abs(stationary_estimate - measured) / measured
        assert histogram_error < stationary_error / 2


class TestOverlapPairEstimate:
    def test_within_factor_two_on_poisson(self):
        x = poisson(800, 0.5, 20, seed=4, name="X").sorted_by(TS_ASC)
        y = poisson(800, 0.5, 20, seed=5, name="Y").sorted_by(TS_ASC)
        estimate = estimate_overlap_pairs(
            build_histogram(x), build_histogram(y)
        )
        actual = sum(
            1 for a in x for b in y if overlap_predicate(a, b)
        )
        assert actual / 2 <= estimate <= actual * 2

    def test_zero_for_empty(self):
        empty = build_histogram([], buckets=4)
        other = build_histogram([TemporalTuple("a", 1, 0, 5)], buckets=4)
        assert estimate_overlap_pairs(empty, other) == 0.0
