"""The span tree: strict nesting, ordering, and both exporters.

Property tests generate arbitrary tree shapes and verify the tracer
reconstructs exactly that shape with consistent parent/child timing;
the exporters must produce valid JSONL / Chrome trace-event output for
any of them.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import (
    NULL_TRACER,
    Tracer,
    get_tracer,
    set_tracer,
    to_chrome_trace,
    to_jsonl,
)

#: Arbitrary tree shapes as nested lists: [] is a leaf, [t1, t2] a node
#: with two subtrees.
tree_shapes = st.recursive(
    st.just([]),
    lambda child: st.lists(child, max_size=3),
    max_leaves=15,
)


def record_tree(tracer, shape, prefix="n"):
    """Open one span per node, children strictly inside parents."""
    with tracer.span(prefix):
        for i, child in enumerate(shape):
            record_tree(tracer, child, f"{prefix}.{i}")


def count_nodes(shape):
    return 1 + sum(count_nodes(child) for child in shape)


def shape_of(tracer, span):
    return [shape_of(tracer, child) for child in tracer.children_of(span)]


class TestNesting:
    @settings(max_examples=50, deadline=None)
    @given(shape=tree_shapes)
    def test_tree_shape_round_trips(self, shape):
        tracer = Tracer("t")
        record_tree(tracer, shape)
        roots = tracer.roots()
        assert len(roots) == 1
        assert shape_of(tracer, roots[0]) == shape
        assert len(tracer.spans) == count_nodes(shape)
        assert tracer.open_spans == 0

    @settings(max_examples=50, deadline=None)
    @given(shape=tree_shapes)
    def test_children_nest_inside_parent_times(self, shape):
        tracer = Tracer("t")
        record_tree(tracer, shape)
        by_id = {s.span_id: s for s in tracer.spans}
        for span in tracer.spans:
            assert span.end_ns is not None
            assert span.end_ns >= span.start_ns
            if span.parent_id is not None:
                parent = by_id[span.parent_id]
                assert parent.start_ns <= span.start_ns
                assert span.end_ns <= parent.end_ns

    @settings(max_examples=50, deadline=None)
    @given(shape=tree_shapes)
    def test_walk_is_depth_first_in_start_order(self, shape):
        tracer = Tracer("t")
        record_tree(tracer, shape)
        walked = list(tracer.walk())
        assert len(walked) == len(tracer.spans)
        # Depth-first in start order == ascending span ids (creation
        # order), with each child one level below its parent.
        assert [s.span_id for s, _ in walked] == sorted(
            s.span_id for s in tracer.spans
        )
        depth_of = {s.span_id: d for s, d in walked}
        for span, depth in walked:
            if span.parent_id is not None:
                assert depth == depth_of[span.parent_id] + 1
            else:
                assert depth == 0

    def test_completion_is_post_order(self):
        tracer = Tracer("t")
        with tracer.span("root"):
            with tracer.span("a"):
                with tracer.span("a.0"):
                    pass
            with tracer.span("b"):
                pass
        assert [s.name for s in tracer.spans] == ["a.0", "a", "b", "root"]

    def test_out_of_order_finish_raises(self):
        tracer = Tracer("t")
        outer = tracer.span("outer")
        tracer.span("inner")
        with pytest.raises(ValueError, match="out of order"):
            outer.finish()

    def test_exception_marks_span_and_propagates(self):
        tracer = Tracer("t")
        with pytest.raises(RuntimeError):
            with tracer.span("q"):
                raise RuntimeError("boom")
        (span,) = tracer.find("q")
        assert span.attributes["error"] == "RuntimeError"
        assert span.end_ns is not None

    def test_events_attach_to_current_span(self):
        tracer = Tracer("t")
        tracer.event("orphan", at="top")
        with tracer.span("q"):
            tracer.event("inside", n=1)
        assert [e["name"] for e in tracer.orphan_events] == ["orphan"]
        (span,) = tracer.find("q")
        assert span.events[0]["name"] == "inside"
        assert span.events[0]["attributes"] == {"n": 1}

    def test_set_and_attributes(self):
        tracer = Tracer("t")
        with tracer.span("q", a=1) as span:
            span.set(b=2)
        assert span.attributes == {"a": 1, "b": 2}


class TestActiveTracer:
    def test_default_is_null(self):
        assert get_tracer() is NULL_TRACER
        assert not get_tracer().enabled

    def test_set_and_restore(self):
        tracer = Tracer("t")
        previous = set_tracer(tracer)
        try:
            assert get_tracer() is tracer
        finally:
            set_tracer(previous)
        assert get_tracer() is previous


class TestExporters:
    @settings(max_examples=25, deadline=None)
    @given(shape=tree_shapes)
    def test_jsonl_lines_parse_and_cover_every_span(self, shape):
        tracer = Tracer("t")
        record_tree(tracer, shape)
        lines = [
            line for line in to_jsonl(tracer).splitlines() if line
        ]
        records = [json.loads(line) for line in lines]
        assert len(records) == len(tracer.spans)
        for record in records:
            assert record["kind"] == "span"
            assert record["trace"] == "t"
            assert record["end_ns"] >= record["start_ns"]

    @settings(max_examples=25, deadline=None)
    @given(shape=tree_shapes)
    def test_chrome_trace_is_valid_json_with_complete_events(self, shape):
        tracer = Tracer("t")
        record_tree(tracer, shape)
        doc = json.loads(json.dumps(to_chrome_trace(tracer)))
        events = doc["traceEvents"]
        complete = [e for e in events if e["ph"] == "X"]
        assert len(complete) == len(tracer.spans)
        for event in complete:
            assert event["dur"] >= 0
            assert {"name", "ts", "pid", "tid"} <= set(event)
        assert any(e["ph"] == "M" for e in events)

    def test_chrome_trace_instant_events(self):
        tracer = Tracer("t")
        with tracer.span("q"):
            tracer.event("stream.pass", stream="X", read=10)
        doc = to_chrome_trace(tracer)
        instants = [e for e in doc["traceEvents"] if e["ph"] == "i"]
        assert instants and instants[0]["name"] == "stream.pass"
        assert instants[0]["args"] == {"stream": "X", "read": 10}

    def test_exporters_survive_unserialisable_attributes(self):
        tracer = Tracer("t")
        with tracer.span("q", obj=object()):
            pass
        assert json.loads(to_jsonl(tracer).splitlines()[0])
        json.dumps(to_chrome_trace(tracer))


class TestChromeTracks:
    def test_own_process_ids_are_real(self):
        import os
        import threading

        tracer = Tracer("t")
        with tracer.span("q"):
            pass
        doc = to_chrome_trace(tracer)
        (event,) = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert event["pid"] == os.getpid()
        assert event["tid"] == threading.get_native_id()
        names = {
            e["pid"]: e["args"]["name"]
            for e in doc["traceEvents"]
            if e["ph"] == "M" and e["name"] == "process_name"
        }
        assert names[os.getpid()] == "repro:t"

    def test_grafted_pid_gets_its_own_named_track(self):
        import os

        tracer = Tracer("t")
        with tracer.span("shard:0"):
            pass
        # A span carrying a foreign pid/tid (the grafted-worker shape).
        foreign = tracer.spans[0]
        grafted = type(foreign)(
            tracer, "worker:shard:0", tracer._next_id,
            foreign.span_id, foreign.start_ns,
            {"worker": "worker:9999"},
        )
        tracer._next_id += 1
        grafted.end_ns = foreign.end_ns
        grafted.pid = 9999
        grafted.tid = 9999
        tracer.spans.append(grafted)

        doc = to_chrome_trace(tracer)
        events = doc["traceEvents"]
        worker_event = next(
            e for e in events
            if e.get("ph") == "X" and e["name"] == "worker:shard:0"
        )
        assert worker_event["pid"] == 9999
        names = {
            e["pid"]: e["args"]["name"]
            for e in events
            if e["ph"] == "M" and e["name"] == "process_name"
        }
        assert names[9999] == "worker:9999"
        sort_index = {
            e["pid"]: e["args"]["sort_index"]
            for e in events
            if e["ph"] == "M" and e["name"] == "process_sort_index"
        }
        assert sort_index[os.getpid()] < sort_index[9999]

    def test_every_pid_has_thread_metadata(self):
        tracer = Tracer("t")
        with tracer.span("a"):
            with tracer.span("b"):
                pass
        doc = to_chrome_trace(tracer)
        events = doc["traceEvents"]
        pids = {e["pid"] for e in events if e["ph"] == "X"}
        thread_meta = {
            e["pid"]
            for e in events
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert pids <= thread_meta
