"""EXPLAIN ANALYZE: the traced run_query surface, the renderer, and the
CLI subcommand end to end (artifact files included)."""

import json

import pytest

from repro.cli import main
from repro.obs.explain import (
    operator_summaries,
    render_explain,
    render_span_tree,
    single_scan_violations,
)
from repro.obs.trace import NULL_TRACER, Tracer, get_tracer
from repro.query import run_query
from repro.workload import PoissonWorkload, fixed_duration

DURING_QUERY = (
    "range of a is X range of b is Y "
    "retrieve (A = a.Seq, B = b.Seq) where a during b"
)


def catalog(n=120):
    x = PoissonWorkload(n, 0.4, fixed_duration(4), name="X").generate(5)
    y = PoissonWorkload(n, 0.4, fixed_duration(30), name="Y").generate(6)
    return {"X": x, "Y": y}


class TestRunQueryTrace:
    def test_untraced_by_default(self):
        result = run_query(DURING_QUERY, catalog(), streams=True)
        assert result.trace is None
        assert get_tracer() is NULL_TRACER

    def test_trace_true_records_query_tree(self):
        result = run_query(DURING_QUERY, catalog(), streams=True, trace=True)
        tracer = result.trace
        assert tracer is not None and tracer.open_spans == 0
        (query,) = tracer.find("query")
        assert query.attributes["rows"] == len(result.rows)
        # The hybrid planner and the stream operator both report in.
        assert any(s.name.startswith("plan:") for s in tracer.spans)
        operators = [
            s for s in tracer.spans if s.name.startswith("operator:")
        ]
        assert operators
        assert all(
            s.attributes["passes_x"] == 1 and s.attributes["passes_y"] == 1
            for s in operators
        )
        assert get_tracer() is NULL_TRACER

    def test_existing_tracer_is_reused(self):
        tracer = Tracer("mine")
        result = run_query(
            DURING_QUERY, catalog(), streams=True, trace=tracer
        )
        assert result.trace is tracer

    def test_traced_rows_match_untraced(self):
        cat = catalog()
        plain = run_query(DURING_QUERY, cat, streams=True)
        traced = run_query(DURING_QUERY, cat, streams=True, trace=True)
        assert traced.rows == plain.rows


class TestRendering:
    @pytest.fixture()
    def traced(self):
        return run_query(DURING_QUERY, catalog(), streams=True, trace=True)

    def test_span_tree_has_indented_operator_lines(self, traced):
        text = render_span_tree(traced.trace)
        lines = text.splitlines()
        assert lines[0].startswith("query  (")
        op_lines = [ln for ln in lines if "operator:" in ln]
        assert op_lines and all(ln.startswith("  ") for ln in op_lines)
        assert any("pass" in ln and "cmp=" in ln for ln in op_lines)

    def test_render_explain_includes_plan(self, traced):
        text = render_explain(traced.trace, traced.plan)
        assert "== logical plan ==" in text
        assert "== execution trace (EXPLAIN ANALYZE) ==" in text

    def test_operator_summaries_and_single_scan_gate(self, traced):
        summaries = operator_summaries(traced.trace)
        assert summaries
        for summary in summaries:
            assert summary["passes_x"] == 1
            assert summary["pass_reads_x"] == [summary["tuples_read_x"]]
            assert summary["wall_ms"] >= 0
        assert single_scan_violations(traced.trace) == []

    def test_single_scan_violations_flag_multi_pass(self):
        tracer = Tracer("t")
        with tracer.span("operator:x", passes_x=2, pass_reads_x=[5, 5]):
            pass
        violations = single_scan_violations(tracer)
        assert [v["operator"] for v in violations] == ["x"]


class TestCli:
    def test_default_superstar_run_with_artifacts(self, tmp_path, capsys):
        chrome = tmp_path / "trace.json"
        prom = tmp_path / "metrics.prom"
        jsonl = tmp_path / "spans.jsonl"
        code = main(
            [
                "explain-analyze",
                "--faculty",
                "40",
                "--chrome-trace",
                str(chrome),
                "--prometheus",
                str(prom),
                "--jsonl",
                str(jsonl),
                "--check-single-scan",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "== execution trace (EXPLAIN ANALYZE) ==" in out
        assert "operator:" in out
        doc = json.loads(chrome.read_text())
        assert any(e["ph"] == "X" for e in doc["traceEvents"])
        prom_text = prom.read_text()
        assert "repro_stream_passes_total" in prom_text
        assert "repro_operator_runs_total" in prom_text
        for line in jsonl.read_text().splitlines():
            json.loads(line)

    def test_explicit_query_over_csv(self, tmp_path, capsys):
        cat = catalog(n=40)
        paths = {}
        for name, relation in cat.items():
            path = tmp_path / f"{name}.csv"
            schema = relation.schema
            lines = [
                f"{schema.surrogate_name},{schema.value_name},"
                "ValidFrom,ValidTo"
            ]
            lines += [
                f"{t.surrogate},{t.value},{t.valid_from},{t.valid_to}"
                for t in relation.tuples
            ]
            path.write_text("\n".join(lines) + "\n")
            paths[name] = path
        code = main(
            [
                "explain-analyze",
                DURING_QUERY,
                "-r",
                f"X={paths['X']}",
                "-r",
                f"Y={paths['Y']}",
                "--check-single-scan",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "== logical plan ==" in out
        assert "operator:" in out
