"""Per-query audit records: schema, construction, the append-only log,
the run_query hook (success and failure), and the CLI subcommand."""

import json

import pytest

from repro.cli import main
from repro.errors import AdmissionRejectedError
from repro.obs.audit import (
    AUDIT_SCHEMA_VERSION,
    AuditLog,
    build_record,
    normalize_query,
    registry_hash,
    render_record,
    validate_record,
)
from repro.query import run_query
from repro.workload import PoissonWorkload, fixed_duration

DURING_QUERY = (
    "range of a is X range of b is Y "
    "retrieve (A = a.Seq, B = b.Seq) where a during b"
)


def catalog(n=120):
    x = PoissonWorkload(n, 0.4, fixed_duration(4), name="X").generate(5)
    y = PoissonWorkload(n, 0.4, fixed_duration(30), name="Y").generate(6)
    return {"X": x, "Y": y}


class TestRecordConstruction:
    def test_success_record_is_schema_valid(self):
        result = run_query(DURING_QUERY, catalog(), streams=True)
        record = build_record(DURING_QUERY, result=result)
        assert validate_record(record) == []
        assert record["status"] == "ok"
        assert record["rows"] == len(result.rows)
        assert record["schema_version"] == AUDIT_SCHEMA_VERSION
        assert record["plan_hash"] and len(record["plan_hash"]) == 16
        assert record["registry_hash"] == registry_hash()
        assert record["error"] is None
        # JSON-serialisable as-is: that is the JSONL contract.
        json.dumps(record)

    def test_error_record_captures_exception(self):
        record = build_record("retrieve oops", error=ValueError("boom"))
        assert validate_record(record) == []
        assert record["status"] == "error"
        assert record["error"] == {"type": "ValueError", "message": "boom"}
        assert record["rows"] is None

    def test_query_ids_are_unique_and_sequenced(self):
        a = build_record("q", error=ValueError("x"))["query_id"]
        b = build_record("q", error=ValueError("x"))["query_id"]
        assert a != b
        assert a.startswith("q") and "-" in a

    def test_normalize_collapses_whitespace_and_bounds(self):
        assert normalize_query("  a \n\t b  ") == "a b"
        assert len(normalize_query("x" * 2000)) == 500

    def test_registry_hash_is_stable(self):
        assert registry_hash() == registry_hash()
        assert len(registry_hash()) == 16

    def test_stream_join_entries_recorded(self):
        result = run_query(DURING_QUERY, catalog(), streams=True)
        record = build_record(DURING_QUERY, result=result)
        joins = record["stream_joins"]
        assert joins and joins[0]["output_rows"] == len(result.rows)
        assert record["backend"] is None or isinstance(
            record["backend"], str
        )


class TestValidation:
    def base(self):
        result = run_query(DURING_QUERY, catalog(), streams=True)
        return build_record(DURING_QUERY, result=result)

    def test_missing_required_field_flagged(self):
        record = self.base()
        del record["query_id"]
        assert any("query_id" in p for p in validate_record(record))

    def test_wrong_type_flagged(self):
        record = self.base()
        record["rows"] = "many"
        assert any("rows" in p for p in validate_record(record))

    def test_newer_schema_version_flagged(self):
        record = self.base()
        record["schema_version"] = AUDIT_SCHEMA_VERSION + 1
        assert any("newer" in p for p in validate_record(record))

    def test_error_status_requires_error_payload(self):
        record = self.base()
        record["status"] = "error"
        assert any("error" in p for p in validate_record(record))

    def test_shard_rows_need_shard_and_attempt(self):
        record = self.base()
        record["shards"] = [{"output_count": 3}]
        problems = validate_record(record)
        assert any("'shard'" in p for p in problems)
        assert any("'attempt'" in p for p in problems)

    def test_non_dict_record_rejected(self):
        assert validate_record([1, 2]) != []


class TestAuditLog:
    def test_append_records_tail_round_trip(self, tmp_path):
        log = AuditLog(tmp_path / "audit.jsonl")
        for i in range(5):
            log.append(
                build_record(f"query {i}", error=ValueError(str(i)))
            )
        records = log.records()
        assert len(records) == 5
        assert [r["query"] for r in log.tail(2)] == ["query 3", "query 4"]
        assert all(validate_record(r) == [] for r in records)

    def test_missing_file_reads_empty(self, tmp_path):
        assert AuditLog(tmp_path / "nope.jsonl").records() == []


class TestRunQueryHook:
    def test_one_record_per_call(self, tmp_path):
        path = tmp_path / "audit.jsonl"
        cat = catalog()
        run_query(DURING_QUERY, cat, streams=True, audit=path)
        run_query(DURING_QUERY, cat, streams=True, audit=str(path))
        records = AuditLog(path).records()
        assert len(records) == 2
        assert all(r["status"] == "ok" for r in records)
        # Same query, same registry: identical plan/registry hashes.
        assert records[0]["plan_hash"] == records[1]["plan_hash"]
        assert records[0]["registry_hash"] == records[1]["registry_hash"]

    def test_traced_run_embeds_trace_summary_and_shards(self, tmp_path):
        path = tmp_path / "audit.jsonl"
        result = run_query(
            DURING_QUERY,
            catalog(),
            streams=True,
            trace=True,
            parallelism=2,
            audit=path,
        )
        (record,) = AuditLog(path).records()
        assert validate_record(record) == []
        assert record["trace"]["spans"] == len(result.trace.spans)
        shards = record["shards"] or []
        from repro.obs.explain import shard_summaries

        expected = shard_summaries(result.trace)
        assert [s["shard"] for s in shards] == [
            e["shard"] for e in expected
        ]
        assert [s["attempt"] for s in shards] == [
            e["attempt"] for e in expected
        ]

    def test_failure_is_audited_then_reraised(self, tmp_path):
        path = tmp_path / "audit.jsonl"
        with pytest.raises(Exception):
            run_query("this is not a query", catalog(), audit=path)
        (record,) = AuditLog(path).records()
        assert record["status"] == "error"
        assert record["error"]["type"]

    def test_admission_rejection_is_audited(self, tmp_path):
        from repro.governance import AdmissionController

        path = tmp_path / "audit.jsonl"
        controller = AdmissionController(1, queue_timeout=0.0)
        with controller.admit():
            with pytest.raises(AdmissionRejectedError):
                run_query(
                    DURING_QUERY,
                    catalog(),
                    streams=True,
                    admission=controller,
                    audit=path,
                )
        (record,) = AuditLog(path).records()
        assert record["status"] == "error"
        assert record["error"]["type"] == "AdmissionRejectedError"


class TestRendering:
    def test_render_mentions_the_essentials(self):
        result = run_query(DURING_QUERY, catalog(), streams=True)
        text = render_record(build_record(DURING_QUERY, result=result))
        assert "OK" in text
        assert f"rows={len(result.rows)}" in text
        assert "plan=" in text

    def test_render_error_record(self):
        text = render_record(
            build_record("bad", error=RuntimeError("kaput"))
        )
        assert "ERROR" in text and "kaput" in text


class TestCliAudit:
    def run_cli(self, args, capsys):
        code = main(args)
        captured = capsys.readouterr()
        return code, captured.out, captured.err

    def test_validate_ok_log(self, tmp_path, capsys):
        path = tmp_path / "audit.jsonl"
        run_query(DURING_QUERY, catalog(), streams=True, audit=path)
        code, out, err = self.run_cli(
            ["audit", str(path), "--validate"], capsys
        )
        assert code == 0
        assert "all valid" in err
        assert "OK" in out

    def test_validate_flags_bad_record(self, tmp_path, capsys):
        path = tmp_path / "audit.jsonl"
        log = AuditLog(path)
        record = build_record("q", error=ValueError("x"))
        del record["query_id"]
        log.append(record)
        code, _, err = self.run_cli(
            ["audit", str(path), "--validate"], capsys
        )
        assert code == 1
        assert "INVALID" in err

    def test_missing_file_is_an_error(self, tmp_path, capsys):
        code, _, err = self.run_cli(
            ["audit", str(tmp_path / "nope.jsonl")], capsys
        )
        assert code == 2

    def test_json_output_parses(self, tmp_path, capsys):
        path = tmp_path / "audit.jsonl"
        run_query(DURING_QUERY, catalog(), streams=True, audit=path)
        code, out, _ = self.run_cli(
            ["audit", str(path), "--json", "--tail", "1"], capsys
        )
        assert code == 0
        assert json.loads(out.strip())["status"] == "ok"

    def test_explain_analyze_writes_audit_log(self, tmp_path, capsys):
        path = tmp_path / "audit.jsonl"
        code = main(
            [
                "explain-analyze",
                "--faculty",
                "60",
                "--parallelism",
                "2",
                "--audit-log",
                str(path),
            ]
        )
        capsys.readouterr()
        assert code == 0
        records = AuditLog(path).records()
        assert records and records[-1]["status"] == "ok"
        assert all(validate_record(r) == [] for r in records)

    def test_walkthrough_path_warns_not_audited(self, tmp_path, capsys):
        path = tmp_path / "audit.jsonl"
        code = main(
            ["explain-analyze", "--faculty", "60", "--audit-log", str(path)]
        )
        _, err = capsys.readouterr().out, capsys.readouterr().err
        assert code == 0
        assert AuditLog(path).records() == []
