"""The disabled path allocates nothing.

The guarantee is counter-based, not timing-based: every real
:class:`~repro.obs.trace.Span` construction bumps a module counter, so
running fully instrumented engine code under the null tracer must leave
the counter exactly where it was — proof that the default path creates
zero span objects (and the shared ``NULL_SPAN`` singleton is all any
null ``span()`` call ever returns).
"""

from repro.model import TS_ASC, TS_TE_ASC
from repro.obs import (
    NULL_TRACER,
    get_tracer,
    span_creation_count,
)
from repro.obs.trace import NULL_SPAN
from repro.streams import BACKENDS, TemporalOperator, TupleStream, lookup
from repro.workload import PoissonWorkload, fixed_duration, uniform_duration


def run_instrumented_cells():
    """Exercise the instrumented operator/stream/workspace layers."""
    x = PoissonWorkload(300, 0.5, fixed_duration(40), name="X").generate(1)
    y = PoissonWorkload(300, 0.5, fixed_duration(10), name="Y").generate(2)
    z = PoissonWorkload(
        300, 0.7, uniform_duration(5, 45), name="Z"
    ).generate(3)
    join = lookup(TemporalOperator.CONTAIN_JOIN, TS_ASC, TS_ASC)
    self_semi = lookup(
        TemporalOperator.SELF_CONTAINED_SEMIJOIN, TS_TE_ASC, None
    )
    for backend in BACKENDS:
        join.build(
            TupleStream.from_relation(x.sorted_by(TS_ASC), name="X"),
            TupleStream.from_relation(y.sorted_by(TS_ASC), name="Y"),
            backend=backend,
        ).run()
        self_semi.build(
            TupleStream.from_relation(z.sorted_by(TS_TE_ASC), name="Z"),
            backend=backend,
        ).run()


def test_null_tracer_allocates_no_spans():
    assert get_tracer() is NULL_TRACER
    before = span_creation_count()
    run_instrumented_cells()
    assert span_creation_count() == before


def test_null_span_is_a_shared_singleton():
    assert NULL_TRACER.span("anything", attr=1) is NULL_SPAN
    assert NULL_TRACER.span("other") is NULL_SPAN
    # The singleton's whole API is inert.
    with NULL_SPAN as span:
        assert span.set(a=1) is NULL_SPAN
        assert span.event("e") is NULL_SPAN
        assert span.duration_ns == 0
    assert NULL_TRACER.event("e", k="v") is None
    assert NULL_TRACER.spans == ()
