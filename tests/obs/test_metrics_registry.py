"""Counter/gauge/histogram semantics and the Prometheus text dump."""

import pytest

from repro.obs import (
    MetricsRegistry,
    active_registry,
    install_registry,
    uninstall_registry,
)
from repro.obs.metrics import Counter, Gauge, Histogram


class TestCounter:
    def test_inc_and_labels(self):
        c = Counter("repro_things_total")
        c.inc()
        c.inc(2, kind="a")
        c.inc(kind="a")
        assert c.value() == 1
        assert c.value(kind="a") == 3
        assert c.total == 4

    def test_label_order_does_not_matter(self):
        c = Counter("c")
        c.inc(a="1", b="2")
        c.inc(b="2", a="1")
        assert c.value(b="2", a="1") == 2

    def test_counters_only_go_up(self):
        with pytest.raises(ValueError):
            Counter("c").inc(-1)


class TestGauge:
    def test_set_inc_dec(self):
        g = Gauge("g")
        g.set(5)
        g.inc(2)
        g.dec()
        assert g.value() == 6


class TestHistogram:
    def test_cumulative_buckets_and_max(self):
        h = Histogram("h", buckets=(1.0, 10.0, 100.0))
        for v in (0.5, 5, 5, 50, 500):
            h.observe(v)
        assert h.count == 5
        assert h.sum == 560.5
        assert h.max == 500
        assert h.cumulative() == [
            ("1", 1),
            ("10", 3),
            ("100", 4),
            ("+Inf", 5),
        ]

    def test_buckets_must_be_sorted_and_unique(self):
        with pytest.raises(ValueError):
            Histogram("h", buckets=(2.0, 1.0))
        with pytest.raises(ValueError):
            Histogram("h", buckets=(1.0, 1.0))


class TestRegistry:
    def test_get_or_create_returns_same_family(self):
        registry = MetricsRegistry()
        assert registry.counter("c") is registry.counter("c")

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("m")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("m")

    def test_contains_and_iteration_sorted(self):
        registry = MetricsRegistry()
        registry.counter("b")
        registry.gauge("a")
        assert "a" in registry and "z" not in registry
        assert [m.name for m in registry] == ["a", "b"]

    def test_install_uninstall_round_trip(self):
        assert active_registry() is None
        registry = install_registry()
        try:
            assert active_registry() is registry
        finally:
            assert uninstall_registry() is registry
        assert active_registry() is None


class TestPrometheusDump:
    def test_counter_and_gauge_lines(self):
        registry = MetricsRegistry()
        registry.counter(
            "repro_page_reads_total", "Pages read"
        ).inc(3, file="X")
        registry.gauge("repro_state").set(7)
        text = registry.to_prometheus()
        assert "# HELP repro_page_reads_total Pages read" in text
        assert "# TYPE repro_page_reads_total counter" in text
        assert 'repro_page_reads_total{file="X"} 3' in text
        assert "# TYPE repro_state gauge" in text
        assert "repro_state 7" in text
        assert text.endswith("\n")

    def test_histogram_exposition(self):
        registry = MetricsRegistry()
        h = registry.histogram("repro_ws", buckets=(1.0, 8.0))
        for v in (1, 2, 9):
            h.observe(v)
        text = registry.to_prometheus()
        assert 'repro_ws_bucket{le="1"} 1' in text
        assert 'repro_ws_bucket{le="8"} 2' in text
        assert 'repro_ws_bucket{le="+Inf"} 3' in text
        assert "repro_ws_sum 12" in text
        assert "repro_ws_count 3" in text

    def test_label_values_escaped(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(kind='say "hi"\n')
        assert '\\"hi\\"\\n' in registry.to_prometheus()

    def test_as_dict_snapshot(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(2, op="join")
        registry.histogram("h").observe(4)
        snap = registry.as_dict()
        assert snap["c"]["values"] == {"op=join": 2.0}
        assert snap["c"]["total"] == 2.0
        assert snap["h"]["count"] == 1 and snap["h"]["max"] == 4


class TestSnapshotAndMerge:
    def worker_registry(self):
        registry = MetricsRegistry()
        registry.counter("repro_reads_total", "reads").inc(5, stream="X")
        registry.counter("repro_reads_total").inc(3, stream="Y")
        registry.gauge("repro_depth", "depth").set(7)
        registry.histogram("repro_sizes", buckets=(1.0, 10.0)).observe(4)
        return registry

    def test_snapshot_round_trips_through_json(self):
        import json

        snap = self.worker_registry().snapshot()
        restored = MetricsRegistry()
        restored.merge(json.loads(json.dumps(snap)))
        assert restored.counter("repro_reads_total").value(stream="X") == 5
        assert restored.gauge("repro_depth").value() == 7
        h = restored.histogram("repro_sizes", buckets=(1.0, 10.0))
        assert h.count == 1 and h.max == 4

    def test_counters_add_across_merges(self):
        parent = MetricsRegistry()
        parent.merge(self.worker_registry())
        parent.merge(self.worker_registry())
        assert parent.counter("repro_reads_total").value(stream="X") == 10
        assert parent.counter("repro_reads_total").total == 16

    def test_gauges_last_write_wins(self):
        parent = MetricsRegistry()
        parent.gauge("repro_depth").set(1)
        parent.merge(self.worker_registry())
        assert parent.gauge("repro_depth").value() == 7

    def test_histograms_merge_bucket_wise(self):
        parent = MetricsRegistry()
        parent.histogram("repro_sizes", buckets=(1.0, 10.0)).observe(0.5)
        parent.merge(self.worker_registry())
        h = parent.histogram("repro_sizes", buckets=(1.0, 10.0))
        assert h.count == 2
        assert h.sum == 4.5
        assert h.max == 4

    def test_mismatched_histogram_buckets_raise(self):
        parent = MetricsRegistry()
        parent.histogram("repro_sizes", buckets=(2.0, 20.0)).observe(1)
        with pytest.raises(ValueError):
            parent.merge(self.worker_registry())

    def test_merge_labels_add_a_dimension(self):
        parent = MetricsRegistry()
        parent.merge(
            self.worker_registry(), labels={"worker": "42", "shard": "0"}
        )
        counter = parent.counter("repro_reads_total")
        assert counter.value(stream="X", worker="42", shard="0") == 5
        # The bare key stays empty: labelled merges never collide with
        # the parent's own unlabelled samples.
        assert counter.value(stream="X") == 0
        dump = parent.to_prometheus()
        assert 'worker="42"' in dump and 'shard="0"' in dump
