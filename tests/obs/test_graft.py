"""Cross-process trace transport: serialization bounds, clock-offset
shifting, monotone window clamping, and id remapping."""

import json

from repro.obs import Tracer
from repro.obs.graft import (
    DEFAULT_MAX_TRACE_BYTES,
    TRACE_PAYLOAD_VERSION,
    graft_worker_trace,
    serialize_tracer,
)


def worker_tracer():
    """A worker-shaped trace: root -> attempt -> operator (+ event)."""
    tracer = Tracer("worker")
    with tracer.span("worker:shard:0", shard=0):
        with tracer.span("attempt", number=1):
            with tracer.span("operator:contain-join"):
                tracer.event("stream.pass", stream="X", read=10)
    return tracer


def parent_with_shard_span():
    tracer = Tracer("parent")
    with tracer.span("parallel:contain-join"):
        with tracer.span("shard:0"):
            pass
    parallel, shard = tracer.spans
    return tracer, parallel, shard


class TestSerialize:
    def test_payload_shape_and_version(self):
        payload = serialize_tracer(worker_tracer(), pid=42, tid=43)
        assert payload["version"] == TRACE_PAYLOAD_VERSION
        assert payload["pid"] == 42 and payload["tid"] == 43
        assert payload["dropped_spans"] == 0
        assert [s["name"] for s in payload["spans"]] == [
            "worker:shard:0",
            "attempt",
            "operator:contain-join",
        ]
        # Plain JSON end to end — it must cross the result pipe.
        json.dumps(payload)

    def test_dfs_prefix_truncation_keeps_ancestors(self):
        tracer = worker_tracer()
        full = serialize_tracer(tracer, pid=1, tid=1)
        one_record = len(
            json.dumps(full["spans"][0], default=repr)
        )
        cut = serialize_tracer(
            tracer, pid=1, tid=1, max_bytes=one_record + 10
        )
        assert cut["dropped_spans"] == 2
        assert [s["name"] for s in cut["spans"]] == ["worker:shard:0"]
        kept_ids = {s["span_id"] for s in cut["spans"]}
        for record in cut["spans"]:
            assert record["parent_id"] in kept_ids | {None}

    def test_zero_budget_drops_everything_not_fatally(self):
        cut = serialize_tracer(worker_tracer(), pid=1, tid=1, max_bytes=0)
        assert cut["spans"] == []
        assert cut["dropped_spans"] == 3

    def test_default_budget_is_generous(self):
        assert DEFAULT_MAX_TRACE_BYTES >= 64 * 1024


class TestGraft:
    def graft(self, offset_ns, window=None, payload=None):
        parent_tracer, parallel, shard = parent_with_shard_span()
        if payload is None:
            payload = serialize_tracer(worker_tracer(), pid=42, tid=43)
        before = len(parent_tracer.spans)
        result = graft_worker_trace(
            parent_tracer,
            shard,
            payload,
            offset_ns=offset_ns,
            window=window,
            attempt=0,
            worker="worker:42",
        )
        return parent_tracer, parallel, shard, result, before

    def test_spans_rematerialise_under_parent(self):
        tracer, _, shard, result, before = self.graft(offset_ns=0)
        assert len(result.spans) == 3
        assert len(tracer.spans) == before + 3
        by_id = {s.span_id: s for s in tracer.spans}
        root = result.spans[0]
        assert root.parent_id == shard.span_id
        assert by_id[result.spans[1].parent_id] is root
        for span in result.spans:
            assert span.pid == 42 and span.tid == 43
            assert span.attributes["worker"] == "worker:42"
            assert span.attributes["worker_pid"] == 42
            assert span.attributes["attempt"] == 0
            assert span.end_ns >= span.start_ns

    def test_offset_shifts_into_parent_timebase(self):
        worker = worker_tracer()
        payload = serialize_tracer(worker, pid=1, tid=1)
        tracer, _, shard, result, _ = self.graft(
            offset_ns=0, payload=payload
        )
        shift = worker.origin_ns - tracer.origin_ns
        assert result.spans[0].start_ns == (
            payload["spans"][0]["start_ns"] + shift
        )

    def test_window_clamp_is_monotone(self):
        window = (100, 200)
        tracer, _, _, result, _ = self.graft(
            offset_ns=10**15, window=window
        )
        assert result.clamped
        for span in result.spans:
            assert window[0] <= span.start_ns <= window[1]
            assert window[0] <= span.end_ns <= window[1]
            assert span.end_ns >= span.start_ns
        for span in result.spans:
            for event in span.events:
                assert window[0] <= event["ts_ns"] <= window[1]

    def test_no_offset_pins_at_window_start(self):
        window = (5000, 9000)
        _, _, _, result, _ = self.graft(offset_ns=None, window=window)
        assert result.start_ns == window[0]

    def test_empty_payload_is_a_noop(self):
        tracer, _, shard, *_ = self.graft(offset_ns=0)
        count = len(tracer.spans)
        result = graft_worker_trace(
            tracer, shard, None, offset_ns=None
        )
        assert result.spans == [] and len(tracer.spans) == count
        result = graft_worker_trace(
            tracer,
            shard,
            {"spans": [], "dropped_spans": 4},
            offset_ns=None,
        )
        assert result.dropped_spans == 4
