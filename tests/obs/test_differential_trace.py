"""Observability must be free of observable effect: a traced run and an
untraced run of the same registry cell produce byte-identical output
(and identical paper metrics) on every supported Table-1/2/3 cell, on
both physical backends."""

import random

import pytest

from repro.model import TemporalTuple, sort_tuples
from repro.obs import Tracer, install_registry, uninstall_registry
from repro.obs.trace import set_tracer
from repro.streams import (
    BACKENDS,
    TemporalOperator,
    TupleStream,
    supported_entries,
)

BINARY_OPERATORS = (
    TemporalOperator.CONTAIN_JOIN,
    TemporalOperator.CONTAIN_SEMIJOIN,
    TemporalOperator.CONTAINED_SEMIJOIN,
    TemporalOperator.OVERLAP_JOIN,
    TemporalOperator.OVERLAP_SEMIJOIN,
    TemporalOperator.BEFORE_SEMIJOIN,
)

SELF_OPERATORS = (
    TemporalOperator.SELF_CONTAINED_SEMIJOIN,
    TemporalOperator.SELF_CONTAIN_SEMIJOIN,
)


def make_tuples(n, seed):
    rng = random.Random(seed)
    out = []
    for i in range(n):
        start = rng.randrange(0, 120)
        out.append(
            TemporalTuple(f"s{i}", i, start, start + rng.randrange(1, 40))
        )
    return out


def stream_for(tuples, order, name):
    return TupleStream.from_tuples(
        sort_tuples(tuples, order), order=order, name=name
    )


def run_cell(entry, backend, xs, ys, traced):
    x = stream_for(xs, entry.x_order, "X")
    y = (
        stream_for(ys, entry.y_order, "Y")
        if entry.y_order is not None
        else None
    )
    if not traced:
        processor = (
            entry.build(x, backend=backend)
            if y is None
            else entry.build(x, y, backend=backend)
        )
        return processor.run(), processor.metrics
    tracer = Tracer("diff")
    previous = set_tracer(tracer)
    install_registry()
    try:
        processor = (
            entry.build(x, backend=backend)
            if y is None
            else entry.build(x, y, backend=backend)
        )
        out = processor.run()
    finally:
        uninstall_registry()
        set_tracer(previous)
    assert tracer.open_spans == 0
    # Descending-order cells run through the mirror wrapper, which
    # records the span under the inner (ascending) operator's name —
    # so assert on the span family, not the exact name.
    assert any(s.name.startswith("operator:") for s in tracer.spans)
    return out, processor.metrics


def all_cells():
    for operator in BINARY_OPERATORS + SELF_OPERATORS:
        for entry in supported_entries(operator):
            for backend in BACKENDS:
                yield pytest.param(
                    entry,
                    backend,
                    id=(
                        f"{operator.value}"
                        f"[{entry.x_order}/{entry.y_order}]-{backend}"
                    ),
                )


@pytest.mark.parametrize("entry, backend", list(all_cells()))
def test_traced_run_is_byte_identical(entry, backend):
    xs = make_tuples(120, seed=11)
    ys = make_tuples(120, seed=23)
    plain_out, plain_metrics = run_cell(entry, backend, xs, ys, False)
    traced_out, traced_metrics = run_cell(entry, backend, xs, ys, True)
    assert repr(traced_out) == repr(plain_out)
    assert traced_metrics.comparisons == plain_metrics.comparisons
    assert (
        traced_metrics.workspace_high_water
        == plain_metrics.workspace_high_water
    )
    assert traced_metrics.passes_x == plain_metrics.passes_x
    assert traced_metrics.passes_y == plain_metrics.passes_y
    assert traced_metrics.output_count == plain_metrics.output_count
