"""The symbolic Tables 1-3 checker: theory vs tables vs registry.

The load-bearing properties:

* on the real tree all 120 cells agree (the acceptance criterion for
  ``--check-plan``);
* the derivation is *independent* — it reproduces the tables from the
  operators' match conditions, so a deliberately corrupted registry
  cell (or a corrupted-looking disagreement of any kind) is caught;
* the table encoding itself obeys the paper's structure: time-reversal
  mirroring for lower halves, order-freeness exactly for
  Before-semijoin, mixed asc/desc inappropriate for binary operators.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.analysis.check_registry import check_plan
from repro.analysis.tables import (
    ALL_KEYS,
    TE_DOWN,
    TE_UP,
    TS_DOWN,
    TS_UP,
    derive_cell,
    expected_cell,
    full_grid,
)
from repro.model import sortorder as so
from repro.streams import registry as registry_module
from repro.streams.registry import TemporalOperator


# ----------------------------------------------------------------------
# the real tree agrees with itself
# ----------------------------------------------------------------------
def test_full_grid_has_120_cells():
    cells = list(full_grid())
    # 7 binary operators x 4 x 4 sort keys + 2 self operators x 4 keys.
    assert len(cells) == 7 * 16 + 2 * 4 == 120


def test_plan_check_passes_on_the_real_registry():
    report = check_plan()
    assert len(report.cells) == 120
    assert report.ok, report.render_human()
    assert report.render_human().endswith(
        "plan check OK: 120 cells, 0 mismatches"
    )


def test_every_admissible_cell_was_derived_not_assumed():
    """The derivation must agree with the tables cell by cell — this is
    the 'independently re-derive' requirement, stronger than check_plan
    passing (which could in principle be vacuous)."""
    admissible = 0
    for operator, x_order, y_order in full_grid():
        x_key = x_order.primary
        y_key = y_order.primary if y_order is not None else None
        table = expected_cell(operator, x_key, y_key)
        derivation = derive_cell(operator, x_order, y_order)
        assert derivation.admissible == table.admissible, (
            operator,
            x_key,
            y_key,
            derivation.reason,
        )
        admissible += table.admissible
    # Table 1 (with mirrors): contain-join 4, contain-semijoin 4,
    # contained-semijoin 4; Table 2: overlap join/semijoin 2+2;
    # Before-semijoin: all 16 (order-free); Table 3 (with mirrors):
    # contain(X,X) 4, contained(X,X) 2.
    assert admissible == 38


# ----------------------------------------------------------------------
# corruption is caught
# ----------------------------------------------------------------------
def _corrupt(key, **changes):
    registry = dict(registry_module._registry())
    registry[key] = dataclasses.replace(registry[key], **changes)
    return registry


CONTAIN_TS_TS = (TemporalOperator.CONTAIN_JOIN, TS_UP, TS_UP)


def test_corrupted_state_class_is_caught():
    report = check_plan(registry=_corrupt(CONTAIN_TS_TS, state_class="d"))
    assert not report.ok
    (bad,) = report.mismatches
    assert bad.operator == "contain-join"
    assert "registry declares class 'd'" in " ".join(bad.problems)


def test_corrupted_order_free_flag_is_caught():
    report = check_plan(registry=_corrupt(CONTAIN_TS_TS, order_free=True))
    assert not report.ok
    assert any(
        "order_free" in problem
        for cell in report.mismatches
        for problem in cell.problems
    )


def test_unsupported_admissible_cell_is_caught():
    report = check_plan(
        registry=_corrupt(CONTAIN_TS_TS, factory=None, columnar_factory=None)
    )
    assert not report.ok
    assert any(
        "supported=False" in problem
        for cell in report.mismatches
        for problem in cell.problems
    )


def test_missing_backend_is_caught():
    report = check_plan(registry=_corrupt(CONTAIN_TS_TS, columnar_factory=None))
    assert not report.ok
    assert any(
        "lacks backend" in problem
        for cell in report.mismatches
        for problem in cell.problems
    )


def test_missing_cell_is_caught():
    registry = dict(registry_module._registry())
    del registry[CONTAIN_TS_TS]
    report = check_plan(registry=registry)
    assert any(
        "missing from the registry" in problem
        for cell in report.mismatches
        for problem in cell.problems
    )


def test_mismatch_json_names_the_cell():
    report = check_plan(registry=_corrupt(CONTAIN_TS_TS, state_class="b"))
    payload = report.to_dict()
    assert payload["cells_checked"] == 120
    assert payload["mismatches"][0]["operator"] == "contain-join"


# ----------------------------------------------------------------------
# the table encoding obeys the paper's structure
# ----------------------------------------------------------------------
def test_mirror_symmetry_of_binary_tables():
    """Lower halves come from time reversal: mirroring both sort keys
    (TS^ <-> TEv, TSv <-> TE^) preserves the state class."""
    for operator, x_order, y_order in full_grid():
        if y_order is None:
            continue
        x_key, y_key = x_order.primary, y_order.primary
        cell = expected_cell(operator, x_key, y_key)
        mirrored = expected_cell(
            operator, x_key.mirrored(), y_key.mirrored()
        )
        assert mirrored.state_class == cell.state_class, (
            operator,
            x_key,
            y_key,
        )


def test_before_semijoin_is_order_free_everywhere():
    for x_key in ALL_KEYS:
        for y_key in ALL_KEYS:
            cell = expected_cell(
                TemporalOperator.BEFORE_SEMIJOIN, x_key, y_key
            )
            assert cell.state_class == "d" and cell.order_free


def test_before_join_is_inadmissible_everywhere():
    for x_key in ALL_KEYS:
        for y_key in ALL_KEYS:
            cell = expected_cell(TemporalOperator.BEFORE_JOIN, x_key, y_key)
            assert cell.state_class == "-" and not cell.admissible


@pytest.mark.parametrize(
    "operator,x_key,y_key",
    [
        (TemporalOperator.CONTAIN_JOIN, TS_UP, TS_DOWN),
        (TemporalOperator.OVERLAP_JOIN, TS_UP, TE_UP),
        (TemporalOperator.CONTAIN_SEMIJOIN, TE_UP, TS_DOWN),
    ],
)
def test_mixed_directions_are_inappropriate(operator, x_key, y_key):
    """Table 1/2: cells pairing an ascending with a descending primary
    (or sorting on an endpoint with no GC bound) are '-'; the
    derivation must refuse them too."""
    cell = expected_cell(operator, x_key, y_key)
    derivation = derive_cell(
        operator, so.SortOrder.of(x_key), so.SortOrder.of(y_key)
    )
    assert not cell.admissible and not derivation.admissible


def test_table3_self_semijoin_row():
    """Table 3: contained(X,X) single-pass on TS^ only; contain(X,X)
    on TS^ (bounded set) and TSv (single state tuple)."""
    contained = TemporalOperator.SELF_CONTAINED_SEMIJOIN
    contain = TemporalOperator.SELF_CONTAIN_SEMIJOIN
    assert expected_cell(contained, TS_UP).state_class == "a1"
    assert expected_cell(contained, TS_DOWN).state_class == "-"
    assert expected_cell(contain, TS_UP).state_class == "b1"
    assert expected_cell(contain, TS_DOWN).state_class == "a1"
    # ValidTo primaries mirror the ValidFrom column.
    assert expected_cell(contained, TE_DOWN).state_class == "a1"
    assert expected_cell(contain, TE_UP).state_class == "a1"
