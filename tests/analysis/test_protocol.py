"""The pool-protocol checker: extraction facts and corruption drills.

Two layers of confidence: (a) the model extracted from the *real*
``parallel/pool.py`` matches the protocol stated in its prose and
verifies clean; (b) corrupting any single transition — in a doctored
source twin or directly in the model — is caught by a *named*
invariant, several with a simulation witness.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis.check_protocol import (
    PROTOCOL_SCHEMA_VERSION,
    check_protocol,
    corrupted,
    extract_protocol,
    verify_protocol,
)

FIXTURE = (
    Path(__file__).parent / "fixtures" / "protocol" / "pool_ack_after_run.py"
)


@pytest.fixture(scope="module")
def model():
    return extract_protocol()


def _invariants(report):
    return {p.invariant for p in report.problems}


# ----------------------------------------------------------------------
# the real tree
# ----------------------------------------------------------------------
def test_real_tree_extraction_facts(model):
    assert model.worker_sequence == (
        "recv", "sentinel", "ack", "run", "reply",
    )
    assert {"job", "index", "attempt", "pid"} <= model.ack_fields
    assert model.channels["results"] == "simple"
    assert model.channels["acks"] == "simple"
    assert len(model.guards) == 7 and all(model.guards.values())
    assert model.result_kinds_sent == {"summary", "error", "sentinel"}
    assert model.result_kinds_sent <= model.result_kinds_handled


def test_extraction_carries_provenance(model):
    # Every extracted fact must be attributable to a source line.
    assert model.provenance
    assert all(
        ":" in where and where.rsplit(":", 1)[1].isdigit()
        for where in model.provenance.values()
    )
    assert any(key.startswith("guard.") for key in model.provenance)
    assert "worker.ack" in model.provenance


def test_real_tree_protocol_verifies(model):
    report = verify_protocol(model)
    assert report.ok, report.render_human()
    assert "protocol check OK" in report.render_human()
    assert check_protocol().ok  # the CLI path end to end


def test_report_is_schema_versioned(model):
    payload = json.loads(verify_protocol(model).to_json())
    assert payload["schema_version"] == PROTOCOL_SCHEMA_VERSION == 1
    assert payload["problems"] == []
    assert payload["model"]["worker_sequence"] == [
        "recv", "sentinel", "ack", "run", "reply",
    ]


# ----------------------------------------------------------------------
# source-level corruption: the doctored twin
# ----------------------------------------------------------------------
def test_ack_after_run_twin_caught_by_name():
    twin = extract_protocol(
        pool_path=FIXTURE,
        pool_source=FIXTURE.read_text(encoding="utf-8"),
    )
    # Exactly one transition is out of order in the twin...
    assert twin.worker_sequence == (
        "recv", "sentinel", "run", "ack", "reply",
    )
    assert len(twin.guards) == 7 and all(twin.guards.values())
    # ...and the checker names it, with a simulation witness.
    report = verify_protocol(twin)
    assert _invariants(report) == {
        "ack-precedes-run", "no-unattributed-execution",
    }
    unattributed = next(
        p for p in report.problems
        if p.invariant == "no-unattributed-execution"
    )
    assert unattributed.witness
    assert "without a prior ack" in unattributed.witness


# ----------------------------------------------------------------------
# model-level corruption: one field at a time
# ----------------------------------------------------------------------
def test_buffered_reply_channel_breaks_corpse_bound(model):
    bad = corrupted(
        model, channels={**model.channels, "results": "buffered"}
    )
    report = verify_protocol(bad)
    inv = _invariants(report)
    assert "synchronous-results" in inv
    # A feeder thread dying with the message makes a corpse own two
    # unresolved shards; the simulation must find the interleaving.
    assert "corpse-owns-at-most-one" in inv
    owned = next(
        p for p in report.problems
        if p.invariant == "corpse-owns-at-most-one"
    )
    assert owned.witness and "acked but no" in owned.witness


def test_unbumped_attempt_breaks_redispatch_gating(model):
    bad = corrupted(
        model,
        guards={**model.guards, "redispatch_bumps_attempt": False},
    )
    problems = {p.invariant: p for p in verify_protocol(bad).problems}
    assert "redispatch-attempt-gated" in problems
    assert (
        "does not bump the attempt"
        in problems["redispatch-attempt-gated"].detail
    )


def test_missing_stale_ack_guard_loses_ownership(model):
    bad = corrupted(
        model,
        guards={**model.guards, "stale_attempt_ack_rejected": False},
    )
    report = verify_protocol(bad)
    assert "redispatch-attempt-gated" in _invariants(report)
    witness = next(
        p.witness for p in report.problems
        if p.invariant == "redispatch-attempt-gated"
    )
    assert witness and "re-delivered" in witness


def test_every_dropped_guard_is_named(model):
    for guard, invariant in (
        ("stale_job_ack_rejected", "stale-batch-ack-rejected"),
        ("stale_job_result_rejected", "stale-batch-result-rejected"),
        ("duplicate_summary_rejected", "duplicate-summary-rejected"),
        ("redispatch_retry_capped", "redispatch-retry-capped"),
        ("redispatch_fresh_segment", "fresh-segment-per-attempt"),
    ):
        bad = corrupted(model, guards={**model.guards, guard: False})
        assert invariant in _invariants(verify_protocol(bad)), guard


def test_unhandled_message_kind_caught(model):
    bad = corrupted(
        model,
        result_kinds_handled=model.result_kinds_handled - {"error"},
    )
    assert "every-kind-handled" in _invariants(verify_protocol(bad))


def test_ack_without_pid_cannot_attribute_death(model):
    bad = corrupted(model, ack_fields=model.ack_fields - {"pid"})
    assert "ack-attributes-ownership" in _invariants(verify_protocol(bad))


def test_incomplete_worker_loop_caught(model):
    bad = corrupted(
        model,
        worker_sequence=tuple(
            e for e in model.worker_sequence if e != "reply"
        ),
    )
    assert "worker-loop-complete" in _invariants(verify_protocol(bad))
