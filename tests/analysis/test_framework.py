"""The lint framework itself: suppressions, reporters, registry."""

from __future__ import annotations

import ast
import json
from pathlib import Path

import pytest

from repro.analysis.framework import (
    REPORT_SCHEMA_VERSION,
    AnalysisFrameworkError,
    AnalysisReport,
    Finding,
    Rule,
    SourceModule,
    UnusedSuppression,
    analyze_paths,
    is_suppressed,
    register_rule,
    select_rules,
    suppressions_for,
    validate_report,
)


# ----------------------------------------------------------------------
# suppressions
# ----------------------------------------------------------------------
def test_bare_noqa_suppresses_every_rule():
    text = "x = 1  # repro: noqa\n"
    supp = suppressions_for(text)
    assert supp == {1: None}
    finding = Finding("REP999", "m", "f.py", 1, 1)
    assert is_suppressed(finding, supp)


def test_coded_noqa_suppresses_only_listed_rules():
    text = "x = 1  # repro: noqa(REP001, REP006)\n"
    supp = suppressions_for(text)
    assert supp[1] == frozenset({"REP001", "REP006"})
    assert is_suppressed(Finding("REP001", "m", "f.py", 1, 1), supp)
    assert not is_suppressed(Finding("REP002", "m", "f.py", 1, 1), supp)


def test_noqa_inside_string_literal_is_inert():
    text = 's = "# repro: noqa"\nassert s\n'
    assert suppressions_for(text) == {}


def test_noqa_on_other_line_does_not_apply():
    supp = suppressions_for("x = 1  # repro: noqa\ny = 2\n")
    assert not is_suppressed(Finding("REP001", "m", "f.py", 2, 1), supp)


def test_flake8_noqa_is_not_ours():
    assert suppressions_for("import x  # noqa: F401\n") == {}


# ----------------------------------------------------------------------
# source modules
# ----------------------------------------------------------------------
def _module(text: str, posixpath: str) -> SourceModule:
    return SourceModule(Path(posixpath), text, posixpath)


def test_in_dir_matches_parent_directories_only():
    module = _module("x = 1\n", "src/repro/parallel/executor.py")
    assert module.in_dir("parallel")
    assert not module.in_dir("executor")
    assert not module.in_dir("storage")


def test_is_file_matches_path_suffix():
    module = _module("x = 1\n", "src/repro/model/interval.py")
    assert module.is_file("model/interval.py")
    assert not module.is_file("model/tuples.py")


def test_parents_map_links_calls_to_withitems():
    module = _module(
        "with tracer.span('x'):\n    pass\n", "src/repro/obs/x.py"
    )
    call = next(
        node
        for node in ast.walk(module.tree)
        if isinstance(node, ast.Call)
    )
    assert isinstance(module.parents[call], ast.withitem)


# ----------------------------------------------------------------------
# reporters
# ----------------------------------------------------------------------
def test_report_json_shape():
    report = AnalysisReport(
        findings=[Finding("REP001", "msg", "a.py", 3, 7)],
        files_scanned=2,
        suppressed=1,
    )
    payload = json.loads(report.to_json())
    assert payload["schema_version"] == REPORT_SCHEMA_VERSION == 1
    assert payload["files_scanned"] == 2
    assert payload["suppressed"] == 1
    assert payload["unused_suppressions"] == []
    assert payload["findings"] == [
        {"rule": "REP001", "message": "msg", "path": "a.py", "line": 3,
         "col": 7}
    ]
    assert validate_report(payload) == []


def test_validate_report_names_every_defect():
    payload = json.loads(AnalysisReport(files_scanned=1).to_json())
    payload["schema_version"] = 99
    payload["findings"] = [{"rule": "REP001", "path": "a.py"}]
    payload["extra_key"] = True
    del payload["suppressed"]
    problems = "\n".join(validate_report(payload))
    assert "schema_version" in problems
    assert "extra_key" in problems
    assert "suppressed" in problems
    assert "message" in problems  # missing finding key


def test_validate_report_rejects_non_dict():
    assert validate_report([]) != []


def test_report_human_rendering_and_clean_flag():
    report = AnalysisReport(files_scanned=3)
    assert report.clean
    assert report.render_human().endswith(
        "0 findings in 3 files (0 suppressed)"
    )
    report.findings.append(Finding("REP006", "bare assert", "b.py", 9, 5))
    assert not report.clean
    assert "b.py:9:5: REP006 bare assert" in report.render_human()


def test_unused_suppressions_collected_and_rendered(tmp_path):
    mod = tmp_path / "quiet.py"
    mod.write_text("x = 1  # repro: noqa\n", encoding="utf-8")
    report = analyze_paths([mod], root=tmp_path)
    assert report.clean  # a dead noqa alone does not dirty the report
    assert [
        (u.path, u.line, u.codes) for u in report.unused_suppressions
    ] == [("quiet.py", 1, ())]
    unused = report.unused_suppressions[0]
    assert isinstance(unused, UnusedSuppression)
    assert "unused suppression" in unused.render()
    assert "unused suppression" in report.render_human()


def test_selection_ignores_out_of_scope_suppressions(tmp_path):
    # Under --select, a noqa for a rule that is not running is neither
    # used nor dead — it must not be flagged.
    mod = tmp_path / "quiet.py"
    mod.write_text("x = 1  # repro: noqa(REP001)\n", encoding="utf-8")
    report = analyze_paths(
        [mod], rules=select_rules(["REP006"]), root=tmp_path
    )
    assert report.unused_suppressions == []


def test_parse_errors_mark_report_dirty(tmp_path):
    bad = tmp_path / "broken.py"
    bad.write_text("def broken(:\n", encoding="utf-8")
    report = analyze_paths([bad])
    assert report.parse_errors and not report.clean


# ----------------------------------------------------------------------
# rule registry
# ----------------------------------------------------------------------
def test_select_rules_unknown_id_raises():
    with pytest.raises(AnalysisFrameworkError, match="REP999"):
        select_rules(["REP999"])


def test_register_rule_rejects_duplicate_ids():
    class Impostor(Rule):
        id = "REP001"
        title = "impostor"

        def check(self, module):
            return iter(())

    with pytest.raises(AnalysisFrameworkError, match="duplicate"):
        register_rule(Impostor)


def test_register_rule_requires_an_id():
    class Nameless(Rule):
        def check(self, module):
            return iter(())

    with pytest.raises(AnalysisFrameworkError, match="no id"):
        register_rule(Nameless)
