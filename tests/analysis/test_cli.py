"""The ``python -m repro.analysis`` CLI exit-code contract.

Exercised in-process through ``main(argv, out=...)`` — the same entry
point the interpreter uses — so the CI contract (0 clean / 1 findings
/ 2 usage errors) is pinned without paying subprocess start-up 1600
times.
"""

from __future__ import annotations

import io
import json
from pathlib import Path

from repro.analysis.__main__ import main
from repro.analysis.framework import validate_report

FIXTURES = Path(__file__).parent / "fixtures" / "repo"
REPO_SRC = Path(__file__).parent.parent.parent / "src"


def _run(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


def test_exit_zero_on_clean_tree():
    code, output = _run(str(REPO_SRC), "--root", str(REPO_SRC))
    assert code == 0
    assert "0 findings" in output


def test_exit_one_on_fixture_corpus():
    code, output = _run(str(FIXTURES), "--root", str(FIXTURES))
    assert code == 1
    assert "36 findings" in output and "(2 suppressed)" in output


def test_exit_two_on_missing_path():
    code, _ = _run("no/such/path")
    assert code == 2


def test_exit_two_on_unknown_rule_id():
    code, _ = _run(str(FIXTURES), "--select", "REP999")
    assert code == 2


def test_select_narrows_to_one_rule():
    code, output = _run(
        str(FIXTURES), "--select", "REP006", "--root", str(FIXTURES)
    )
    assert code == 1
    assert "1 finding in" in output


def test_json_report_to_stdout():
    code, output = _run(
        str(FIXTURES), "--root", str(FIXTURES), "--json", "-"
    )
    assert code == 1
    payload = json.loads(output[output.index("{"):])
    assert payload["schema_version"] == 1
    assert len(payload["findings"]) == 36


def test_json_report_to_file(tmp_path):
    target = tmp_path / "report.json"
    code, _ = _run(
        str(FIXTURES), "--root", str(FIXTURES), "--json", str(target)
    )
    assert code == 1
    payload = json.loads(target.read_text(encoding="utf-8"))
    assert {f["rule"] for f in payload["findings"]} == {
        "REP001", "REP002", "REP003", "REP004", "REP005", "REP006",
        "REP007", "REP008", "REP009", "REP010",
    }
    assert validate_report(payload) == []


def test_list_rules_catalogue():
    code, output = _run("--list-rules")
    assert code == 0
    for rule_id in ("REP001", "REP002", "REP003", "REP004", "REP005",
                    "REP006", "REP007", "REP008", "REP009", "REP010"):
        assert rule_id in output


def test_check_plan_alone_exits_zero():
    code, output = _run("--check-plan")
    assert code == 0
    assert "plan check OK: 120 cells, 0 mismatches" in output


def test_check_plan_combined_with_lint():
    code, output = _run("--check-plan", str(REPO_SRC))
    assert code == 0
    assert "plan check OK" in output and "0 findings" in output


def test_parse_error_exits_two(tmp_path):
    bad = tmp_path / "broken.py"
    bad.write_text("def broken(:\n", encoding="utf-8")
    code, output = _run(str(bad))
    assert code == 2
    assert "PARSE ERROR" in output


def test_check_protocol_alone_exits_zero():
    code, output = _run("--check-protocol")
    assert code == 0
    assert "protocol check OK" in output
    assert "7/7 guards present" in output


def test_check_protocol_combined_with_lint():
    code, output = _run("--check-protocol", str(REPO_SRC))
    assert code == 0
    assert "protocol check OK" in output and "0 findings" in output


def test_both_checks_run_when_combined():
    # Regression: with two --check-* flags and no lint paths, both
    # checks must execute (neither short-circuits the other).
    code, output = _run("--check-plan", "--check-protocol")
    assert code == 0
    assert "plan check OK" in output and "protocol check OK" in output


def test_strict_noqa_fails_on_dead_suppression(tmp_path):
    stale = tmp_path / "stale.py"
    stale.write_text(
        "import time\n\nx = 1  # repro: noqa(REP003)\n", encoding="utf-8"
    )
    code, output = _run(str(stale))
    assert code == 0  # without the flag the dead noqa is tolerated
    code, output = _run(str(stale), "--strict-noqa")
    assert code == 1
    assert "unused suppression" in output


def test_strict_noqa_rejects_select():
    code, _ = _run(str(FIXTURES), "--strict-noqa", "--select", "REP001")
    assert code == 2


def test_real_tree_survives_strict_noqa():
    # Every noqa in src/ must be load-bearing.
    code, output = _run(
        str(REPO_SRC), "--root", str(REPO_SRC), "--strict-noqa"
    )
    assert code == 0
    assert "unused suppression" not in output
