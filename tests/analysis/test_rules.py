"""The REP rules against the fixture corpus and the real tree.

Two directions per rule: the violation fixtures must fire at exact
(rule, path, line) coordinates (no blind spots), and the clean
fixtures plus the whole of ``src/repro`` must stay silent (no false
positives).  The fixture tree mirrors the repo layout because the
rules scope by path fragment.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis.framework import all_rules, analyze_paths, select_rules

FIXTURES = Path(__file__).parent / "fixtures" / "repo"
REPO_SRC = Path(__file__).parent.parent.parent / "src" / "repro"

#: Every finding the corpus must produce, exactly.
EXPECTED = {
    ("REP001", "streams/rep001_violation.py", 5),
    ("REP001", "streams/rep001_violation.py", 9),
    ("REP001", "streams/rep001_violation.py", 13),
    ("REP001", "streams/rep001_violation.py", 17),
    ("REP001", "streams/rep001_violation.py", 21),
    ("REP001", "streams/rep001_violation.py", 25),
    ("REP001", "streams/rep001_violation.py", 29),
    ("REP001", "streams/rep_suppressed.py", 14),
    ("REP002", "query/rep002_violation.py", 5),
    ("REP002", "query/rep002_violation.py", 9),
    ("REP003", "parallel/rep003_violation.py", 7),
    ("REP003", "parallel/rep003_violation.py", 8),
    ("REP003", "parallel/rep003_violation.py", 12),
    ("REP003", "parallel/rep003_violation.py", 16),
    ("REP003", "parallel/rep003_violation.py", 16),
    ("REP003", "parallel/rep003_violation.py", 20),
    ("REP003", "governance/rep003_violation.py", 7),
    ("REP004", "columnar/kernels.py", 4),
    ("REP004", "streams/rep004_violation.py", 5),
    ("REP005", "obs/rep005_violation.py", 5),
    ("REP005", "obs/rep005_violation.py", 11),
    ("REP006", "streams/rep006_violation.py", 5),
    ("REP007", "parallel/rep007_violation.py", 7),
    ("REP007", "parallel/rep007_violation.py", 14),
    ("REP007", "parallel/rep007_violation.py", 27),
    ("REP007", "parallel/rep007_violation.py", 31),
    ("REP007", "parallel/rep007_violation.py", 36),
    ("REP008", "storage/heap_file.py", 1),
    ("REP008", "storage/heap_file.py", 10),
    ("REP008", "storage/heap_file.py", 14),
    ("REP009", "resilience/rep009_violation.py", 9),
    ("REP009", "resilience/rep009_violation.py", 17),
    ("REP010", "obs/graft.py", 8),
    ("REP010", "obs/graft.py", 15),
    ("REP010", "obs/rep010_violation.py", 6),
    ("REP010", "obs/rep010_violation.py", 12),
}

#: Fixture files that must produce no findings at all.
CLEAN_FIXTURES = [
    "model/interval.py",
    "model/rep003_scope.py",
    "streams/rep001_clean.py",
    "storage/rep002_clean.py",
    "parallel/rep003_clean.py",
    "governance/rep003_clean.py",
    "streams/rep004_clean.py",
    "obs/rep005_clean.py",
    "streams/rep006_clean.py",
    "parallel/rep007_clean.py",
    "streams/rep008_clean.py",
    "resilience/rep009_clean.py",
    "obs/rep010_clean.py",
]


@pytest.fixture(scope="module")
def corpus_report():
    return analyze_paths([FIXTURES], root=FIXTURES)


def test_corpus_produces_exactly_the_expected_findings(corpus_report):
    got = {(f.rule, f.path, f.line) for f in corpus_report.findings}
    # The two REP003 findings on line 16 collapse in a set; compare
    # multiset cardinality separately.
    assert got == EXPECTED
    assert len(corpus_report.findings) == 36
    assert not corpus_report.parse_errors


def test_every_rule_fires_somewhere(corpus_report):
    fired = {f.rule for f in corpus_report.findings}
    assert fired == {r.id for r in all_rules()}


def test_suppressions_are_counted(corpus_report):
    # rep_suppressed.py: REP006 silenced by code, REP001 by blanket.
    assert corpus_report.suppressed == 2


def test_mismatched_noqa_code_does_not_suppress(corpus_report):
    # noqa(REP002) on a REP001 violation leaves the finding live.
    assert ("REP001", "streams/rep_suppressed.py", 14) in {
        (f.rule, f.path, f.line) for f in corpus_report.findings
    }


def test_mismatched_noqa_is_reported_unused(corpus_report):
    # ...and the same stale noqa(REP002) is surfaced as unused, so
    # --strict-noqa keeps the exemption list honest.
    assert [
        (u.path, u.line, u.codes)
        for u in corpus_report.unused_suppressions
    ] == [("streams/rep_suppressed.py", 14, ("REP002",))]


@pytest.mark.parametrize("relative", CLEAN_FIXTURES)
def test_clean_fixtures_stay_silent(relative):
    report = analyze_paths([FIXTURES / relative], root=FIXTURES)
    assert report.clean, [f.render() for f in report.findings]


def test_single_rule_selection_restricts_findings():
    report = analyze_paths(
        [FIXTURES], rules=select_rules(["REP006"]), root=FIXTURES
    )
    assert {f.rule for f in report.findings} == {"REP006"}
    assert len(report.findings) == 1


def test_real_tree_is_clean():
    """The acceptance criterion: the linter exits 0 on src/repro."""
    report = analyze_paths([REPO_SRC], root=REPO_SRC.parent.parent)
    assert report.clean, "\n" + "\n".join(
        f.render() for f in report.findings
    )
    assert report.files_scanned > 100


def test_shm_noqa_suppressions_are_load_bearing(tmp_path):
    """Stripping the justified REP007 noqas from the real shm.py must
    re-fire the rule — the exemptions are suppressing live findings,
    not decorating dead lines."""
    text = (REPO_SRC / "parallel" / "shm.py").read_text(encoding="utf-8")
    assert text.count("# repro: noqa(REP007)") == 3
    target_dir = tmp_path / "parallel"
    target_dir.mkdir()
    doctored = target_dir / "shm.py"
    doctored.write_text(
        text.replace("  # repro: noqa(REP007)", ""), encoding="utf-8"
    )
    report = analyze_paths([doctored], root=tmp_path)
    assert report.findings and {f.rule for f in report.findings} == {
        "REP007"
    }
    assert len(report.findings) == 3


def test_chained_comparison_yields_one_finding(corpus_report):
    # a.valid_from <= point < a.valid_to is one hazard, not two.
    chain_findings = [
        f
        for f in corpus_report.findings
        if f.path == "streams/rep001_violation.py" and f.line == 17
    ]
    assert len(chain_findings) == 1
