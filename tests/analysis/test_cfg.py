"""The CFG engine behind REP007-REP010: shapes and reachability.

Each test builds a tiny function, asks ``must_reach``/``may_reach``
the same questions the flow rules ask, and pins the documented
semantics: header-only match targets, opt-in exception edges,
``finally`` triplication, and greatest-fixpoint treatment of loops.
"""

from __future__ import annotations

import ast
import textwrap

from repro.analysis.cfg import (
    EXIT,
    RAISE,
    build_cfg,
    functions,
    may_reach,
    must_reach,
)


def _cfg_of(source: str, exception_edges: bool = True):
    tree = ast.parse(textwrap.dedent(source))
    func = next(functions(tree))
    return func, build_cfg(func, exception_edges=exception_edges)


def _calls(name: str):
    def predicate(node):
        return any(
            isinstance(sub, ast.Call)
            and (
                (isinstance(sub.func, ast.Attribute) and sub.func.attr == name)
                or (isinstance(sub.func, ast.Name) and sub.func.id == name)
            )
            for sub in ast.walk(node)
        )

    return predicate


_is_close = _calls("close")


def test_linear_close_is_must_reached():
    _, cfg = _cfg_of(
        """
        def f():
            seg = make()
            seg.close()
        """,
        exception_edges=False,
    )
    assert must_reach(cfg, [cfg.entry], _is_close)


def test_branch_skipping_close_breaks_must_reach():
    _, cfg = _cfg_of(
        """
        def f(flag):
            seg = make()
            if flag:
                seg.close()
        """,
        exception_edges=False,
    )
    assert not must_reach(cfg, [cfg.entry], _is_close)
    assert may_reach(cfg, [cfg.entry], _is_close)


def test_if_header_matches_only_its_test():
    # The If node must not let predicates "see through" to its body:
    # the body close() is a separate node, or branch misses would be
    # invisible to must_reach.
    func, cfg = _cfg_of(
        """
        def f(flag):
            seg = make()
            if flag:
                seg.close()
        """,
        exception_edges=False,
    )
    if_stmt = func.body[1]
    assert isinstance(if_stmt, ast.If)
    nid = cfg.id_of(if_stmt)
    assert cfg.match_targets[nid] == [if_stmt.test]


def test_exception_edge_escapes_past_late_close():
    source = """
        def f():
            seg = make()
            seg.work()
            seg.close()
        """
    _, with_exc = _cfg_of(source, exception_edges=True)
    starts = with_exc.normal[with_exc.entry]
    # work() may raise straight past the close() on the implicit edge.
    assert not must_reach(with_exc, starts, _is_close)

    _, without = _cfg_of(source, exception_edges=False)
    assert without.raising == {}
    starts = without.normal[without.entry]
    assert must_reach(without, starts, _is_close)


def test_finally_covers_normal_exception_and_return_paths():
    _, cfg = _cfg_of(
        """
        def f():
            seg = make()
            try:
                if use(seg):
                    return seg.stats()
                seg.work()
            finally:
                seg.close()
        """,
        exception_edges=True,
    )
    starts = cfg.normal[cfg.entry]
    assert must_reach(cfg, starts, _is_close)


def test_unmatched_exception_bypasses_handler():
    # A handler is conservatively assumed able to miss, so close()
    # placed after the try is not must-reached under exception edges.
    _, cfg = _cfg_of(
        """
        def f():
            seg = make()
            try:
                seg.work()
            except ValueError:
                log()
            seg.close()
        """,
        exception_edges=True,
    )
    starts = cfg.normal[cfg.entry]
    assert not must_reach(cfg, starts, _is_close)
    assert may_reach(cfg, starts, _calls("log"))


def test_explicit_raise_transfers_in_normal_mode():
    _, cfg = _cfg_of(
        """
        def f(flag):
            seg = make()
            if flag:
                raise ValueError("no")
            seg.close()
        """,
        exception_edges=False,
    )
    assert cfg.raising == {}
    assert not must_reach(cfg, [cfg.entry], _is_close)


def test_while_true_exits_only_through_break():
    _, cfg = _cfg_of(
        """
        def f(q):
            while True:
                task = q.get()
                if task is None:
                    break
                handle(task)
            finish()
        """,
        exception_edges=False,
    )
    assert must_reach(cfg, [cfg.entry], _calls("finish"))


def test_nonterminating_loop_is_vacuously_fine():
    # Greatest fixpoint: a path that never reaches an exit imposes no
    # obligation (the worker loop idiom).
    _, cfg = _cfg_of(
        """
        def f():
            while True:
                spin()
        """,
        exception_edges=False,
    )
    assert must_reach(cfg, [cfg.entry], _calls("never_called"))


def test_synthetic_exits_are_not_nodes():
    func, cfg = _cfg_of(
        """
        def f():
            seg = make()
            seg.close()
        """,
        exception_edges=True,
    )
    assert EXIT not in cfg.nodes and RAISE not in cfg.nodes
    last = func.body[-1]
    assert cfg.normal[cfg.id_of(last)] == {EXIT}
    assert cfg.raising[cfg.id_of(last)] == {RAISE}
    assert {nid for nid, _ in cfg.statements()} == set(cfg.nodes)
