"""The mypy strict-baseline ratchet (no mypy required to test it)."""

from __future__ import annotations

import io
import json

import pytest

from repro.analysis import mypy_gate


@pytest.fixture
def baseline(tmp_path):
    path = tmp_path / "mypy_baseline.json"
    path.write_text(
        json.dumps({"max_errors": 3, "bootstrap": False}),
        encoding="utf-8",
    )
    return path


def _gate(monkeypatch, output, baseline_path, **kwargs):
    monkeypatch.setattr(mypy_gate, "run_mypy", lambda cwd=None: output)
    out = io.StringIO()
    code = mypy_gate.gate(baseline_path=baseline_path, out=out, **kwargs)
    return code, out.getvalue()


def test_count_errors_ignores_notes_and_summaries():
    output = (
        "src/a.py:1: error: Incompatible return value\n"
        "src/a.py:2: note: See docs\n"
        "Found 1 error in 1 file (checked 2 source files)\n"
    )
    assert mypy_gate.count_errors(output) == 1


def test_missing_mypy_skips_by_default(monkeypatch, baseline):
    code, output = _gate(monkeypatch, None, baseline)
    assert code == 0 and "SKIPPED" in output


def test_missing_mypy_fails_when_required(monkeypatch, baseline):
    code, output = _gate(monkeypatch, None, baseline, require=True)
    assert code == 1 and "FAIL" in output


def test_count_at_baseline_passes(monkeypatch, baseline):
    errors = "a.py:1: error: x\n" * 3
    code, output = _gate(monkeypatch, errors, baseline)
    assert code == 0 and "OK" in output


def test_count_above_baseline_fails(monkeypatch, baseline):
    errors = "a.py:1: error: x\n" * 4
    code, output = _gate(monkeypatch, errors, baseline)
    assert code == 1 and "4 errors > baseline 3" in output


def test_count_below_baseline_suggests_repin(monkeypatch, baseline):
    errors = "a.py:1: error: x\n"
    code, output = _gate(monkeypatch, errors, baseline)
    assert code == 0 and "re-pinning" in output


def test_bootstrap_baseline_reports_and_passes(monkeypatch, tmp_path):
    path = tmp_path / "mypy_baseline.json"
    path.write_text(
        json.dumps({"max_errors": None, "bootstrap": True}),
        encoding="utf-8",
    )
    code, output = _gate(monkeypatch, "a.py:1: error: x\n", path)
    assert code == 0 and "BOOTSTRAP" in output


def test_update_baseline_pins_current_count(monkeypatch, baseline):
    errors = "a.py:1: error: x\n" * 5
    code, _ = _gate(monkeypatch, errors, baseline, update_baseline=True)
    assert code == 0
    pinned = json.loads(baseline.read_text(encoding="utf-8"))
    assert pinned["max_errors"] == 5 and pinned["bootstrap"] is False


def test_shipped_baseline_is_bootstrap():
    """The checked-in baseline must stay un-pinned until an environment
    with mypy pins it — otherwise the gate would fail vacuously."""
    shipped = mypy_gate.load_baseline()
    assert shipped["bootstrap"] is True and shipped["max_errors"] is None
