"""Corrupted protocol twin: the worker acks *after* running the shard.

Everything else — synchronous channels, the collector's staleness and
duplicate guards, attempt-gated redispatch — is faithful to
``parallel/pool.py``; exactly one transition is out of order.  The
protocol checker must catch this by name (``ack-precedes-run`` plus a
``no-unattributed-execution`` witness from the death-point
simulation).  Never imported at runtime; parsed only.
"""

import os

_MAX_SHARD_RETRIES = 2


def segment_name(tag):
    return f"repro-{os.getpid()}-{tag}"


def run_task(task):
    return {"job": task["job"], "index": task["index"]}


def _worker_main(tasks, results, acks):
    while True:
        task = tasks.get()
        if task is None:
            break
        summary = run_task(task)
        acks.put(
            {
                "job": task.get("job"),
                "index": task.get("index"),
                "attempt": task.get("attempt", 0),
                "pid": os.getpid(),
                "anchor_ns": 0,
            }
        )
        results.put(summary)


class WorkerPool:
    def __init__(self, context):
        self._context = context
        self._tasks = self._context.Queue()
        self._results = self._context.SimpleQueue()
        self._acks = self._context.SimpleQueue()

    def _drain_acks(self, job, states, acked_pids):
        while not self._acks.empty():
            ack = self._acks.get()
            if ack.get("job") != job:
                continue
            acked_pids.add(ack.get("pid"))
            state = states.get(ack.get("index"))
            if state is not None and ack.get("attempt") == state.attempt:
                state.pid = ack.get("pid")

    def _collect(self, job, states, summaries, errors):
        while states:
            result = self._results.get()
            if result.get("job") != job:
                continue
            index = result.get("index")
            if index in summaries or index in errors:
                continue
            if "error" in result:
                errors[index] = result
            else:
                summaries[index] = result

    def _redispatch(self, index, state, segment_names):
        if state.retries >= _MAX_SHARD_RETRIES:
            raise RuntimeError("shard kept dying")
        state.retries += 1
        state.attempt += 1
        fresh = segment_name(f"res{index}r{state.attempt}")
        segment_names.append(fresh)
        self._tasks.put(state.task)
