"""REP003 clean twin: governance clocks are monotonic only."""

import time


def deadline_from_monotonic(seconds):
    return time.monotonic() + seconds
