"""REP003 violating twin: wall-clock time in governance paths."""

import time


def deadline_from_wall_clock(seconds):
    return time.time() + seconds
