"""REP007 violating twin: one segment-lifecycle break per function."""

from multiprocessing import shared_memory


def leak_on_exception(size, fill):
    segment = shared_memory.SharedMemory(name="seg", create=True, size=size)
    fill(segment.buf)
    segment.close()
    segment.unlink()


def never_unlinked(size, fill):
    segment = shared_memory.SharedMemory(name="seg", create=True, size=size)
    try:
        fill(segment.buf)
    finally:
        segment.close()


def attach_side_unlink(name):
    segment = shared_memory.SharedMemory(name=name)
    try:
        return bytes(segment.buf)
    finally:
        segment.close()
        segment.unlink()


def dropped_segment(size):
    shared_memory.SharedMemory(name="seg", create=True, size=size)


class LeakyOwner:
    def __init__(self, size):
        self.segment = shared_memory.SharedMemory(
            name="seg", create=True, size=size
        )

    def release(self):
        self.segment.close()
