"""REP003 clean fixture: seeded generators and monotonic clocks."""

import random
import time
from random import Random


def make_rng(seed):
    return random.Random(seed)


def make_rng_direct(seed):
    return Random(seed)


def duration(start):
    return time.perf_counter() - start


def draw(rng):
    return rng.random()
