"""REP003 fixture: ambient nondeterminism in a worker path."""

import os
import random
import time
import uuid
from random import random as rand_func
from time import time_ns


def stamp():
    return time.time()


def entropy():
    return os.urandom(8) + uuid.uuid4().bytes


def draw():
    return random.random() + rand_func()
