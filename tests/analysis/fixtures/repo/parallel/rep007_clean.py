"""REP007 clean twin: the canonical create/attach lifecycles."""

from multiprocessing import shared_memory


def create_fill_release(size, fill):
    segment = shared_memory.SharedMemory(name="seg", create=True, size=size)
    try:
        fill(segment.buf)
    finally:
        segment.close()
    segment.unlink()


def create_and_hand_over(size):
    segment = shared_memory.SharedMemory(name="seg", create=True, size=size)
    return segment


def attach_read_close(name):
    segment = shared_memory.SharedMemory(name=name)
    try:
        return bytes(segment.buf)
    finally:
        segment.close()


class OwnedSegment:
    def __init__(self, size):
        self.segment = shared_memory.SharedMemory(
            name="seg", create=True, size=size
        )

    def close(self):
        self.segment.close()
        self.segment.unlink()
