"""REP002 scope fixture: inside ``storage/`` the same constructs are
the implementation itself and must not be flagged."""


def implementation_read(heap, page_number):
    return heap.page(page_number)


def implementation_alloc(capacity):
    return Page(capacity)
