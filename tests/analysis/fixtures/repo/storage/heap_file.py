"""REP008 violating twin of ``storage/heap_file.py``: the governed
function ``page()`` lost its checkpoint, ``scan()`` was deleted, and a
raw ``_pages`` loop bypasses the charging primitives."""


class HeapFile:
    def __init__(self, pages):
        self._pages = pages

    def page(self, index):
        return self._pages[index]

    def drain_all(self, out):
        for raw in self._pages:
            out.extend(raw.records)
