"""REP009 clean twin: the three sanctioned broad-except shapes."""


class GovernanceError(Exception):
    pass


def filtered_ladder(op):
    try:
        return op()
    except GovernanceError:
        raise
    except Exception:
        return None


def reraising_ladder(op, log):
    try:
        return op()
    except Exception:
        log()
        raise


def shutdown(pool):
    try:
        pool.stop()
    except Exception:
        pass
