"""REP009 violating twin: broad excepts that can swallow governance
errors in retry/ladder paths."""


def retry_ladder(op):
    for _ in range(3):
        try:
            return op()
        except Exception:
            continue
    return None


def convert_and_swallow(op):
    try:
        return op()
    except Exception as exc:
        return {"error": repr(exc)}
