"""REP006 clean fixture: typed exception instead of assert."""


def checked(value):
    if value is None:
        raise ValueError("value is required")
    return value
