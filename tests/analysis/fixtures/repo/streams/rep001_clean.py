"""REP001 clean fixture: sanctioned comparator and key usage only."""


def compare(a, b):
    return starts_no_later(a, b)


def equality(a, b):
    return a.valid_from == b.valid_from


def weak_single_side(x, limit):
    return x.start < limit


def unrelated_attrs(job, task):
    return job.priority < task.priority


def sort(items):
    return sorted(items, key=lifespan_key)
