"""REP006 fixture: a bare assert, stripped under ``python -O``."""


def checked(value):
    assert value is not None
    return value
