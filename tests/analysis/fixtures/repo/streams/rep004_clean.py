"""REP004 clean fixture: the meter is threaded either way."""


def keyword_meter(name, meter):
    return Workspace(name, meter=meter)


def positional_meter(name, meter):
    return Workspace(name, meter)
