"""REP004 fixture: workspace constructed without a meter."""


def build_state(name):
    return Workspace(name)
