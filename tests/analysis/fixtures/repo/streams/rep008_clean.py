"""REP008 clean twin: raw-internals loops carry a checkpoint, and
loops built on charging primitives need none."""


def governed_sweep(heap, token):
    total = 0
    for raw in heap._pages:
        token.charge_pages(1)
        total += len(raw)
    return total


def primitive_loop(stream):
    while stream.advance():
        pass
