"""Suppression fixture: noqa comments silence rules per line."""


def tolerated(value):
    assert value is not None  # repro: noqa(REP006)
    return value


def blanket(a, b):
    return a.valid_from < b.valid_from  # repro: noqa


def wrong_code(a, b):
    return a.valid_to < b.valid_to  # repro: noqa(REP002)


def in_string():
    return "# repro: noqa"
