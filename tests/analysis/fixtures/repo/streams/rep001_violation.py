"""REP001 fixture: raw ordered endpoint comparisons and sort keys."""


def strong_compare(a, b):
    return a.valid_from < b.valid_from


def strong_one_side(a, point):
    return point >= a.valid_to


def weak_pair(x, y):
    return x.start <= y.end


def chained(a, point):
    return a.valid_from <= point < a.valid_to


def sort_in_place(items):
    items.sort(key=lambda t: t.valid_from)


def sort_copy(items):
    return sorted(items, key=lambda t: (t.valid_from, t.valid_to))


def pick_latest(items):
    return max(items, key=lambda t: t.valid_to)
