"""REP004 kernel fixture: public kernels must thread SweepStats."""


def rogue_kernel(xs, ys):
    return [(x, y) for x in xs for y in ys]


def good_kernel(xs):
    stats = SweepStats()
    return xs, stats


def _private_helper(xs):
    return xs
