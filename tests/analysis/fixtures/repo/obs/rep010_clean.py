"""REP010 clean twin: with-scoped spans, labelled merges."""


def traced_merge(tracer, registry, snapshot):
    with tracer.span("merge-worker"):
        registry.merge(snapshot, labels={"worker": "w1"})
