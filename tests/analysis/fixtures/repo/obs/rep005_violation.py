"""REP005 fixture: spans opened imperatively leak on exceptions."""


def leaky(tracer):
    span = tracer.span("probe")
    span.finish()
    return span


def leaky_method(self):
    return self._tracer.span("scan")
