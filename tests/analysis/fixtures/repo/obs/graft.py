"""REP010 violating twin of ``obs/graft.py``: half-built spans."""

from .trace import Span


def graft_without_end(tracer, records):
    for record in records:
        span = Span(tracer, record["name"], 1, None, 0, {})
        if record.get("end") is not None:
            span.end_ns = record["end"]
        tracer.spans.append(span)


def graft_without_register(tracer, record):
    span = Span(tracer, record["name"], 1, None, 0, {})
    span.end_ns = record["end"]
