"""REP010 violating twin: Span construction outside the sanctioned
modules, and a metric merge with no provenance labels."""


def ad_hoc_span(tracer, Span):
    span = Span(tracer, "adhoc", 1, None, 0, {})
    span.end_ns = 1
    return span


def merge_without_labels(registry, snapshot):
    registry.merge(snapshot)
