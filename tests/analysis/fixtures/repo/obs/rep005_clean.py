"""REP005 clean fixture: context-managed spans, and ``.span`` on
receivers that are not tracers."""


def balanced(tracer):
    with tracer.span("probe"):
        return True


def nested(tracer, name):
    with tracer.span(name) as span:
        span.note("ok")
        return span


def geometry(box):
    return box.span(3)
