"""REP002 fixture: page access bypassing the BufferPool."""


def sneaky_read(heap, page_number):
    return heap.page(page_number)


def forge(capacity):
    return Page(capacity)
