"""REP001 exemption fixture: raw endpoint comparisons ARE the
comparator vocabulary's implementation, sanctioned only in a file
ending with ``model/interval.py``."""


def starts_no_later(a, b):
    return a.valid_from <= b.valid_from


def ends_by_start(a, b):
    return a.valid_to <= b.valid_from


def lifespan_key(t):
    return (t.valid_from, t.valid_to)
