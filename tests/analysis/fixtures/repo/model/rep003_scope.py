"""REP003 scope fixture: ambient state outside ``parallel/`` and
``resilience/`` is not this rule's concern."""

import time


def stamp():
    return time.time()
