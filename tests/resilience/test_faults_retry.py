"""Unit tests for the fault-injection harness and the retry loop."""

import pytest

from repro.errors import (
    PageCorruptionError,
    StorageFaultError,
    TransientIOError,
)
from repro.model import TemporalTuple
from repro.resilience import (
    ExecutionReport,
    FaultKind,
    FaultPlan,
    ResilientHeapFile,
    RetryPolicy,
    retry_call,
)
from repro.storage import HeapFile


def make_file(name="data", n=24, page_capacity=4):
    f = HeapFile(name, page_capacity=page_capacity)
    f.extend(TemporalTuple(f"s{i}", i, i, i + 3) for i in range(n))
    f.stats.reset()
    return f


class TestRetryPolicy:
    def test_delays_are_deterministic(self):
        policy = RetryPolicy(seed=42)
        a = [policy.delay_for(i, key=("f", 0)) for i in range(4)]
        b = [policy.delay_for(i, key=("f", 0)) for i in range(4)]
        assert a == b

    def test_delays_grow_and_stay_bounded(self):
        policy = RetryPolicy(
            base_delay=1.0, multiplier=2.0, max_delay=8.0, jitter=0.0
        )
        delays = [policy.delay_for(i) for i in range(6)]
        assert delays == [1.0, 2.0, 4.0, 8.0, 8.0, 8.0]

    def test_jitter_stays_within_amplitude(self):
        policy = RetryPolicy(jitter=0.25, seed=7)
        for attempt in range(5):
            delay = policy.delay_for(attempt, key=("k",))
            raw = min(2.0**attempt, policy.max_delay)
            assert raw * 0.75 <= delay <= raw * 1.25

    def test_rejects_empty_budget(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)


class TestRetryCall:
    def test_heals_within_budget(self):
        calls = []

        def operation(attempt):
            calls.append(attempt)
            if attempt < 2:
                raise TransientIOError("flaky")
            return "ok"

        healed = []
        assert (
            retry_call(
                operation,
                RetryPolicy(max_attempts=5),
                on_retry=lambda err, delay: healed.append(delay),
            )
            == "ok"
        )
        assert calls == [0, 1, 2]
        assert len(healed) == 2

    def test_exhaustion_wraps_with_history(self):
        def operation(attempt):
            raise PageCorruptionError(f"bad page (attempt {attempt})")

        with pytest.raises(StorageFaultError) as err:
            retry_call(operation, RetryPolicy(max_attempts=3))
        assert len(err.value.history) == 3
        assert all(
            isinstance(e, PageCorruptionError) for e in err.value.history
        )

    def test_non_retryable_propagates_unwrapped(self):
        def operation(attempt):
            raise ValueError("not an I/O problem")

        with pytest.raises(ValueError):
            retry_call(operation, RetryPolicy())


class TestFaultPlan:
    def test_draw_is_deterministic(self):
        plan = FaultPlan(seed=5, rate=0.5)
        draws = [plan.draw("f", 0, s, 0) for s in range(50)]
        assert draws == [plan.draw("f", 0, s, 0) for s in range(50)]
        assert any(d is not None for d in draws)
        assert any(d is None for d in draws)

    def test_faults_heal_after_duration(self):
        plan = FaultPlan(seed=5, rate=1.0, duration=2)
        assert plan.draw("f", 0, 0, 0) is not None
        assert plan.draw("f", 0, 0, 1) is not None
        assert plan.draw("f", 0, 0, 2) is None

    def test_persistent_never_heals(self):
        plan = FaultPlan(seed=5, rate=0.0, persistent=frozenset({("f", 1)}))
        for attempt in range(10):
            assert plan.draw("f", 1, 0, attempt) is FaultKind.TRANSIENT
        assert plan.draw("f", 0, 0, 0) is None

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            FaultPlan(seed=0, rate=1.5)
        with pytest.raises(ValueError):
            FaultPlan(seed=0, duration=0)
        with pytest.raises(ValueError):
            FaultPlan(seed=0, kinds=())


class TestResilientHeapFile:
    def test_transient_faults_are_invisible(self):
        """A faulty scan delivers exactly the fault-free records."""
        f = make_file()
        plan = FaultPlan(seed=3, rate=0.4)
        resilient = ResilientHeapFile(f, plan)
        assert list(resilient.scan()) == f.records()
        assert resilient.fault_stats.injected > 0
        assert resilient.fault_stats.healed == resilient.fault_stats.injected
        assert resilient.fault_stats.surfaced == 0

    def test_iostats_account_faults_and_retries(self):
        f = make_file()
        plan = FaultPlan(seed=3, rate=0.4)
        resilient = ResilientHeapFile(f, plan)
        list(resilient.scan())
        assert f.stats.faults_seen == resilient.fault_stats.injected
        assert f.stats.retries == resilient.fault_stats.injected
        assert f.stats.simulated_delay > 0

    def test_corrupt_reads_detected_and_healed(self):
        f = make_file()
        plan = FaultPlan(seed=9, rate=0.5, kinds=(FaultKind.CORRUPT,))
        report = ExecutionReport()
        resilient = ResilientHeapFile(f, plan, report=report)
        assert list(resilient.scan()) == f.records()
        assert report.fault_counts().get("corrupt", 0) > 0
        assert report.fully_accounted
        # The underlying pages stay pristine: a direct scan verifies.
        assert f.records() == list(f.scan())

    def test_slow_reads_charge_latency_only(self):
        f = make_file()
        plan = FaultPlan(
            seed=2, rate=0.5, kinds=(FaultKind.SLOW,), slow_penalty=7.0
        )
        resilient = ResilientHeapFile(f, plan)
        assert list(resilient.scan()) == f.records()
        assert resilient.fault_stats.slow > 0
        assert resilient.fault_stats.surfaced == 0
        assert f.stats.slow_reads == resilient.fault_stats.slow
        assert f.stats.simulated_delay == pytest.approx(
            7.0 * resilient.fault_stats.slow
        )

    def test_persistent_fault_surfaces_with_history(self):
        f = make_file()
        plan = FaultPlan(
            seed=1, rate=0.0, persistent=frozenset({(f.name, 1)})
        )
        report = ExecutionReport()
        resilient = ResilientHeapFile(
            f, plan, retry=RetryPolicy(max_attempts=3), report=report
        )
        with pytest.raises(StorageFaultError) as err:
            list(resilient.scan())
        assert len(err.value.history) == 3
        assert report.storage_errors == 1
        assert report.fully_accounted  # every event resolved: surfaced
        assert all(e.resolution == "surfaced" for e in report.faults)

    def test_fault_schedule_is_reproducible(self):
        plan = FaultPlan(seed=17, rate=0.3)
        runs = []
        for _ in range(2):
            f = make_file()
            resilient = ResilientHeapFile(f, plan)
            list(resilient.scan())
            runs.append(
                (
                    resilient.fault_stats.injected,
                    f.stats.retries,
                    f.stats.simulated_delay,
                )
            )
        assert runs[0] == runs[1]
