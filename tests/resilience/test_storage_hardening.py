"""Storage-layer hardening: page checksums, buffer-pool invalidation
by file identity, and stream restart semantics."""

import pytest

from repro.errors import PageCorruptionError, StreamOrderError
from repro.model import TemporalTuple
from repro.model.sortorder import TS_ASC
from repro.storage import BufferPool, HeapFile
from repro.storage.page import Page
from repro.streams import TupleStream


def tuples(n, start=0):
    return [TemporalTuple(f"s{i}", i, i, i + 2) for i in range(start, start + n)]


class TestPageChecksums:
    def test_append_maintains_checksum_incrementally(self):
        page = Page(0, capacity=8)
        for tup in tuples(5):
            page.append(tup)
            assert page.checksum == page.compute_checksum()
        page.verify()  # clean page verifies silently

    def test_tampering_detected_on_scan(self):
        f = HeapFile.from_records("victim", tuples(10), page_capacity=4)
        f._pages[1]._records[0] = TemporalTuple("evil", 99, 0, 1)
        with pytest.raises(PageCorruptionError):
            list(f.scan())

    def test_tampering_detected_on_page_fetch(self):
        f = HeapFile.from_records("victim", tuples(10), page_capacity=4)
        f._pages[2]._records.pop()
        f.page(0)  # untouched pages still verify
        with pytest.raises(PageCorruptionError):
            f.page(2)

    def test_verification_can_be_disabled(self):
        f = HeapFile("lenient", page_capacity=4, verify_checksums=False)
        f.extend(tuples(8))
        f._pages[0]._records[0] = TemporalTuple("evil", 99, 0, 1)
        assert len(list(f.scan())) == 8


class TestBufferPoolInvalidation:
    def test_invalidate_drops_only_that_file(self):
        pool = BufferPool(capacity_pages=16)
        a = HeapFile.from_records("a", tuples(8), page_capacity=4)
        b = HeapFile.from_records("b", tuples(8), page_capacity=4)
        list(pool.scan(a))
        list(pool.scan(b))
        assert len(pool) == 4
        pool.invalidate(a)
        assert len(pool) == 2
        hits_before = pool.hits
        list(pool.scan(b))
        assert pool.hits == hits_before + 2  # b's frames survived

    def test_recreated_file_with_same_name_never_sees_stale_frames(self):
        pool = BufferPool(capacity_pages=16)
        old = HeapFile.from_records("runs", tuples(8), page_capacity=4)
        list(pool.scan(old))
        # Same name, new identity, different contents — the seed's
        # name-keyed cache would happily serve old's pages here.
        new = HeapFile.from_records(
            "runs", tuples(8, start=100), page_capacity=4
        )
        assert list(pool.scan(new)) == new.records()
        # And invalidating the new file leaves the old file's frames.
        pool.invalidate(new)
        assert (old.file_id, 0) in pool._frames

    def test_eviction_keeps_secondary_index_consistent(self):
        pool = BufferPool(capacity_pages=2)
        f = HeapFile.from_records("big", tuples(16), page_capacity=4)
        list(pool.scan(f))
        assert len(pool) == 2
        pool.invalidate(f)  # must not KeyError on evicted frames
        assert len(pool) == 0


class TestStreamRestart:
    def test_restart_resets_order_verification(self):
        """A fresh pass re-checks ordering from its own first tuple;
        the last tuple of pass N must not be compared against the
        first tuple of pass N+1."""
        data = tuples(5)  # ascending: any rewind jumps backwards
        stream = TupleStream.from_tuples(data, order=TS_ASC)
        assert list(stream.drain()) == data
        stream.restart()
        assert list(stream.drain()) == data  # no StreamOrderError
        assert stream.passes == 2

    def test_mid_pass_restart_also_resets(self):
        data = tuples(5)
        stream = TupleStream.from_tuples(data, order=TS_ASC)
        stream.advance()
        stream.advance()
        stream.restart()
        assert list(stream.drain()) == data
        assert stream.tuples_read == 2 + len(data)

    def test_violations_within_a_pass_still_raise(self):
        data = [tuples(1)[0], TemporalTuple("late", 9, 9, 11), tuples(1)[0]]
        stream = TupleStream.from_tuples(data, order=TS_ASC)
        with pytest.raises(StreamOrderError):
            list(stream.drain())
