"""The recovery ladder: STRICT fail-fast, QUARANTINE side-channel, and
DEGRADE's re-sort / spill fallbacks checked against nested-loop oracles
on tie-heavy workloads."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import StreamOrderError, WorkspaceOverflowError
from repro.model import TemporalTuple, sort_tuples
from repro.model.sortorder import TS_ASC
from repro.resilience import ExecutionReport, RecoveryPolicy
from repro.resilience.executor import execute_entry
from repro.streams import TupleStream
from repro.streams.processors.baseline import (
    contain_predicate,
    overlap_predicate,
)
from repro.streams.registry import TemporalOperator, lookup

#: Tie-heavy lifespans: a tiny endpoint domain with few durations, so
#: equal TS/TE values dominate.
tie_heavy = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=15),
        st.integers(min_value=1, max_value=6),
    ),
    max_size=40,
).map(
    lambda spans: [
        TemporalTuple(f"s{i}", i, a, a + d) for i, (a, d) in enumerate(spans)
    ]
)


def _key(tup):
    return (tup.valid_from, tup.valid_to, str(tup.surrogate), tup.value)


def canon(items):
    """Order-insensitive canonical form of semijoin/join outputs."""
    return sorted(
        items,
        key=lambda item: (
            (_key(item[0]), _key(item[1]))
            if isinstance(item, tuple)
            else _key(item)
        ),
    )


def join_oracle(xs, ys, predicate):
    return [(x, y) for x in xs for y in ys if predicate(x, y)]


def semi_oracle(xs, ys, predicate):
    return [x for x in xs if any(predicate(x, y) for y in ys)]


def self_oracle(xs, predicate):
    return [
        x
        for i, x in enumerate(xs)
        if any(i != j and predicate(x, u) for j, u in enumerate(xs))
    ]


def greedy_clean(tuples, order):
    """What a quarantining cursor keeps: each tuple that does not
    violate the order against the previously *kept* tuple."""
    kept = []
    for tup in tuples:
        if not kept or order.check(kept[-1], tup):
            kept.append(tup)
    return kept


CONTAIN_TS_TS = lookup(
    TemporalOperator.CONTAIN_JOIN, TS_ASC, TS_ASC
)
OVERLAP_SEMI = lookup(
    TemporalOperator.OVERLAP_SEMIJOIN, TS_ASC, TS_ASC
)
SELF_CONTAIN = lookup(TemporalOperator.SELF_CONTAIN_SEMIJOIN, TS_ASC)

#: A fixed workload dense enough that a budget of 2 always overflows
#: the contain-join state and an unsorted stream always violates.
DENSE_X = [TemporalTuple(f"x{i}", i, 0, 20 - i) for i in range(8)]
DENSE_Y = [TemporalTuple(f"y{i}", i, 2 + i, 3 + i) for i in range(8)]
UNSORTED_X = [
    TemporalTuple("a", 0, 9, 12),
    TemporalTuple("b", 1, 3, 5),
    TemporalTuple("c", 2, 6, 7),
]


class TestStrict:
    def test_order_violation_raises_original_type(self):
        with pytest.raises(StreamOrderError) as err:
            execute_entry(
                CONTAIN_TS_TS, UNSORTED_X, sort_tuples(DENSE_Y, TS_ASC)
            )
        assert err.value.stream_name == "X"

    def test_overflow_raises_original_type(self):
        report = ExecutionReport()
        with pytest.raises(WorkspaceOverflowError):
            execute_entry(
                CONTAIN_TS_TS,
                sort_tuples(DENSE_X, TS_ASC),
                sort_tuples(DENSE_Y, TS_ASC),
                workspace_budget=2,
                report=report,
            )
        assert report.workspace_overflows == 1
        assert report.passes_added == 0  # STRICT never degrades


class TestQuarantine:
    def test_stream_skips_out_of_order_tuples(self):
        report = ExecutionReport()
        stream = TupleStream.from_tuples(
            UNSORTED_X,
            order=TS_ASC,
            recovery=RecoveryPolicy.QUARANTINE,
            report=report,
        )
        kept = list(stream.drain())
        assert kept == greedy_clean(UNSORTED_X, TS_ASC)
        assert stream.quarantined == 2
        assert [e.reason for e in report.quarantined] == ["order", "order"]

    def test_stream_skips_invalid_tuples(self):
        class Broken:
            valid_from = 9
            valid_to = 3  # violates TS < TE

        report = ExecutionReport()
        stream = TupleStream.from_tuples(
            [TemporalTuple("a", 0, 1, 2), Broken(), TemporalTuple("b", 1, 3, 4)],
            order=TS_ASC,
            recovery=RecoveryPolicy.QUARANTINE,
            report=report,
        )
        kept = list(stream.drain())
        assert [t.surrogate for t in kept] == ["a", "b"]
        assert [e.reason for e in report.quarantined] == ["validity"]

    @pytest.mark.parametrize("backend", ["tuple", "columnar"])
    def test_executor_result_matches_oracle_on_kept_tuples(self, backend):
        ys = sort_tuples(DENSE_Y, TS_ASC)
        report = ExecutionReport()
        outcome = execute_entry(
            CONTAIN_TS_TS,
            UNSORTED_X,
            ys,
            backend=backend,
            policy=RecoveryPolicy.QUARANTINE,
            report=report,
        )
        kept = greedy_clean(UNSORTED_X, TS_ASC)
        assert canon(outcome.results) == canon(
            join_oracle(kept, ys, contain_predicate)
        )
        assert len(report.quarantined) == 2


class TestDegradeFixed:
    @pytest.mark.parametrize("backend", ["tuple", "columnar"])
    def test_resort_recovers_unsorted_input(self, backend):
        ys = sort_tuples(DENSE_Y, TS_ASC)
        report = ExecutionReport()
        outcome = execute_entry(
            CONTAIN_TS_TS,
            UNSORTED_X,
            ys,
            backend=backend,
            policy=RecoveryPolicy.DEGRADE,
            report=report,
        )
        assert canon(outcome.results) == canon(
            join_oracle(UNSORTED_X, ys, contain_predicate)
        )
        assert report.order_violations >= 1
        assert [e.kind for e in report.fallbacks] == ["re-sort"]
        assert report.passes_added > 0

    @pytest.mark.parametrize("backend", ["tuple", "columnar"])
    def test_spill_finishes_under_budget(self, backend):
        xs = sort_tuples(DENSE_X, TS_ASC)
        ys = sort_tuples(DENSE_Y, TS_ASC)
        report = ExecutionReport()
        outcome = execute_entry(
            CONTAIN_TS_TS,
            xs,
            ys,
            backend=backend,
            policy=RecoveryPolicy.DEGRADE,
            workspace_budget=2,
            report=report,
        )
        assert canon(outcome.results) == canon(
            join_oracle(xs, ys, contain_predicate)
        )
        assert report.workspace_overflows == 1
        assert [e.kind for e in report.fallbacks] == ["spill"]
        # 8 outer tuples in blocks of 2: one spill pass + 3 extra scans.
        assert report.passes_added == 4

    def test_resort_then_spill_compose(self):
        ys = sort_tuples(DENSE_Y, TS_ASC)
        # A late starter in front violates TS order; the re-sorted
        # input is then dense enough to overflow a budget of 2.
        xs = [TemporalTuple("z", 9, 10, 11)] + sort_tuples(DENSE_X, TS_ASC)
        report = ExecutionReport()
        outcome = execute_entry(
            CONTAIN_TS_TS,
            xs,
            ys,
            policy=RecoveryPolicy.DEGRADE,
            workspace_budget=2,
            report=report,
        )
        assert canon(outcome.results) == canon(
            join_oracle(xs, ys, contain_predicate)
        )
        assert [e.kind for e in report.fallbacks] == ["re-sort", "spill"]

    def test_metrics_carry_resilience_snapshot(self):
        report = ExecutionReport()
        outcome = execute_entry(
            CONTAIN_TS_TS,
            sort_tuples(DENSE_X, TS_ASC),
            sort_tuples(DENSE_Y, TS_ASC),
            policy=RecoveryPolicy.DEGRADE,
            workspace_budget=2,
            report=report,
        )
        assert outcome.metrics.resilience is not None
        assert outcome.metrics.resilience["passes_added"] > 0


class TestDegradeProperties:
    """DEGRADE is semantics-preserving, and ``passes_added`` is positive
    exactly when an assumption was actually violated."""

    @pytest.mark.parametrize("backend", ["tuple", "columnar"])
    @given(
        xs=tie_heavy,
        ys=tie_heavy,
        budget=st.one_of(st.none(), st.integers(min_value=1, max_value=3)),
        shuffle=st.booleans(),
    )
    @settings(max_examples=30, deadline=None)
    def test_contain_join_matches_oracle(self, backend, xs, ys, budget, shuffle):
        xs = sort_tuples(xs, CONTAIN_TS_TS.x_order)
        ys = sort_tuples(ys, CONTAIN_TS_TS.y_order)
        if shuffle:
            xs = list(xs)
            random.Random(0).shuffle(xs)
        report = ExecutionReport()
        outcome = execute_entry(
            CONTAIN_TS_TS,
            xs,
            ys,
            backend=backend,
            policy=RecoveryPolicy.DEGRADE,
            workspace_budget=budget,
            report=report,
        )
        assert canon(outcome.results) == canon(
            join_oracle(xs, ys, contain_predicate)
        )
        violated = (
            report.order_violations > 0 or report.workspace_overflows > 0
        )
        assert (report.passes_added > 0) == violated

    @pytest.mark.parametrize("backend", ["tuple", "columnar"])
    @given(
        xs=tie_heavy,
        ys=tie_heavy,
        budget=st.one_of(st.none(), st.integers(min_value=1, max_value=3)),
    )
    @settings(max_examples=30, deadline=None)
    def test_overlap_semijoin_matches_oracle(self, backend, xs, ys, budget):
        xs = sort_tuples(xs, OVERLAP_SEMI.x_order)
        ys = sort_tuples(ys, OVERLAP_SEMI.y_order)
        report = ExecutionReport()
        outcome = execute_entry(
            OVERLAP_SEMI,
            xs,
            ys,
            backend=backend,
            policy=RecoveryPolicy.DEGRADE,
            workspace_budget=budget,
            report=report,
        )
        assert canon(outcome.results) == canon(
            semi_oracle(xs, ys, overlap_predicate)
        )
        violated = (
            report.order_violations > 0 or report.workspace_overflows > 0
        )
        assert (report.passes_added > 0) == violated

    @pytest.mark.parametrize("backend", ["tuple", "columnar"])
    @given(
        xs=tie_heavy,
        budget=st.one_of(st.none(), st.integers(min_value=1, max_value=3)),
        shuffle=st.booleans(),
    )
    @settings(max_examples=30, deadline=None)
    def test_self_contain_semijoin_matches_oracle(
        self, backend, xs, budget, shuffle
    ):
        xs = sort_tuples(xs, SELF_CONTAIN.x_order)
        if shuffle:
            xs = list(xs)
            random.Random(1).shuffle(xs)
        report = ExecutionReport()
        outcome = execute_entry(
            SELF_CONTAIN,
            xs,
            backend=backend,
            policy=RecoveryPolicy.DEGRADE,
            workspace_budget=budget,
            report=report,
        )
        assert canon(outcome.results) == canon(
            self_oracle(xs, contain_predicate)
        )
        violated = (
            report.order_violations > 0 or report.workspace_overflows > 0
        )
        assert (report.passes_added > 0) == violated
