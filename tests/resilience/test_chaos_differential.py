"""Differential chaos suite: a seeded transient-fault plan, healed by
retries, must leave every registry cell byte-identical to its
fault-free run on both backends — and STRICT must fail fast with the
original error types when the plan cannot heal."""

import pytest

from repro.errors import StorageFaultError
from repro.model import sort_tuples
from repro.model.sortorder import TS_ASC
from repro.resilience import (
    ExecutionReport,
    FaultPlan,
    RetryPolicy,
)
from repro.resilience.executor import execute_entry
from repro.resilience.harness import chaos_sweep, generate_relation
from repro.streams.registry import TemporalOperator, lookup

pytestmark = pytest.mark.chaos


class TestChaosSweep:
    @pytest.mark.parametrize("seed", [3, 11])
    def test_every_cell_matches_its_fault_free_run(self, seed):
        result = chaos_sweep(seed=seed, rate=0.2, relation_size=32)
        assert result.cells, "sweep covered no registry cells"
        assert result.all_matched, result.summary()
        assert all(cell.results_match for cell in result.cells)
        assert all(cell.high_water_match for cell in result.cells)
        # The plan actually did something: faults were injected and
        # healed by retries, and every event is accounted for.
        assert result.report.faults_injected > 0
        assert result.report.retries > 0
        assert result.report.fully_accounted
        assert result.report.storage_errors == 0

    def test_sweep_is_deterministic(self):
        a = chaos_sweep(seed=7, rate=0.2, relation_size=24)
        b = chaos_sweep(seed=7, rate=0.2, relation_size=24)
        assert a.as_dict() == b.as_dict()
        assert [c.faults_injected for c in a.cells] == [
            c.faults_injected for c in b.cells
        ]

    def test_report_serialises(self):
        result = chaos_sweep(seed=3, rate=0.2, relation_size=16)
        payload = result.to_json()
        assert '"all_matched": true' in payload


class TestStrictFailsFast:
    def test_persistent_fault_surfaces_storage_error(self):
        """Retries exhaust against a page that never heals; STRICT
        surfaces the full history instead of degrading."""
        entry = lookup(TemporalOperator.CONTAIN_JOIN, TS_ASC, TS_ASC)
        xs = sort_tuples(generate_relation(0, "x", 32), TS_ASC)
        ys = sort_tuples(generate_relation(0, "y", 32), TS_ASC)
        # The executor stages operands under cell-qualified file names.
        plan = FaultPlan(
            seed=0,
            rate=0.0,
            persistent=frozenset({("contain-join[tuple].X", 1)}),
        )
        report = ExecutionReport()
        with pytest.raises(StorageFaultError) as err:
            execute_entry(
                entry,
                xs,
                ys,
                fault_plan=plan,
                retry_policy=RetryPolicy(seed=0, max_attempts=4),
                report=report,
                page_capacity=8,
            )
        assert len(err.value.history) == 4
        assert report.storage_errors == 1
        assert report.fully_accounted
