"""Legacy setup shim.

The execution environment has no network access and no ``wheel``
package, so PEP 517 editable installs (which build an editable wheel)
fail.  Keeping a classic ``setup.py`` lets ``pip install -e .`` fall
back to setuptools' develop mode, which works offline.  All project
metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
