#!/usr/bin/env python3
"""The paper's running example: the Superstar query, three ways.

"Who got promoted from assistant to full professor while at least one
other faculty remained at the associate rank?"

Strategy 1 (Section 3)  — conventional: Quel parsing, algebraic
rewrites, hash equi-join + nested-loop less-than join.
Strategy 2 (Section 4)  — stream Overlap-joins for the temporal
conditions.
Strategy 3 (Section 5)  — semantic optimization reduces the less-than
join to a Contained-semijoin(X, X): one scan, one state tuple.
"""

from repro.superstar import SUPERSTAR_QUEL, all_strategies
from repro.workload import FacultyWorkload


def main() -> None:
    print("Quel query:")
    print(SUPERSTAR_QUEL)

    faculty = FacultyWorkload(
        faculty_count=400,
        hire_window=4000,
        continuous=True,
        full_fraction=1.0,
    ).generate(seed=42)
    print(
        f"Faculty relation: {len(faculty)} tuples over "
        f"{len(faculty.surrogates())} faculty members\n"
    )

    results = all_strategies(faculty)
    stars = sorted(results[0].rows)[:5]
    print(f"{len(results[0].rows)} superstars; first few: {stars}\n")

    header = (
        f"{'strategy':26s} {'faculty scans':>13s} {'comparisons':>12s} "
        f"{'peak state':>10s}"
    )
    print(header)
    print("-" * len(header))
    for result in results:
        print(
            f"{result.strategy:26s} {result.faculty_scans:13d} "
            f"{result.comparisons:12d} {result.workspace_high_water:10d}"
        )
    print()
    conventional, stream, semantic = results
    print(
        "speedup in join-condition evaluations: "
        f"stream {conventional.comparisons / max(1, stream.comparisons):.0f}x, "
        "semantic "
        f"{conventional.comparisons / max(1, semantic.comparisons):.0f}x"
    )


if __name__ == "__main__":
    main()
