#!/usr/bin/env python3
"""Bitemporal HR records with rollback, plus multi-attribute histories.

Exercises the two future-work extensions the paper sketches:

* transaction time (TQuel's TransactionStart/TransactionStop): an HR
  database records facts, later *corrects* them, and an auditor rolls
  back to see exactly what was believed at any past transaction time;
* multiple time-varying attributes (Rank and Salary): the combined
  history decomposes into per-attribute relations — each directly
  consumable by the stream operators — and recomposes losslessly.
"""

from repro.bitemporal import BitemporalRelation
from repro.model import TS_ASC, TemporalSchema
from repro.multiattr import MultiAttributeRelation, MultiAttributeSchema, recompose
from repro.streams import OverlapJoin, TupleStream


def bitemporal_audit() -> None:
    print("=== transaction-time rollback ===\n")
    hr = BitemporalRelation(TemporalSchema("Faculty", "Name", "Rank"))

    # tx 101: Smith's assistant period is recorded as [2000, 2006).
    hr.insert("Smith", "Assistant", 2000, 2006, tx_time=101)
    # tx 102: the promotion to associate is recorded.
    hr.insert("Smith", "Associate", 2006, 2012, tx_time=102)
    # tx 103: an audit discovers the promotion actually happened in
    # 2005 — correct both periods.
    hr.logical_delete(103, lambda t: t.surrogate == "Smith")
    hr.insert("Smith", "Assistant", 2000, 2005, tx_time=104)
    hr.insert("Smith", "Associate", 2005, 2012, tx_time=105)

    for tx_time in (101, 102, 103, 105):
        believed = hr.as_of(tx_time)
        rendered = ", ".join(
            f"{t.value}[{t.valid_from},{t.valid_to})"
            for t in sorted(believed, key=lambda t: t.valid_from)
        ) or "(nothing)"
        print(f"as of tx {tx_time}: {rendered}")
    print(f"\ntransaction log holds {len(hr)} versions; belief changed "
          f"at {hr.belief_changes()}")
    print("the rollback states above were reconstructed without ever "
          "deleting a log entry\n")


def multi_attribute_history() -> None:
    print("=== multiple time-varying attributes ===\n")
    schema = MultiAttributeSchema("Faculty", "Name", ("Rank", "Salary"))
    history = MultiAttributeRelation.from_rows(
        schema,
        [
            # Smith: rank changes at 2005, salary raises at 2003, 2008.
            ("Smith", "Assistant", 60, 2000, 2003),
            ("Smith", "Assistant", 66, 2003, 2005),
            ("Smith", "Associate", 66, 2005, 2008),
            ("Smith", "Associate", 74, 2008, 2012),
        ],
    )

    parts = history.decompose()
    for name, relation in parts.items():
        rendered = ", ".join(
            f"{t.value}[{t.valid_from},{t.valid_to})"
            for t in sorted(relation, key=lambda t: t.valid_from)
        )
        print(f"{name:8s}: {rendered}")
    print(
        "\nnote the coalescing: Rank ignores salary raises, Salary "
        "ignores the promotion."
    )

    # The decomposed relations feed the stream machinery directly:
    # which salary levels coincided with which ranks?
    join = OverlapJoin(
        TupleStream.from_relation(parts["Rank"].sorted_by(TS_ASC)),
        TupleStream.from_relation(parts["Salary"].sorted_by(TS_ASC)),
    )
    pairs = sorted(
        {(rank.value, salary.value) for rank, salary in join.run()}
    )
    print(f"rank/salary co-occurrences (stream overlap-join): {pairs}")
    print(f"join workspace high-water: "
          f"{join.metrics.workspace_high_water} tuple(s)")

    rebuilt = recompose(schema, parts)
    assert rebuilt == history
    print("decompose -> recompose round-trips exactly\n")


if __name__ == "__main__":
    bitemporal_audit()
    multi_attribute_history()
