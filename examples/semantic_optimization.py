#!/usr/bin/env python3
"""Watching the semantic optimizer work (Section 5).

Shows the full derivation for the Superstar query: the desugared
less-than join condition, the integrity-constraint knowledge the
optimizer assembles, the two inequalities it proves redundant, and the
Contained-semijoin pattern it recognises in what remains — then
verifies the rewritten plan produces identical results.
"""

from repro.algebra import compile_plan, optimize
from repro.query import parse_query, translate
from repro.semantic import semantically_optimize
from repro.superstar import SUPERSTAR_QUEL
from repro.workload import FacultyWorkload


def main() -> None:
    faculty = FacultyWorkload(
        faculty_count=150, continuous=True, full_fraction=1.0
    ).generate(seed=5)
    catalog = {"Faculty": faculty}

    plan = optimize(translate(parse_query(SUPERSTAR_QUEL), catalog))
    print("conventionally optimized plan (Figure 3(b)):\n")
    print(plan.explain())
    print()

    rewritten, report = semantically_optimize(plan, catalog)

    print("knowledge the optimizer harvested:")
    print(f"  value bindings:        {report.context.value_bindings}")
    print(
        "  surrogate equalities:  "
        + ", ".join(
            " = ".join(sorted(pair))
            for pair in report.context.surrogate_equalities
        )
    )
    print(
        "  declared constraints:  intra-tuple TS < TE, chronological "
        "rank ordering, continuous employment\n"
    )

    for finding in report.findings:
        if not finding.removed:
            continue
        print("less-than join condition (theta'):")
        for comparison in finding.original:
            print(f"    {comparison}")
        print("proved redundant and removed:")
        for comparison in finding.removed:
            print(f"    {comparison}")
        print("kept:")
        for comparison in finding.kept:
            print(f"    {comparison}")
        containment = finding.derived_containment
        if containment is not None:
            print(
                "\nrecognised (Figure 8(b)): the derived interval "
                f"[{containment.start}, {containment.end}) lies strictly "
                f"inside {containment.container}'s lifespan — a "
                "Contained-semijoin"
                + (
                    ", with the interval provably non-empty"
                    if containment.strict
                    else ""
                )
            )
    print("\nsemantically rewritten plan:\n")
    print(rewritten.explain())

    before = sorted(compile_plan(plan, catalog).run())
    after = sorted(compile_plan(rewritten, catalog).run())
    assert before == after
    print(f"\nresults identical before/after: {len(after)} superstars")


if __name__ == "__main__":
    main()
