#!/usr/bin/env python3
"""Quickstart: intervals, Allen relationships, and a first stream join.

Runs in under a second and touches the three layers most users need:
the temporal data model, the Allen operators of Figure 2, and a
single-pass Contain-join with workspace metrics.
"""

from repro.allen import classify
from repro.model import TS_ASC, Interval, TemporalTuple, sort_tuples
from repro.streams import ContainJoinTsTs, TupleStream


def main() -> None:
    # ------------------------------------------------------------------
    # 1. Intervals and the thirteen relationships
    # ------------------------------------------------------------------
    project = Interval(0, 100)  # [0, 100): half-open, as in the paper
    sprint = Interval(40, 55)
    print(f"{project} vs {sprint}: {classify(project, sprint)}")
    print(f"{sprint} vs {project}: {classify(sprint, project)}")
    print(f"overlap (share a point)?  {project.intersects(sprint)}")
    print()

    # ------------------------------------------------------------------
    # 2. Temporal tuples: <Surrogate, Value, ValidFrom, ValidTo>
    # ------------------------------------------------------------------
    machines = [
        TemporalTuple("m1", "in-service", 0, 90),
        TemporalTuple("m2", "in-service", 10, 200),
        TemporalTuple("m3", "in-service", 120, 150),
    ]
    outages = [
        TemporalTuple("o1", "outage", 20, 30),
        TemporalTuple("o2", "outage", 85, 95),
        TemporalTuple("o3", "outage", 130, 140),
    ]

    # ------------------------------------------------------------------
    # 3. Which outages fell entirely within a machine's service life?
    #    Contain-join as a single-pass stream processor (Section 4.2.1).
    # ------------------------------------------------------------------
    join = ContainJoinTsTs(
        TupleStream.from_tuples(
            sort_tuples(machines, TS_ASC), order=TS_ASC, name="machines"
        ),
        TupleStream.from_tuples(
            sort_tuples(outages, TS_ASC), order=TS_ASC, name="outages"
        ),
    )
    for machine, outage in join:
        print(
            f"outage {outage.surrogate} [{outage.valid_from},"
            f"{outage.valid_to}) happened during machine "
            f"{machine.surrogate}'s service life"
        )
    print()
    print("execution profile:", join.metrics.summary())
    print(
        "single pass over each stream, "
        f"{join.metrics.workspace_high_water} state tuple(s) at peak — "
        "no nested loop required."
    )


if __name__ == "__main__":
    main()
