#!/usr/bin/env python3
"""The Figure-4 stream processor: per-department salary sums.

Demonstrates the paper's introductory stream-processing example — a
processor whose state is one partial sum plus the input buffer when the
stream arrives grouped — together with what happens when the grouping
assumption is violated.
"""

from repro.errors import StreamOrderError
from repro.streams import finalize_average, grouped_average, grouped_sum
from repro.workload import PayrollWorkload, expected_sums


def main() -> None:
    workload = PayrollWorkload(departments=6, employees_per_department=40)
    records = workload.generate(seed=11)
    print(
        f"payroll stream: {len(records)} (dept, emp, salary) records, "
        "grouped by department\n"
    )

    # ------------------------------------------------------------------
    # Figure 4: sum salaries per department in O(1) workspace.
    # ------------------------------------------------------------------
    summer = grouped_sum(
        records, key=lambda r: r.department, value=lambda r: r.salary
    )
    print(f"{'department':12s} {'total salary':>14s}")
    for department, total in summer:
        print(f"{department:12s} {total:14,d}")
    print(
        f"\nworkspace: {summer.metrics.state_high_water} "
        "(partial sum for the open group only)"
    )

    # Cross-check against a straightforward dictionary fold.
    assert dict(grouped_sum(
        records, key=lambda r: r.department, value=lambda r: r.salary
    )) == expected_sums(records)

    # ------------------------------------------------------------------
    # Same machinery, different fold: averages.
    # ------------------------------------------------------------------
    print(f"\n{'department':12s} {'mean salary':>14s}")
    averages = grouped_average(
        records, key=lambda r: r.department, value=lambda r: r.salary
    )
    for department, mean in finalize_average(averages):
        print(f"{department:12s} {mean:14,.0f}")

    # ------------------------------------------------------------------
    # The grouping requirement is load-bearing: shuffled input fails
    # loudly instead of silently double-counting departments.
    # ------------------------------------------------------------------
    shuffled = workload.generate_shuffled(seed=11)
    try:
        grouped_sum(
            shuffled, key=lambda r: r.department, value=lambda r: r.salary
        ).run()
    except StreamOrderError as exc:
        print(f"\nshuffled input correctly rejected: {exc}")


if __name__ == "__main__":
    main()
