#!/usr/bin/env python3
"""Single-scan temporal pattern matching on operations data.

Section 3 of the paper muses that a multi-join temporal query might be
answered "with only a single scan of the relation" by treating the
qualification as a *pattern in the data*.  This example applies the
generalised pattern matcher to a service-operations history:

* which services had an incident **during** a deploy window?
* which services went deploy -> incident -> rollback, back to back?

One pass over the surrogate-grouped stream answers both; workspace is
one service's history, never the relation.
"""

from repro.allen import AllenRelation as R
from repro.model import SortOrder, TemporalRelation, TemporalSchema
from repro.patterns import PatternScan, PatternStep, SequencePattern

SCHEMA = TemporalSchema("Ops", "Service", "Event")

HISTORY = [
    # auth: a deploy with an incident inside it, then a rollback
    # starting the moment the incident ends.
    ("auth", "deploy", 100, 160),
    ("auth", "incident", 120, 135),
    ("auth", "rollback", 135, 150),
    # billing: healthy deploys only.
    ("billing", "deploy", 100, 130),
    ("billing", "deploy", 300, 330),
    # search: an incident, but well after the deploy ended.
    ("search", "deploy", 100, 120),
    ("search", "incident", 500, 520),
    # cart: incident inside the deploy but no rollback.
    ("cart", "deploy", 200, 260),
    ("cart", "incident", 210, 230),
]


def main() -> None:
    relation = TemporalRelation.from_rows(SCHEMA, HISTORY).sorted_by(
        SortOrder.by_surrogate()
    )
    print(
        f"operations history: {len(relation)} events across "
        f"{len(relation.surrogates())} services\n"
    )

    incident_in_deploy = SequencePattern.of(
        PatternStep("deploy"),
        PatternStep("incident", R.DURING),
    )
    scan = PatternScan(relation.tuples, incident_in_deploy)
    print("incident DURING a deploy window:")
    for match in scan:
        deploy, incident = match.tuples
        print(
            f"  {match.surrogate}: incident [{incident.valid_from},"
            f"{incident.valid_to}) inside deploy [{deploy.valid_from},"
            f"{deploy.valid_to})"
        )
    print(
        f"  -> one pass: {scan.tuples_read} events read, peak group "
        f"{scan.max_group_size} tuples\n"
    )

    bad_release = SequencePattern.of(
        PatternStep("deploy"),
        PatternStep("incident", R.DURING),
        PatternStep("rollback", R.MET_BY),
    )
    matches = PatternScan(relation.tuples, bad_release).run()
    print("deploy -> incident (during) -> rollback (immediately after):")
    for match in matches:
        print(f"  {match.surrogate}: span {match.span}")
    assert {m.surrogate for m in matches} == {"auth"}
    print(
        "\nthe three-step condition that would conventionally need a "
        "three-way self-join ran as one scan."
    )


if __name__ == "__main__":
    main()
