#!/usr/bin/env python3
"""Sort orders vs workspace: Table 1, measured.

For the Contain-join and its semijoins, runs every sort-order
combination the paper classifies — the bounded ones through their
stream algorithms, an inappropriate one through the GC-free sweep —
and prints the measured workspace high-water marks next to the paper's
state-class labels.  Then it asks the cost-based planner what it would
pick given differently pre-sorted inputs.
"""

from repro.model import TE_ASC, TE_DESC, TS_ASC
from repro.optimizer import TemporalJoinPlanner
from repro.streams import (
    TemporalOperator,
    TupleStream,
    UnboundedStateJoin,
    contain_predicate,
    lookup,
)
from repro.workload import PoissonWorkload, fixed_duration


def build_inputs(n=2000):
    x = PoissonWorkload(n, 0.5, fixed_duration(40), name="X").generate(1)
    y = PoissonWorkload(n, 0.5, fixed_duration(10), name="Y").generate(2)
    return x, y


def run_entry(operator, x_order, y_order, x, y):
    entry = lookup(operator, x_order, y_order)
    if not entry.supported:
        return entry, None
    processor = entry.build(
        TupleStream.from_relation(x.sorted_by(entry.x_order), name="X"),
        TupleStream.from_relation(y.sorted_by(entry.y_order), name="Y"),
    )
    processor.run()
    return entry, processor.metrics


def main() -> None:
    x, y = build_inputs()
    print(f"inputs: |X| = {len(x)}, |Y| = {len(y)}\n")

    print("Table 1, measured (Contain-join / Contain-semijoin / "
          "Contained-semijoin):")
    header = (
        f"{'X order':12s} {'Y order':12s} | "
        f"{'operator':22s} {'class':>5s} {'peak state':>10s} {'passes':>6s}"
    )
    print(header)
    print("-" * len(header))
    operators = (
        TemporalOperator.CONTAIN_JOIN,
        TemporalOperator.CONTAIN_SEMIJOIN,
        TemporalOperator.CONTAINED_SEMIJOIN,
    )
    for x_order, y_order in (
        (TS_ASC, TS_ASC),
        (TS_ASC, TE_ASC),
        (TE_ASC, TS_ASC),
        (TE_DESC, TE_DESC),
    ):
        for operator in operators:
            entry, metrics = run_entry(operator, x_order, y_order, x, y)
            if metrics is None:
                print(
                    f"{str(x_order):12s} {str(y_order):12s} | "
                    f"{operator.value:22s} {entry.state_class:>5s} "
                    f"{'-':>10s} {'-':>6s}"
                )
            else:
                print(
                    f"{str(x_order):12s} {str(y_order):12s} | "
                    f"{operator.value:22s} {entry.state_class:>5s} "
                    f"{metrics.workspace_high_water:10d} "
                    f"{metrics.passes_x:3d}/{metrics.passes_y:d}"
                )
        print()

    # What a '-' cell costs: run the join anyway, without GC.
    unbounded = UnboundedStateJoin(
        TupleStream.from_relation(x.sorted_by(TS_ASC), name="X"),
        TupleStream.from_relation(y.sorted_by(TS_ASC), name="Y"),
        contain_predicate,
    )
    unbounded.run()
    print(
        "for comparison, a single-pass join with NO garbage collection "
        f"peaks at {unbounded.metrics.workspace_high_water} state tuples "
        f"(inputs total {len(x) + len(y)})\n"
    )

    # The planner's view: interesting orders tip the choice.
    planner = TemporalJoinPlanner()
    print("planner choices for Contain-join:")
    for label, xr, yr in (
        ("unsorted inputs", x, y),
        ("X sorted TS^, Y sorted TS^", x.sorted_by(TS_ASC), y.sorted_by(TS_ASC)),
        ("X sorted TS^, Y sorted TE^", x.sorted_by(TS_ASC), y.sorted_by(TE_ASC)),
    ):
        choice = planner.choose(TemporalOperator.CONTAIN_JOIN, xr, yr)
        print(f"  {label:28s} -> {choice.describe()}")


if __name__ == "__main__":
    main()
